//! # MCFuser — high-performance and rapid fusion of memory-bound
//! compute-intensive operators
//!
//! A from-scratch Rust reproduction of *MCFuser* (Zhang, Yang, Zhou,
//! Cheng — SC 2024) on a deterministic simulated-GPU substrate. This
//! facade crate re-exports the whole workspace:
//!
//! * [`sim`] — the GPU substrate (A100/RTX 3080 models, virtual kernels,
//!   functional execution, timing, tuning clock);
//! * [`ir`] — tensor-operator graphs and the MBCI chain abstraction;
//! * [`tile`] — tiling expressions, schedule DAG, lowering;
//! * [`core`] — search space, pruning Rules 1–4, the analytical
//!   performance model (Eqs. 2–5), Algorithm 1, and the
//!   [`FusionEngine`](mcfuser_core::FusionEngine) session API;
//! * [`baselines`] — PyTorch/Relay/Ansor/BOLT/FlashAttention/Chimera;
//! * [`workloads`] — Tables II & III and BERT/ViT/Mixer graphs.
//!
//! ## Quickstart
//!
//! Everything goes through one builder-configured session:
//!
//! ```
//! use mcfuser::prelude::*;
//!
//! // A memory-bound GEMM chain: C = A×B, E = C×D (the paper's G1).
//! let chain = ChainSpec::gemm_chain("demo", 1, 256, 128, 64, 64);
//! let device = DeviceSpec::a100();
//! assert!(chain.is_memory_bound(&device));
//!
//! // One engine session: tuning, caching, compilation, execution.
//! let engine = FusionEngine::builder(device).build();
//! let tuned = engine.tune(&chain).unwrap();
//! println!(
//!     "fused schedule {} runs in {:.2} us",
//!     tuned.candidate.describe(&chain),
//!     tuned.profile.time * 1e6,
//! );
//!
//! // Tuning again is a cache hit — no new measurements.
//! let again = engine.tune(&chain).unwrap();
//! assert_eq!(again.candidate, tuned.candidate);
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```
//!
//! Compiling a whole graph needs a fallback backend for the operators
//! MCFuser does not fuse (§V-B):
//!
//! ```
//! use mcfuser::baselines::Relay;
//! use mcfuser::prelude::*;
//! use mcfuser::workloads::{bert_graph, BertConfig};
//!
//! let graph = bert_graph(
//!     "bert-tiny",
//!     &BertConfig { layers: 1, hidden: 128, heads: 4, seq: 64, intermediate: 512 },
//! );
//! let engine = FusionEngine::builder(DeviceSpec::a100())
//!     .fallback(Relay::new())
//!     .parallelism(2)
//!     .build();
//! let model = engine.compile(&graph).unwrap();
//! assert!(!model.chains.is_empty() && model.total_time > 0.0);
//! ```

pub use mcfuser_baselines as baselines;
pub use mcfuser_core as core;
pub use mcfuser_ir as ir;
pub use mcfuser_sim as sim;
pub use mcfuser_tile as tile;
pub use mcfuser_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use mcfuser_baselines::{Backend, ChainRun, Unsupported};
    pub use mcfuser_core::{
        BatchPolicy, BatchedPlan, CachePolicy, CompiledModel, DecodeError, DecodeServing,
        DecodeSession, DecodeSpec, EngineBuilder, EngineStats, ExecBackend, ExecError,
        ExecutablePlan, FusionEngine, InputSet, McFuser, ModelRuntime, Outputs, RunOptions,
        RuntimeStats, SearchParams, SpacePolicy, TuneError, TunedKernel, TuningCache,
    };
    pub use mcfuser_ir::{ChainSpec, Epilogue, Graph, GraphBuilder};
    pub use mcfuser_sim::{DType, DeviceSpec, HostTensor, TensorStorage};
    pub use mcfuser_tile::{Candidate, TilingExpr};
}
