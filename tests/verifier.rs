//! Static-verifier integration tests.
//!
//! Two directions, matching the gate's contract:
//!
//! * **soundness of the analyses** — every tuned winner the search
//!   produces, across every chain family the compiler can lower (plain
//!   GEMM chains, attention, masked attention, stitched BERT chains,
//!   decode-shaped GEMV), passes the full verifier. The engines here
//!   disable the built-in gate (`.verify(false)`) so the test exercises
//!   `verify_program` directly rather than asserting the gate let the
//!   winner through.
//! * **sensitivity** — deliberately corrupted programs (a shifted tile
//!   index, overlapping grid footprints, an uninitialized accumulator)
//!   are each rejected with the *expected, distinct* `VerifyError`
//!   variant, so demotion paths can trust the error structure.

use proptest::prelude::*;

use mcfuser::prelude::*;
use mcfuser::sim::verify::{verify_program, VerifyError};
use mcfuser::sim::{BlockStmt, BufferRole, TileProgram, VarRef};
use mcfuser::workloads::{
    bert_graph, decode_attention_chain, decode_ffn_chain, masked_attention_workload, mlp4_chain,
    BertConfig, DecoderConfig,
};

fn unverified_engine() -> FusionEngine {
    FusionEngine::builder(DeviceSpec::a100())
        .verify(false)
        .build()
}

/// The same random 2-GEMM chains as `proptest_properties.rs`.
fn chain_strategy() -> impl Strategy<Value = ChainSpec> {
    (
        1u64..3,
        prop::sample::select(vec![32u64, 48, 64, 96, 128]),
        prop::sample::select(vec![32u64, 48, 64, 96]),
        prop::sample::select(vec![16u64, 32, 48, 64]),
        prop::sample::select(vec![16u64, 32, 48, 64]),
    )
        .prop_map(|(b, m, n, k, h)| ChainSpec::gemm_chain("prop", b, m, n, k, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every heuristic-search winner over random plain chains carries a
    /// verifiable program: in-bounds, initialized, race-free.
    #[test]
    fn tuned_winners_pass_verifier(chain in chain_strategy()) {
        let tuned = unverified_engine().tune(&chain).unwrap();
        let report = verify_program(&tuned.kernel.program).unwrap();
        prop_assert!(report.stores >= 1);
        prop_assert!(report.accesses >= 3);
    }
}

/// Winners across the named chain families — attention, masked
/// attention, stitched BERT layer chains, and the two decode-shaped
/// GEMV chains — all verify, and the gate-enabled engine produces the
/// *same* winners (the gate never changes tuning results, it only
/// refuses unsound ones).
#[test]
fn family_winners_pass_verifier_and_gate_is_transparent() {
    let mut chains: Vec<ChainSpec> = vec![
        mlp4_chain(),
        ChainSpec::attention("attn", 4, 128, 128, 64, 64),
        masked_attention_workload("S7").unwrap(),
        decode_attention_chain("dec-attn", &DecoderConfig::gpt_mini(), 64),
        decode_ffn_chain("dec-ffn", &DecoderConfig::gpt_mini()),
    ];
    let device = DeviceSpec::a100();
    let bert = bert_graph(
        "bert-tiny",
        &BertConfig {
            layers: 1,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    chains.extend(
        mcfuser::ir::partition(&bert, &device)
            .chains
            .iter()
            .map(|fc| fc.chain.clone()),
    );

    let plain = unverified_engine();
    let gated = FusionEngine::builder(device).build();
    for chain in &chains {
        let tuned = plain.tune(chain).unwrap();
        let report = verify_program(&tuned.kernel.program)
            .unwrap_or_else(|e| panic!("winner for '{}' failed verification: {e}", chain.name));
        assert!(report.stores >= 1, "'{}' produced no stores", chain.name);
        let gated_tuned = gated.tune(chain).unwrap();
        assert_eq!(
            gated_tuned.candidate, tuned.candidate,
            "verify gate changed the winner for '{}'",
            chain.name
        );
    }
    // With the gate off, neither counter moves; with it on, every tune
    // (fresh winner) was verified and none were rejected.
    assert_eq!(plain.stats().programs_verified, 0);
    assert_eq!(plain.stats().verify_rejects, 0);
    assert_eq!(gated.stats().programs_verified, chains.len() as u64);
    assert_eq!(gated.stats().verify_rejects, 0);
}

/// A tuned winner for a multi-block GEMM chain, plus the index of a
/// store to the program's output buffer (for targeted corruption).
fn victim_program() -> TileProgram {
    let chain = ChainSpec::gemm_chain("victim", 1, 256, 128, 64, 64);
    let tuned = unverified_engine().tune(&chain).unwrap();
    let p = tuned.kernel.program.clone();
    assert!(
        p.grid.len() >= 2 && p.grid[1] >= 2,
        "victim must launch multiple blocks along m (grid {:?})",
        p.grid
    );
    verify_program(&p).expect("victim verifies before corruption");
    p
}

/// Mutate the tile stride of the output store's `Grid(1)`-indexed
/// dimension via `f`, returning whether a store was found.
fn mutate_output_store(p: &mut TileProgram, f: &mut dyn FnMut(&mut u64)) -> bool {
    let out = p
        .buffers
        .iter()
        .position(|b| b.role == BufferRole::Output)
        .expect("program has an output");
    fn walk(stmts: &mut [BlockStmt], out: usize, f: &mut dyn FnMut(&mut u64)) -> bool {
        for s in stmts {
            if let BlockStmt::Loop { body, .. } = s {
                if walk(body, out, f) {
                    return true;
                }
            } else if let BlockStmt::Store { dst, .. } = s {
                if dst.buf.0 == out {
                    let ix = dst
                        .indices
                        .iter_mut()
                        .find(|ix| ix.var == VarRef::Grid(1))
                        .expect("output store is indexed by the m grid dim");
                    f(&mut ix.tile);
                    return true;
                }
            }
        }
        false
    }
    walk(&mut p.body, out, f)
}

/// Corruption 1 — shifted tile index: doubling the output store's m
/// stride walks the last block past the buffer. Rejected as
/// `OutOfBounds`, not silently clipped.
#[test]
fn shifted_tile_index_rejected_as_out_of_bounds() {
    let mut p = victim_program();
    assert!(mutate_output_store(&mut p, &mut |tile| *tile *= 2));
    assert!(
        matches!(verify_program(&p), Err(VerifyError::OutOfBounds { .. })),
        "got {:?}",
        verify_program(&p)
    );
}

/// Corruption 2 — overlapping grid footprints: halving the stride makes
/// adjacent blocks write windows that overlap by half a tile. Rejected
/// as `OverlappingTiles`.
#[test]
fn overlapping_grid_footprints_rejected() {
    let mut p = victim_program();
    assert!(mutate_output_store(&mut p, &mut |tile| {
        assert_eq!(*tile % 2, 0, "winner tile must be even to halve");
        *tile /= 2;
    }));
    assert!(
        matches!(
            verify_program(&p),
            Err(VerifyError::OverlappingTiles { .. })
        ),
        "got {:?}",
        verify_program(&p)
    );
}

/// Corruption 3 — uninitialized accumulator: dropping the first `Fill`
/// leaves a GEMM accumulating into garbage. Rejected as
/// `UninitializedAccumulator` (distinct from a generic
/// read-before-write).
#[test]
fn uninitialized_accumulator_rejected() {
    let mut p = victim_program();
    fn drop_first_fill(stmts: &mut Vec<BlockStmt>) -> bool {
        if let Some(i) = stmts
            .iter()
            .position(|s| matches!(s, BlockStmt::Fill { .. }))
        {
            stmts.remove(i);
            return true;
        }
        for s in stmts {
            if let BlockStmt::Loop { body, .. } = s {
                if drop_first_fill(body) {
                    return true;
                }
            }
        }
        false
    }
    assert!(drop_first_fill(&mut p.body), "winner has a Fill to drop");
    assert!(
        matches!(
            verify_program(&p),
            Err(VerifyError::UninitializedAccumulator { .. })
        ),
        "got {:?}",
        verify_program(&p)
    );
}
