//! Integration: every kernel MCFuser tunes must compute exactly what the
//! chain's CPU reference computes — across chain shapes, epilogues,
//! batching and non-divisible dimensions.

use mcfuser::ir::Epilogue;
use mcfuser::prelude::*;
use mcfuser::sim::execute;

/// Tune a chain and verify the winning kernel functionally.
fn tune_and_verify(chain: &ChainSpec, seed: u64) {
    let device = DeviceSpec::a100();
    let tuned = FusionEngine::builder(device)
        .build()
        .tune(chain)
        .unwrap_or_else(|e| panic!("{}: tuning failed: {e}", chain.name));
    let inputs = chain.random_inputs(seed);
    let mut st = TensorStorage::for_program(&tuned.kernel.program);
    for (i, t) in inputs.iter().enumerate() {
        st.tensors[i] = t.clone();
    }
    execute(&tuned.kernel.program, &mut st).expect("kernel executes");
    let reference = chain.reference(&inputs);
    let err = st.tensors.last().unwrap().rel_l2_error(&reference);
    assert!(
        err < 2e-2,
        "{}: rel error {err} with schedule {}",
        chain.name,
        tuned.candidate.describe(chain)
    );
}

#[test]
fn gemm_chain_small() {
    tune_and_verify(&ChainSpec::gemm_chain("cc-g", 1, 128, 96, 64, 80), 1);
}

#[test]
fn gemm_chain_batched() {
    tune_and_verify(&ChainSpec::gemm_chain("cc-gb", 3, 96, 64, 48, 32), 2);
}

#[test]
fn gemm_chain_non_divisible_dims() {
    tune_and_verify(&ChainSpec::gemm_chain("cc-gp", 1, 100, 72, 40, 56), 3);
}

#[test]
fn attention_small() {
    tune_and_verify(&ChainSpec::attention("cc-a", 2, 96, 96, 32, 32), 4);
}

#[test]
fn attention_distinct_k_h() {
    // The case FlashAttention refuses (K != H).
    let mut chain = ChainSpec::attention("cc-akh", 2, 96, 96, 32, 48);
    chain.epilogues[0] = Epilogue::Softmax {
        scale: 1.0 / (32f32).sqrt(),
    };
    tune_and_verify(&chain, 5);
}

#[test]
fn relu_epilogue_chain() {
    let mut chain = ChainSpec::gemm_chain("cc-relu", 1, 96, 64, 48, 48);
    chain.epilogues[0] = Epilogue::Relu;
    tune_and_verify(&chain, 6);
}

#[test]
fn scale_epilogue_chain() {
    let mut chain = ChainSpec::gemm_chain("cc-scale", 1, 96, 64, 48, 48);
    chain.epilogues[0] = Epilogue::Scale(0.125);
    tune_and_verify(&chain, 7);
}

#[test]
fn single_matmul_chain() {
    tune_and_verify(&ChainSpec::single_matmul("cc-mm", 1, 128, 96, 64), 8);
}

#[test]
fn three_op_chain() {
    let chain = ChainSpec::chain(
        "cc-3op",
        1,
        96,
        vec![32, 64, 64, 32],
        vec![Epilogue::None; 3],
    );
    tune_and_verify(&chain, 9);
}

#[test]
fn rtx3080_target_also_correct() {
    let chain = ChainSpec::attention("cc-a3080", 2, 96, 96, 32, 32);
    let device = DeviceSpec::rtx3080();
    let tuned = FusionEngine::builder(device.clone())
        .build()
        .tune(&chain)
        .unwrap();
    assert!(tuned.kernel.smem_bytes <= device.smem_per_block);
    let inputs = chain.random_inputs(10);
    let mut st = TensorStorage::for_program(&tuned.kernel.program);
    for (i, t) in inputs.iter().enumerate() {
        st.tensors[i] = t.clone();
    }
    execute(&tuned.kernel.program, &mut st).unwrap();
    let err = st
        .tensors
        .last()
        .unwrap()
        .rel_l2_error(&chain.reference(&inputs));
    assert!(err < 2e-2, "{err}");
}
