//! The lazy [`CandidateSpace`] contract: index-for-index equivalent to
//! the eager materialization it replaced, with no caps — candidates the
//! old `Vec` silently clipped are reachable and searched.

use proptest::prelude::*;

use mcfuser::core::{
    build_candidate_space, build_candidate_space_scanned, heuristic_search, prune, CandidateSpace,
    Rule4Scan, SearchParams, SearchSpace, SpacePolicy, FRONTIER_MIN_GRID,
};
use mcfuser::prelude::*;
use mcfuser::sim::TuningClock;
use mcfuser::tile::{rule4_fits, Candidate, TilingExpr};

/// The old eager materialization, reproduced as a reference oracle: an
/// axis-0-fastest odometer over the Rule-3 tile domains, Rule 4 as an
/// expression-independent pre-filter, then expression-major candidate
/// construction. (The shipped version additionally clipped the result at
/// 200 000 candidates and 10⁷ odometer steps — the bug under test — so
/// the oracle is only run on small spaces.)
fn eager_materialize(space: &CandidateSpace, smem_limit: Option<u64>) -> Vec<Candidate> {
    let chain = &space.chain;
    let mut combos: Vec<Vec<u64>> = Vec::new();
    if space.tile_domains.iter().all(|d| !d.is_empty()) {
        let mut idx = vec![0usize; space.tile_domains.len()];
        'outer: loop {
            let tiles: Vec<u64> = idx
                .iter()
                .enumerate()
                .map(|(a, &i)| space.tile_domains[a][i])
                .collect();
            let keep = match smem_limit {
                Some(limit) => rule4_fits(
                    chain,
                    &Candidate::new(TilingExpr::Unit, tiles.clone()),
                    limit,
                ),
                None => true,
            };
            if keep {
                combos.push(tiles);
            }
            let mut a = 0;
            loop {
                if a == idx.len() {
                    break 'outer;
                }
                idx[a] += 1;
                if idx[a] < space.tile_domains[a].len() {
                    break;
                }
                idx[a] = 0;
                a += 1;
            }
        }
    }
    let mut out = Vec::new();
    for e in &space.exprs {
        for tiles in &combos {
            out.push(Candidate::new(e.clone(), tiles.clone()));
        }
    }
    out
}

fn small_chain_strategy() -> impl Strategy<Value = ChainSpec> {
    (
        1u64..3,
        prop::sample::select(vec![48u64, 64, 96, 128, 160]),
        prop::sample::select(vec![32u64, 48, 64, 96]),
        prop::sample::select(vec![16u64, 32, 48, 80]),
        prop::sample::select(vec![16u64, 32, 64, 96]),
    )
        .prop_map(|(b, m, n, k, h)| ChainSpec::gemm_chain("prop", b, m, n, k, h))
}

fn device_strategy() -> impl Strategy<Value = DeviceSpec> {
    prop::sample::select(vec![DeviceSpec::a100(), DeviceSpec::rtx3080()]).prop_map(|d| d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lazy enumeration — streaming *and* O(1) indexing — is
    /// index-for-index identical to the eager materialization, and
    /// `PruneStats::after_rule4` is exactly the reachable count.
    #[test]
    fn lazy_space_equals_eager_materialization(
        chain in small_chain_strategy(),
        dev in device_strategy(),
    ) {
        let space = SearchSpace::generate(&chain);
        let pruned = prune(&chain, &dev, &space);
        let eager = eager_materialize(&pruned, Some(dev.smem_per_block));
        prop_assert_eq!(pruned.len() as usize, eager.len());
        prop_assert_eq!(pruned.stats.after_rule4, eager.len() as u128);
        for (i, (lazy, reference)) in pruned.iter().zip(eager.iter()).enumerate() {
            prop_assert_eq!(&lazy, reference, "stream diverges at {}", i);
            prop_assert_eq!(&pruned.candidate(i as u64), reference, "index diverges at {}", i);
        }
    }

    /// The `-rule4` ablation admits the whole Rule-3 grid through the
    /// same lazy space, again index-for-index equal to eager.
    #[test]
    fn lazy_space_without_rule4_equals_eager(
        chain in small_chain_strategy(),
        dev in device_strategy(),
    ) {
        let policy = SpacePolicy { shared_memory_pruning: false, ..Default::default() };
        let pruned = build_candidate_space(&chain, &dev, &policy);
        let eager = eager_materialize(&pruned, None);
        prop_assert_eq!(pruned.len() as usize, eager.len());
        let lazy: Vec<Candidate> = pruned.iter().collect();
        prop_assert_eq!(lazy, eager);
    }

    /// The frontier scan is the dense scan's oracle twin: for any chain
    /// and device, forcing `Rule4Scan::Frontier` produces the *same*
    /// survivor set — same count, same waterfall, same diagnostic
    /// minimum estimate, and the same candidate at every index — while
    /// touching O(surface) instead of O(volume) combinations. (The
    /// frontier relies on Eq. 1 being monotone in each tile extent and
    /// on ascending Rule-3 domains; this property test is what keeps
    /// that assumption honest.)
    #[test]
    fn frontier_scan_equals_dense_scan(
        chain in small_chain_strategy(),
        dev in device_strategy(),
    ) {
        let policy = SpacePolicy::default();
        let dense = build_candidate_space_scanned(&chain, &dev, &policy, Rule4Scan::Dense);
        let frontier = build_candidate_space_scanned(&chain, &dev, &policy, Rule4Scan::Frontier);
        prop_assert!(!dense.frontier_scanned());
        prop_assert!(frontier.frontier_scanned());
        prop_assert_eq!(dense.len(), frontier.len());
        prop_assert_eq!(dense.surviving_combos(), frontier.surviving_combos());
        prop_assert_eq!(&dense.stats, &frontier.stats);
        prop_assert_eq!(dense.min_estimated_smem(), frontier.min_estimated_smem());
        for i in 0..dense.len() {
            prop_assert_eq!(
                dense.candidate(i),
                frontier.candidate(i),
                "survivor {} diverges",
                i
            );
        }
    }

    /// With Rule 4 disabled there is nothing to scan: both strategies
    /// degrade to the identical pass-all space.
    #[test]
    fn frontier_scan_equals_dense_scan_without_rule4(
        chain in small_chain_strategy(),
        dev in device_strategy(),
    ) {
        let policy = SpacePolicy { shared_memory_pruning: false, ..Default::default() };
        let dense = build_candidate_space_scanned(&chain, &dev, &policy, Rule4Scan::Dense);
        let frontier = build_candidate_space_scanned(&chain, &dev, &policy, Rule4Scan::Frontier);
        prop_assert!(!frontier.frontier_scanned(), "no Rule 4, no scan");
        prop_assert_eq!(dense.len(), frontier.len());
        prop_assert_eq!(dense.surviving_combos(), dense.grid_combos());
        prop_assert_eq!(&dense.stats, &frontier.stats);
        let step = (dense.len() / 97).max(1);
        let mut i = 0;
        while i < dense.len() {
            prop_assert_eq!(dense.candidate(i), frontier.candidate(i));
            i += step;
        }
    }
}

/// A 3-GEMM chain whose pruned space exceeds the old 200 000-candidate
/// materialization cap (non-power-of-two 1536/768 extents keep 14–22
/// Rule-3 options per axis across 5 axes → 273 885 survivors on A100).
fn big_3gemm() -> ChainSpec {
    ChainSpec::chain(
        "mlp3-1536",
        1,
        1536,
        vec![1536, 768, 1536, 768],
        vec![Epilogue::None; 3],
    )
}

#[test]
fn auto_scan_uses_the_frontier_past_the_threshold_and_matches_dense() {
    let dev = DeviceSpec::a100();
    let policy = SpacePolicy::default();

    // Small grid: Auto stays dense.
    let small = ChainSpec::gemm_chain("small", 1, 256, 128, 64, 64);
    let auto_small = build_candidate_space(&small, &dev, &policy);
    assert!(auto_small.grid_combos() < FRONTIER_MIN_GRID);
    assert!(!auto_small.frontier_scanned());

    // The 273 885-survivor 3-GEMM chain: its Rule-3 grid is well past
    // FRONTIER_MIN_GRID, so Auto must pick the frontier — and the
    // resulting space must be indistinguishable from a forced dense
    // scan (count, waterfall, diagnostics, and sampled survivors).
    let big = big_3gemm();
    let auto_big = build_candidate_space(&big, &dev, &policy);
    assert!(
        auto_big.grid_combos() >= FRONTIER_MIN_GRID,
        "grid {} is supposed to exceed the frontier threshold",
        auto_big.grid_combos()
    );
    assert!(auto_big.frontier_scanned(), "Auto must pick the frontier");
    let dense = build_candidate_space_scanned(&big, &dev, &policy, Rule4Scan::Dense);
    assert!(!dense.frontier_scanned());
    assert_eq!(auto_big.len(), dense.len());
    assert_eq!(auto_big.stats, dense.stats);
    assert_eq!(auto_big.min_estimated_smem(), dense.min_estimated_smem());
    let step = (dense.len() / 409).max(1);
    let mut i = 0;
    while i < dense.len() {
        assert_eq!(auto_big.candidate(i), dense.candidate(i), "index {i}");
        i += step;
    }
    // Including the extremes.
    assert_eq!(
        auto_big.candidate(dense.len() - 1),
        dense.candidate(dense.len() - 1)
    );
}

#[test]
fn candidates_beyond_the_old_cap_are_reachable_and_searched() {
    let chain = big_3gemm();
    let dev = DeviceSpec::a100();
    let space = SearchSpace::generate(&chain);
    let pruned = prune(&chain, &dev, &space);

    // The space genuinely exceeds the deleted cap and stays exact.
    assert!(
        pruned.len() > 200_000,
        "space only has {} candidates",
        pruned.len()
    );
    assert_eq!(pruned.stats.after_rule4, pruned.len() as u128);

    // Every index is reachable — including the ones the old eager
    // materialization silently clipped — and decodes to a candidate
    // that passes Rule 4.
    for idx in [200_000, pruned.len() / 2, pruned.len() - 1] {
        let c = pruned.candidate(idx);
        assert!(rule4_fits(&chain, &c, dev.smem_per_block), "index {idx}");
    }

    // The search actually draws from beyond the cap: uniform sampling
    // over the true extent must hit the formerly-truncated tail. (The
    // old code sampled `gen_range(0..200_000)` here — a biased prefix
    // favoring small tiles on low axes.)
    let mut rng = rand::rngs::StdRng::seed_from_u64(SearchParams::default().seed);
    use rand::{Rng, SeedableRng};
    let beyond = (0..64)
        .map(|_| rng.gen_range(0..pruned.len()))
        .filter(|&i| i >= 200_000)
        .count();
    assert!(beyond > 0, "sampling never left the old cap's prefix");

    // And a real (budget-reduced) search over the uncapped space
    // completes and returns a launchable kernel.
    let params = SearchParams {
        population: 32,
        topk: 4,
        max_rounds: 2,
        min_rounds: 1,
        ..Default::default()
    };
    let clock = TuningClock::new();
    let out = heuristic_search(&chain, &dev, &pruned, &params, &clock)
        .expect("search over the uncapped space finds a kernel");
    assert!(out.best_time.is_finite());
    assert!(out.kernel.smem_bytes <= dev.smem_per_block);
}
