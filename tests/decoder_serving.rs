//! Integration: the decoder-serving subsystem — GEMV-shaped fused
//! chains, KV-cache decode attention, and `DecodeSession`.
//!
//! The contract under test:
//!
//! * the decode-step graph compiles with **fused** attention and FFN
//!   chains (the memory-bound gate flips at `m = 1`), and fused
//!   execution is bit-identical to the reference lane on both exec
//!   backends — property-tested across seeds and widened batch widths;
//! * `DecodeSession` prefill-then-N-steps matches one full-sequence
//!   forward pass exactly on the reference lane, and within tight
//!   relative error on the fused lane;
//! * per-request `RunOptions` backend overrides and wall-clock
//!   reservoir stats are honored on the coalesced decode-step path.

use std::sync::Arc;

use proptest::prelude::*;

use mcfuser::baselines::Relay;
use mcfuser::ir::{causal_mask, decode_mask, evaluate, scatter_onehot};
use mcfuser::prelude::*;
use mcfuser::sim::BufferArena;
use mcfuser::workloads::{decoder_forward_graph, decoder_step_graph, DecoderConfig};
use rustc_hash::FxHashMap;

fn engine() -> FusionEngine {
    FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build()
}

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 19) as f32 - 9.0) / 19.0)
            .collect(),
    )
}

/// Step-graph input tensors for decode position `pos` against ramp
/// caches, as `(name, tensor)` pairs.
fn step_tensors(cfg: &DecoderConfig, t_b: u64, pos: u64, phase: u64) -> Vec<(String, HostTensor)> {
    let mut v = vec![
        ("x".to_string(), ramp(&[1, cfg.hidden], phase)),
        ("mask".to_string(), decode_mask(cfg.heads, t_b, pos)),
        ("onehot".to_string(), scatter_onehot(cfg.kv_heads, t_b, pos)),
    ];
    for l in 0..cfg.layers {
        let shape = [cfg.kv_heads, t_b, cfg.head_dim()];
        v.push((format!("l{l}.k_cache"), ramp(&shape, phase + 2 * l as u64)));
        v.push((format!("l{l}.v_cache"), ramp(&shape, phase + 7 * l as u64)));
    }
    v
}

fn to_input_set(tensors: &[(String, HostTensor)]) -> InputSet {
    let mut set = InputSet::new();
    for (name, t) in tensors {
        set.insert(name.clone(), t.clone());
    }
    set
}

#[test]
fn decode_step_plan_has_fused_gemv_chains() {
    let engine = engine();
    let cfg = DecoderConfig::gpt_mini();
    let g = decoder_step_graph("gpt-mini", &cfg, 16);
    let plan = engine.compile_plan(&g).unwrap();
    let b = plan.step_breakdown();
    assert_eq!(
        b.fused_steps,
        2 * cfg.layers as usize,
        "decode attention + FFN fused per layer"
    );
}

/// Evaluate the graph on the pure reference lane with the same named
/// tensors, returning output values in declaration order.
fn reference_outputs(g: &Graph, tensors: &[(String, HostTensor)], seed: u64) -> Vec<HostTensor> {
    let mut map = FxHashMap::default();
    for (name, t) in tensors {
        map.insert(g.input_named(name).expect("input bound"), t.clone());
    }
    let vals = evaluate(g, &map, seed).unwrap();
    g.outputs.iter().map(|o| vals[o.0].clone()).collect()
}

/// One compiled step plan shared by the property tests (compiling per
/// proptest case would dominate the suite's runtime).
fn shared_step_plan() -> &'static (Graph, Arc<ExecutablePlan>) {
    static PLAN: std::sync::OnceLock<(Graph, Arc<ExecutablePlan>)> = std::sync::OnceLock::new();
    PLAN.get_or_init(|| {
        let cfg = DecoderConfig::gpt_mini();
        let g = decoder_step_graph("gpt-mini", &cfg, 16);
        let plan = Arc::new(engine().compile_plan(&g).unwrap());
        (g, plan)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fused decode step is bit-identical to the reference lane for
    /// arbitrary seeds and positions, on both exec backends, at any
    /// widened batch width.
    #[test]
    fn fused_decode_step_bit_identity_property(
        seed in 0u64..500,
        pos in 0u64..16,
        width in 1usize..5,
    ) {
        let cfg = DecoderConfig::gpt_mini();
        let (g, plan) = shared_step_plan();
        let requests: Vec<Vec<(String, HostTensor)>> = (0..width as u64)
            .map(|r| step_tensors(&cfg, 16, pos, seed.wrapping_mul(31) + r))
            .collect();
        let sets: Vec<InputSet> = requests.iter().map(|t| to_input_set(t)).collect();
        let refs: Vec<&InputSet> = sets.iter().collect();
        let want: Vec<Vec<HostTensor>> = requests
            .iter()
            .map(|t| reference_outputs(g, t, seed))
            .collect();
        let batched = BatchedPlan::new(plan.clone());
        for backend in [ExecBackend::Interpreter, ExecBackend::Vectorized] {
            let mut arena = BufferArena::new();
            let outs = batched
                .execute_batch(
                    &refs,
                    RunOptions::seeded(seed).with_backend(backend),
                    &mut arena,
                    None,
                )
                .unwrap();
            for (r, (got, want)) in outs.iter().zip(&want).enumerate() {
                for ((name, a), b) in got.iter().zip(want.iter()) {
                    prop_assert_eq!(
                        &a.data,
                        &b.data,
                        "request {} output {} ({:?}, width {})",
                        r, name, backend, width
                    );
                }
            }
        }
    }
}

#[test]
fn fused_decode_step_matches_reference_on_both_backends() {
    let engine = engine();
    let cfg = DecoderConfig::gpt_mini();
    let t_b = 16;
    let g = decoder_step_graph("gpt-mini", &cfg, t_b);
    let runtime = ModelRuntime::new();
    runtime.register("fused", engine.compile_plan(&g).unwrap());
    for seed in [0u64, 7] {
        for pos in [0u64, 3, 15] {
            let tensors = step_tensors(&cfg, t_b, pos, seed + pos);
            let inputs = to_input_set(&tensors);
            let want = reference_outputs(&g, &tensors, seed);
            for backend in [ExecBackend::Interpreter, ExecBackend::Vectorized] {
                let got = runtime
                    .infer(
                        "fused",
                        &inputs,
                        RunOptions::seeded(seed).with_backend(backend),
                    )
                    .unwrap();
                for ((name, a), b) in got.iter().zip(want.iter()) {
                    assert_eq!(a.data, b.data, "output {name} differs ({backend:?})");
                }
            }
        }
    }
}

/// Compile a bucketed decode serving over the gpt-mini decoder.
fn decode_serving(cfg: &DecoderConfig, buckets: &[u64]) -> Arc<DecodeServing> {
    let engine = engine();
    let runtime = Arc::new(ModelRuntime::new());
    let spec = DecodeSpec {
        model: "gpt-mini".into(),
        layers: cfg.layers,
        hidden: cfg.hidden,
        heads: cfg.heads,
        kv_heads: cfg.kv_heads,
        buckets: buckets.to_vec(),
    };
    let c1 = *cfg;
    let c2 = *cfg;
    DecodeServing::compile(
        &engine,
        runtime,
        spec,
        move |t_b| decoder_step_graph("gpt-mini", &c1, t_b),
        move |t| decoder_forward_graph("gpt-mini", &c2, t),
    )
    .unwrap()
}

fn rel_l2(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| (*y as f64).powi(2)).sum::<f64>().sqrt();
    num / den.max(1e-30)
}

/// Teacher-forced session decode: prefill the first `p` rows of a ramp
/// sequence, then step through the rest. Every per-position logits row
/// must match one full-sequence forward pass.
#[test]
fn decode_session_prefill_then_steps_matches_full_forward() {
    let cfg = DecoderConfig::gpt_mini();
    let serving = decode_serving(&cfg, &[8, 16]);
    let (t, p, seed) = (12u64, 5u64, 3u64);
    let x = ramp(&[t, cfg.hidden], 1);

    // Ground truth: the full-sequence forward graph on the reference lane.
    let fwd = decoder_forward_graph("gpt-mini", &cfg, t);
    let tensors = vec![
        ("x".to_string(), x.clone()),
        ("mask".to_string(), causal_mask(cfg.heads, t, t)),
    ];
    let want = &reference_outputs(&fwd, &tensors, seed)[0];
    let vocab = (want.data.len() / t as usize) as u64;

    let mut session = serving.open(RunOptions::seeded(seed));
    let prompt = HostTensor::from_vec(
        &[p, cfg.hidden],
        x.data[..(p * cfg.hidden) as usize].to_vec(),
    );
    let prefill_logits = session.prefill(&prompt).unwrap();
    assert_eq!(prefill_logits.shape, vec![p, vocab]);
    assert_eq!(session.pos(), p);
    assert_eq!(session.capacity(), 8, "prompt of 5 fits the first bucket");
    let err = rel_l2(&prefill_logits.data, &want.data[..(p * vocab) as usize]);
    assert!(err < 1e-5, "prefill logits drift: {err}");

    for pos in p..t {
        let row = HostTensor::from_vec(
            &[1, cfg.hidden],
            x.data[(pos * cfg.hidden) as usize..((pos + 1) * cfg.hidden) as usize].to_vec(),
        );
        let logits = session.step(&row).unwrap();
        let w = &want.data[(pos * vocab) as usize..((pos + 1) * vocab) as usize];
        let err = rel_l2(&logits.data, w);
        assert!(err < 1e-5, "step logits drift at pos {pos}: {err}");
        assert_eq!(session.pos(), pos + 1);
    }
    assert_eq!(
        session.capacity(),
        16,
        "generation past 8 tokens migrated the cache to the next bucket"
    );
    // Sessions recycle through the serving arena: a second session's
    // prefill must still work after the first one is dropped.
    drop(session);
    let mut again = serving.open(RunOptions::seeded(seed));
    again.prefill(&prompt).unwrap();
}

/// Per-request backend overrides and the wall-clock reservoir are both
/// honored on the coalesced decode-step path (`ModelRuntime::submit`).
#[test]
fn session_steps_honor_backend_override_and_wall_stats() {
    let cfg = DecoderConfig::gpt_mini();
    let serving = decode_serving(&cfg, &[16]);
    let seed = 11u64;
    let prompt = ramp(&[3, cfg.hidden], 2);
    let steps = 5u64;

    let mut logits_by_backend: Vec<Vec<Vec<f32>>> = Vec::new();
    for backend in [
        None,
        Some(ExecBackend::Interpreter),
        Some(ExecBackend::Vectorized),
    ] {
        let mut opts = RunOptions::seeded(seed);
        opts.backend = backend;
        let mut session = serving.open(opts);
        session.prefill(&prompt).unwrap();
        let mut rows = Vec::new();
        for i in 0..steps {
            let row = ramp(&[1, cfg.hidden], 40 + i);
            rows.push(session.step(&row).unwrap().data);
        }
        logits_by_backend.push(rows);
    }
    // Backends are bit-identical, so any divergence means the override
    // was dropped somewhere on the coalesced path.
    assert_eq!(logits_by_backend[0], logits_by_backend[1]);
    assert_eq!(logits_by_backend[1], logits_by_backend[2]);

    let stats = serving.runtime().stats();
    let step_plan = stats
        .plans
        .iter()
        .find(|p| p.model == "gpt-mini@step16")
        .expect("step plan served requests");
    assert_eq!(step_plan.requests, 3 * steps);
    assert!(
        step_plan.wall_p50_latency > 0.0 && step_plan.wall_p95_latency > 0.0,
        "wall-clock reservoir must be populated by submitted steps"
    );
    assert!(step_plan.fused_steps >= 2 * cfg.layers as usize);
}
