//! Property-based tests over the GPU substrate: the timing model must be
//! a sane cost function (monotone in device resources, total over valid
//! programs) and the functional interpreter must be exact on structured
//! inputs and numerically robust on adversarial ones.

use proptest::prelude::*;

use mcfuser::ir::Epilogue;
use mcfuser::prelude::*;
use mcfuser::sim::{execute, measure, StreamKernel};
use mcfuser::tile::{lower, Candidate, LoweringOptions, TilingExpr};

fn small_chain() -> impl Strategy<Value = ChainSpec> {
    (
        prop::sample::select(vec![32u64, 64, 96]),
        prop::sample::select(vec![32u64, 64]),
        prop::sample::select(vec![16u64, 32]),
        prop::sample::select(vec![16u64, 32]),
    )
        .prop_map(|(m, n, k, h)| ChainSpec::gemm_chain("prop-sim", 1, m, n, k, h))
}

fn candidate_for(chain: &ChainSpec, tiles: &[u64]) -> Candidate {
    Candidate::new(TilingExpr::parse("mhnk", chain).unwrap(), tiles.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// More DRAM bandwidth never makes a kernel slower.
    #[test]
    fn faster_dram_never_slower(chain in small_chain()) {
        let cand = candidate_for(&chain, &[32, 16, 32, 16]);
        let k = lower(&chain, &cand, &LoweringOptions::default()).unwrap();
        let base = DeviceSpec::a100();
        let mut fast = base.clone();
        fast.dram_bandwidth *= 2.0;
        let t_base = measure(&k.program, &base).time;
        let t_fast = measure(&k.program, &fast).time;
        prop_assert!(t_fast <= t_base * 1.0001);
    }

    /// More peak compute never makes a kernel slower.
    #[test]
    fn faster_alu_never_slower(chain in small_chain()) {
        let cand = candidate_for(&chain, &[32, 16, 32, 16]);
        let k = lower(&chain, &cand, &LoweringOptions::default()).unwrap();
        let base = DeviceSpec::a100();
        let mut fast = base.clone();
        fast.peak_tensor_flops *= 2.0;
        fast.peak_fp32_flops *= 2.0;
        let t_base = measure(&k.program, &base).time;
        let t_fast = measure(&k.program, &fast).time;
        prop_assert!(t_fast <= t_base * 1.0001);
    }

    /// Lower launch overhead never makes a kernel slower; stream kernels
    /// are bounded below by the launch overhead itself.
    #[test]
    fn launch_overhead_floors(elems in 1u64..100_000) {
        let dev = DeviceSpec::a100();
        let k = StreamKernel::elementwise("x", elems, 2);
        let t = k.time(&dev);
        prop_assert!(t >= dev.launch_overhead);
        let mut cheap = dev.clone();
        cheap.launch_overhead /= 2.0;
        prop_assert!(k.time(&cheap) <= t);
    }

    /// Timing is invariant under grid-order relabeling: transposing the
    /// (m, h) grid dims does not change traffic or time.
    #[test]
    fn grid_transpose_invariance(chain in small_chain()) {
        let cand = candidate_for(&chain, &[32, 16, 32, 16]);
        let k = lower(&chain, &cand, &LoweringOptions::default()).unwrap();
        let dev = DeviceSpec::a100();
        let p1 = measure(&k.program, &dev);
        let mut swapped = k.program.clone();
        swapped.grid.swap(1, 2);
        // Swap the VarRef grid indices everywhere to stay consistent.
        fn swap_refs(stmts: &mut Vec<mcfuser::sim::BlockStmt>) {
            use mcfuser::sim::{BlockStmt, VarRef};
            for s in stmts {
                match s {
                    BlockStmt::Loop { body, .. } => swap_refs(body),
                    BlockStmt::Load { src, .. } => {
                        for ix in &mut src.indices {
                            ix.var = match ix.var {
                                VarRef::Grid(1) => VarRef::Grid(2),
                                VarRef::Grid(2) => VarRef::Grid(1),
                                v => v,
                            };
                        }
                    }
                    BlockStmt::Store { dst, .. } => {
                        for ix in &mut dst.indices {
                            ix.var = match ix.var {
                                VarRef::Grid(1) => VarRef::Grid(2),
                                VarRef::Grid(2) => VarRef::Grid(1),
                                v => v,
                            };
                        }
                    }
                    _ => {}
                }
            }
        }
        swap_refs(&mut swapped.body);
        let p2 = measure(&swapped, &dev);
        prop_assert!((p1.time - p2.time).abs() < 1e-12);
        prop_assert_eq!(p1.blocks, p2.blocks);
    }

    /// Functional execution is linear: scaling every input by c scales a
    /// pure GEMM chain's output by c² (two matmuls).
    #[test]
    fn exec_is_bilinear(chain in small_chain(), c in 0.25f32..2.0) {
        let cand = candidate_for(&chain, &[32, 16, 32, 16]);
        let k = lower(&chain, &cand, &LoweringOptions::default()).unwrap();
        let inputs = chain.random_inputs(11);

        let run = |scale: f32| {
            let mut st = TensorStorage::for_program(&k.program);
            for (i, t) in inputs.iter().enumerate() {
                let mut t = t.clone();
                if i == 0 || i == 1 {
                    for v in &mut t.data {
                        *v *= scale;
                    }
                }
                st.tensors[i] = t;
            }
            execute(&k.program, &mut st).unwrap();
            st.tensors.last().unwrap().clone()
        };
        let base = run(1.0);
        let scaled = run(c);
        // scaled ≈ c² * base (A and W0 scaled; W1 unscaled), up to f16
        // storage rounding. Near-zero outputs (cancellation) make
        // element-wise relative error meaningless, so compare against the
        // RMS magnitude of the expected tensor.
        let rms = (base.data.iter().map(|b| {
            let w = b * c * c;
            (w * w) as f64
        }).sum::<f64>() / base.data.len() as f64).sqrt() as f32;
        let mut max_dev = 0.0f32;
        for (s, b) in scaled.data.iter().zip(&base.data) {
            let want = b * c * c;
            max_dev = max_dev.max((s - want).abs());
        }
        prop_assert!(max_dev < 0.05 * rms.max(1e-3), "max dev {} vs rms {}", max_dev, rms);
    }
}

/// Adversarial numerics: softmax over constant and extreme scores must
/// stay finite and normalized in the fused kernel.
#[test]
fn fused_softmax_robust_to_extreme_scores() {
    let chain = ChainSpec::attention("edge", 1, 32, 32, 16, 16);
    let cand = Candidate::new(
        TilingExpr::parse("mhnk", &chain).unwrap(),
        vec![16, 16, 16, 16],
    );
    let k = lower(&chain, &cand, &LoweringOptions::default()).unwrap();
    for fill in [0.0f32, 1.0, -1.0, 30.0] {
        let mut st = TensorStorage::for_program(&k.program);
        for (i, shape) in chain.input_shapes().iter().enumerate() {
            let len: u64 = shape.iter().product();
            st.tensors[i] = mcfuser::sim::HostTensor::from_vec(
                shape,
                vec![if i == 2 { 1.0 } else { fill }; len as usize],
            );
        }
        execute(&k.program, &mut st).unwrap();
        let out = st.tensors.last().unwrap();
        assert!(
            out.data.iter().all(|v| v.is_finite()),
            "non-finite output for fill {fill}"
        );
        // With V = all-ones, softmax(QKᵀ)·V must be exactly all-ones rows.
        for v in &out.data {
            assert!((v - 1.0).abs() < 1e-3, "got {v} for fill {fill}");
        }
    }
}

/// Zero inputs flow through every epilogue without NaNs.
#[test]
fn zero_inputs_are_safe() {
    for epi in [
        Epilogue::None,
        Epilogue::Relu,
        Epilogue::Scale(2.0),
        Epilogue::Softmax { scale: 1.0 },
    ] {
        let mut chain = ChainSpec::gemm_chain("zeros", 1, 32, 32, 16, 16);
        chain.epilogues[0] = epi;
        let cand = Candidate::new(
            TilingExpr::parse("mhnk", &chain).unwrap(),
            vec![16, 16, 16, 16],
        );
        let k = lower(&chain, &cand, &LoweringOptions::default()).unwrap();
        let mut st = TensorStorage::for_program(&k.program);
        execute(&k.program, &mut st).unwrap();
        assert!(st
            .tensors
            .last()
            .unwrap()
            .data
            .iter()
            .all(|v| v.is_finite()));
    }
}
