//! Integration: the `FusionEngine` session contract — cache-key
//! soundness (the dtype/layout collision the old ad-hoc key had),
//! disk-cache persistence across engine lifetimes, and determinism of
//! parallel tuning.

use std::path::PathBuf;

use mcfuser::baselines::Relay;
use mcfuser::core::{CacheKey, SearchParams, SpacePolicy};
use mcfuser::ir::{evaluate, NodeId, Op};
use mcfuser::prelude::*;
use mcfuser::sim::HostTensor;
use mcfuser::workloads::{bert_graph, BertConfig};
use rustc_hash::FxHashMap;

fn key_for(chain: &ChainSpec, layout: &[bool]) -> CacheKey {
    CacheKey::new(
        chain,
        layout,
        &DeviceSpec::a100(),
        &SearchParams::default(),
        &SpacePolicy::default(),
    )
}

/// Regression for the old `format!("b{}m{}d{:?}e{:?}")` cache key, which
/// silently ignored dtype: an f16 and an f32 chain of identical shape
/// shared one `TunedKernel`. The `CacheKey` must distinguish them.
#[test]
fn cache_key_distinguishes_dtype() {
    let f16 = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
    let mut f32 = f16.clone();
    f32.dtype = DType::F32;
    assert_ne!(key_for(&f16, &[]), key_for(&f32, &[]));
    assert_ne!(
        key_for(&f16, &[]).canonical(),
        key_for(&f32, &[]).canonical()
    );
}

/// Same regression for the input-transpose layout (attention stores K as
/// `[N, K]` while the chain's W₀ is `[K, N]`): layout is part of the
/// tuning task's identity.
#[test]
fn cache_key_distinguishes_transposed_layout() {
    let chain = ChainSpec::attention("s", 2, 128, 128, 32, 32);
    let natural = key_for(&chain, &[false, false, false]);
    let attention_layout = key_for(&chain, &[false, true, false]);
    assert_ne!(natural, attention_layout);
    assert_ne!(natural.canonical(), attention_layout.canonical());
}

/// `[]`, `[false]`, and `[false; n]` all describe the natural layout:
/// a chain tuned directly (empty layout) must be a cache hit when the
/// compiler later extracts the identical chain with explicit all-false
/// transpose flags.
#[test]
fn natural_layout_is_shared_between_tune_and_compile() {
    let engine = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build();
    let chain = ChainSpec::gemm_chain("pre", 1, 512, 256, 64, 64);
    engine.tune(&chain).unwrap();

    let mut gb = GraphBuilder::new("g", DType::F16);
    let x = gb.input("x", vec![512, 64]);
    let y = gb.linear("fc1", x, 256, false);
    let z = gb.linear("fc2", y, 64, false);
    let g = gb.finish(vec![z]);
    let model = engine.compile(&g).unwrap();
    assert_eq!(model.chains.len(), 1);
    assert!(
        model.chains[0].cache_hit,
        "all-false layout must reuse the natural-layout tuning"
    );
    assert_eq!(engine.stats().cache_misses, 1);
}

/// Everything else being equal, the key must also separate devices and
/// search configurations (a schedule tuned for the A100 must never be
/// served to the RTX 3080).
#[test]
fn cache_key_distinguishes_device_and_params() {
    let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
    let params = SearchParams::default();
    let policy = SpacePolicy::default();
    let a100 = CacheKey::new(&chain, &[], &DeviceSpec::a100(), &params, &policy);
    let r3080 = CacheKey::new(&chain, &[], &DeviceSpec::rtx3080(), &params, &policy);
    assert_ne!(a100, r3080);
    let other_params = SearchParams {
        topk: params.topk + 4,
        ..params
    };
    let tweaked = CacheKey::new(&chain, &[], &DeviceSpec::a100(), &other_params, &policy);
    assert_ne!(a100, tweaked);
}

fn temp_cache_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcfuser-engine-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.json"))
}

/// Tune → persist → a *fresh* engine pointed at the same file serves the
/// schedule from disk: identical result, zero new measurements.
#[test]
fn disk_cache_round_trip_spends_no_measurements() {
    let path = temp_cache_path("round-trip");
    let _ = std::fs::remove_file(&path);
    let chain = ChainSpec::attention("s", 4, 256, 256, 64, 64);

    let first = FusionEngine::builder(DeviceSpec::a100())
        .cache(CachePolicy::DiskJson(path.clone()))
        .build();
    let tuned = first.tune(&chain).unwrap();
    assert!(first.session_report().measurements > 0);
    drop(first);

    let fresh = FusionEngine::builder(DeviceSpec::a100())
        .cache(CachePolicy::DiskJson(path.clone()))
        .build();
    let cached = fresh.tune(&chain).unwrap();
    assert_eq!(cached.candidate, tuned.candidate);
    assert_eq!(cached.profile.time, tuned.profile.time);
    assert_eq!(
        fresh.session_report().measurements,
        0,
        "a disk hit must cost zero new measurements"
    );
    assert_eq!(fresh.stats().cache_hits, 1);
    assert_eq!(fresh.stats().cache_misses, 0);
    let _ = std::fs::remove_file(&path);
}

/// The whole compile path through the disk cache: a fresh engine
/// compiles the same model without tuning anything.
#[test]
fn disk_cached_compile_is_tuning_free() {
    let path = temp_cache_path("compile");
    let _ = std::fs::remove_file(&path);
    let g = bert_graph(
        "bert-cache",
        &BertConfig {
            layers: 2,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );

    let first = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .cache(CachePolicy::DiskJson(path.clone()))
        .build();
    let warm = first.compile(&g).unwrap();
    drop(first);

    let fresh = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .cache(CachePolicy::DiskJson(path.clone()))
        .build();
    let cold_start = fresh.compile(&g).unwrap();
    assert_eq!(cold_start.total_time, warm.total_time);
    assert!(cold_start.chains.iter().all(|c| c.cache_hit));
    assert_eq!(fresh.session_report().measurements, 0);
    // Only the fallback's preparation cost remains.
    assert!(cold_start.tuning_seconds < warm.tuning_seconds);

    // And the cached model still computes the right values, through the
    // plan serving path.
    let mut inputs: FxHashMap<NodeId, HostTensor> = FxHashMap::default();
    for (i, node) in g.nodes.iter().enumerate() {
        if matches!(node.op, Op::Input) {
            let len: u64 = node.shape.iter().product();
            inputs.insert(
                NodeId(i),
                HostTensor::from_vec(
                    &node.shape,
                    (0..len).map(|x| ((x % 23) as f32 - 11.0) / 23.0).collect(),
                ),
            );
        }
    }
    let plan = cold_start.plan(&g).unwrap();
    let fused = plan
        .execute(&InputSet::from_node_values(&inputs), RunOptions::seeded(11))
        .unwrap();
    let reference = evaluate(&g, &inputs, 11).unwrap();
    let out = g.outputs[0];
    let err = fused.primary().rel_l2_error(&reference[out.0]);
    assert!(err < 5e-2, "cached model error {err}");
    let _ = std::fs::remove_file(&path);
}

/// Parallel tuning must be observationally identical to serial: same
/// candidates, same `CompiledModel.total_time`, same aggregate tuning
/// cost, at parallelism 1 and 8.
#[test]
fn parallel_and_serial_sessions_agree() {
    let g = bert_graph(
        "bert-par",
        &BertConfig {
            layers: 2,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    let chains: Vec<ChainSpec> = vec![
        ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64),
        ChainSpec::attention("s1", 4, 256, 256, 64, 64),
        ChainSpec::gemm_chain("g2", 2, 256, 256, 128, 64),
        ChainSpec::attention("s2", 2, 128, 128, 32, 32),
    ];

    let run = |parallelism: usize| {
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(Relay::new())
            .parallelism(parallelism)
            .build();
        let tuned: Vec<TunedKernel> = engine
            .tune_many(&chains)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let model = engine.compile(&g).unwrap();
        let report = engine.session_report();
        (
            tuned
                .iter()
                .map(|t| (t.candidate.clone(), t.profile.time.to_bits()))
                .collect::<Vec<_>>(),
            model.total_time.to_bits(),
            model
                .chains
                .iter()
                .map(|c| c.tuned.candidate.clone())
                .collect::<Vec<_>>(),
            report.measurements,
            report.virtual_seconds.to_bits(),
        )
    };

    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.0, parallel.0, "per-chain results must match");
    assert_eq!(serial.1, parallel.1, "total_time must be bit-identical");
    assert_eq!(serial.2, parallel.2, "compiled candidates must match");
    assert_eq!(serial.3, parallel.3, "measurement counts must match");
    assert_eq!(serial.4, parallel.4, "virtual cost must be bit-identical");
}

/// Structured errors carry the failing chain and device.
#[test]
fn tune_error_carries_context() {
    // A degenerate chain whose only tile candidates cannot be launched:
    // huge dims with a tiny shared-memory device is impractical to build
    // here, so exercise the MissingFallback variant instead plus the
    // Display form of NoViableCandidate.
    let engine = FusionEngine::builder(DeviceSpec::a100()).build();
    let g = bert_graph(
        "bert-err",
        &BertConfig {
            layers: 1,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    let err = engine.compile(&g).unwrap_err();
    assert_eq!(
        err,
        TuneError::MissingFallback {
            graph: "bert-err".into()
        }
    );
    assert!(err.to_string().contains("bert-err"));

    let nv = TuneError::NoViableCandidate {
        chain: "S9".into(),
        device: "A100-PCIE-40GB".into(),
    };
    assert!(nv.to_string().contains("S9") && nv.to_string().contains("A100"));
}

/// Compare two tuned kernels field by field (candidate, measured
/// profile, lowered kernel footprint, pruning waterfall) — "bit
/// identical" for everything the serving path consumes.
fn assert_tuned_eq(a: &TunedKernel, b: &TunedKernel) {
    assert_eq!(a.candidate, b.candidate);
    assert_eq!(a.profile.time, b.profile.time);
    assert_eq!(a.profile.gmem_bytes, b.profile.gmem_bytes);
    assert_eq!(a.kernel.smem_bytes, b.kernel.smem_bytes);
    assert_eq!(a.prune_stats, b.prune_stats);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.measured, b.measured);
}

/// The batched-tuning acceptance contract: `tune_many` over N chains
/// with identical tile domains performs exactly ONE Rule-4 scan (the
/// `space_builds` probe), and every search that runs in the shared
/// space returns results bit-identical to a per-chain space build.
#[test]
fn tune_many_same_domain_chains_share_one_rule4_scan() {
    // Four same-shaped chains with distinct names — the BERT-layer
    // pattern (every layer's attention is content-identical).
    let chains: Vec<ChainSpec> = (0..4)
        .map(|l| ChainSpec::attention(format!("layer{l}.attn"), 4, 128, 128, 32, 32))
        .collect();

    // The batched entry point: one scan for the whole batch.
    let batch_engine = FusionEngine::builder(DeviceSpec::a100()).build();
    let batched: Vec<TunedKernel> = batch_engine
        .tune_many(&chains)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(batched.len(), 4);
    assert_eq!(
        batch_engine.stats().space_builds,
        1,
        "4 same-domain chains must share exactly one Rule-4 scan"
    );

    // Force four *independent searches* over the shared space (schedule
    // reuse off, separate tune() calls): still one scan, and each chain's
    // result is bit-identical to tuning it with its own per-chain space
    // build — sharing the space must not perturb the search.
    let shared = FusionEngine::builder(DeviceSpec::a100())
        .cache(CachePolicy::Disabled)
        .build();
    for (i, chain) in chains.iter().enumerate() {
        let in_shared_space = shared.tune(chain).unwrap();
        let solo = FusionEngine::builder(DeviceSpec::a100())
            .space_cache(false)
            .build();
        let per_chain_build = solo.tune(chain).unwrap();
        assert_eq!(solo.stats().space_builds, 1);
        assert_eq!(solo.stats().space_cache_hits, 0);
        assert_tuned_eq(&in_shared_space, &per_chain_build);
        assert_eq!(shared.stats().space_cache_hits, i as u64);
    }
    let stats = shared.stats();
    assert_eq!(stats.cache_misses, 4, "four full searches ran");
    assert_eq!(stats.space_builds, 1, "over one shared space");
    assert_eq!(stats.space_cache_hits, 3);
}

/// The space cache works *under* the tuning cache, so it still saves
/// scans when schedule reuse is off: with `CachePolicy::Disabled`,
/// re-tuning the same chain re-searches (cache_misses climbs) but never
/// re-scans (space_builds stays 1), and the re-search in the cached
/// space is bit-identical to one in a fresh space.
#[test]
fn space_cache_saves_scans_even_with_tuning_cache_disabled() {
    let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
    let engine = FusionEngine::builder(DeviceSpec::a100())
        .cache(CachePolicy::Disabled)
        .build();
    let first = engine.tune(&chain).unwrap();
    let second = engine.tune(&chain).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 2, "no schedule reuse was configured");
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.space_builds, 1, "but the space was built once");
    assert_eq!(stats.space_cache_hits, 1);
    assert_tuned_eq(&first, &second);

    // The contrast: with the space cache off, every re-tune re-scans.
    let solo = FusionEngine::builder(DeviceSpec::a100())
        .cache(CachePolicy::Disabled)
        .space_cache(false)
        .build();
    let fresh_a = solo.tune(&chain).unwrap();
    let fresh_b = solo.tune(&chain).unwrap();
    assert_eq!(solo.stats().space_builds, 2);
    assert_tuned_eq(&first, &fresh_a);
    assert_tuned_eq(&first, &fresh_b);
}

/// Layout variants of one chain are distinct tuning tasks (transposed
/// inputs change the lowered kernel) but share the same candidate
/// space — the space depends on chain content only.
#[test]
fn layout_variants_share_the_candidate_space() {
    let chain = ChainSpec::attention("s", 2, 128, 128, 32, 32);
    let engine = FusionEngine::builder(DeviceSpec::a100()).build();
    engine.tune_with_layout(&chain, &[]).unwrap();
    engine
        .tune_with_layout(&chain, &[false, true, false])
        .unwrap();
    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 2, "two distinct tuning tasks");
    assert_eq!(stats.space_builds, 1, "one shared space");
    assert_eq!(stats.space_cache_hits, 1);
}

/// A tuning-cache (schedule) hit rehydrates without touching spaces at
/// all: the second `tune` of an identical chain builds nothing.
#[test]
fn schedule_hits_build_no_spaces() {
    let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
    let engine = FusionEngine::builder(DeviceSpec::a100()).build();
    engine.tune(&chain).unwrap();
    engine.tune(&chain).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.space_builds, 1);
    assert_eq!(
        stats.space_cache_hits, 0,
        "a schedule hit never reaches the space cache"
    );
}

/// Tuning-cache portability: engines targeting different devices can
/// share one cache store (a fleet-wide schedule database), and the
/// device fingerprint inside [`CacheKey`] keeps their entries distinct —
/// an A100 schedule is never served to an H100 session, while re-tuning
/// on the same device is a clean hit.
#[test]
fn shared_cache_keeps_per_device_entries_distinct() {
    use std::sync::Arc;

    use mcfuser::core::{CachedTuning, MemoryCache, TuningCache};

    /// `cache_store` takes ownership, so sharing one `MemoryCache`
    /// between engines goes through this forwarding handle.
    struct Shared(Arc<MemoryCache>);
    impl TuningCache for Shared {
        fn get(&self, key: &CacheKey) -> Option<CachedTuning> {
            self.0.get(key)
        }
        fn put(&self, key: &CacheKey, entry: CachedTuning) {
            self.0.put(key, entry)
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn evictions(&self) -> u64 {
            self.0.evictions()
        }
    }

    let store = Arc::new(MemoryCache::new());
    let chain = ChainSpec::gemm_chain("portable", 1, 256, 128, 64, 64);

    let a100 = FusionEngine::builder(DeviceSpec::a100())
        .cache_store(Box::new(Shared(store.clone())))
        .build();
    let tuned_a = a100.tune(&chain).unwrap();
    assert_eq!(a100.stats().cache_misses, 1);
    assert_eq!(store.len(), 1);

    // Same chain, same store, different device: must miss and add a
    // second entry rather than replaying the A100 schedule.
    let h100 = FusionEngine::builder(DeviceSpec::h100())
        .cache_store(Box::new(Shared(store.clone())))
        .build();
    h100.tune(&chain).unwrap();
    let h_stats = h100.stats();
    assert_eq!(h_stats.cache_hits, 0, "cross-device cache hit");
    assert_eq!(h_stats.cache_misses, 1);
    assert_eq!(store.len(), 2, "one entry per device");

    // A fresh A100 engine on the same store rehydrates without searching.
    let rewarmed = FusionEngine::builder(DeviceSpec::a100())
        .cache_store(Box::new(Shared(store.clone())))
        .build();
    let again = rewarmed.tune(&chain).unwrap();
    assert_eq!(rewarmed.stats().cache_hits, 1);
    assert_eq!(rewarmed.stats().cache_misses, 0);
    assert_eq!(again.candidate, tuned_a.candidate);
    assert_eq!(store.len(), 2);

    // Key level: the two tasks differ exactly in the device fingerprint.
    let params = SearchParams::default();
    let policy = SpacePolicy::default();
    let ka = CacheKey::new(&chain, &[], &DeviceSpec::a100(), &params, &policy);
    let kh = CacheKey::new(&chain, &[], &DeviceSpec::h100(), &params, &policy);
    assert_ne!(ka.device, kh.device);
    assert_eq!((ka.dims, ka.config), (kh.dims.clone(), kh.config.clone()));
}
