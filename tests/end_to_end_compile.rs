//! Integration: end-to-end graph compilation through the `FusionEngine`
//! session API — partitioning, chain tuning, fallback pricing, and
//! functional equivalence of the fused model with pure reference
//! evaluation. Execution goes through the serving path
//! (`compile_plan` + `ModelRuntime::infer`); the deprecated
//! `FusionEngine::execute` shim is gone.

use rustc_hash::FxHashMap;

use mcfuser::baselines::{Ansor, Relay};
use mcfuser::ir::{causal_mask, evaluate, partition, NodeId, Op};
use mcfuser::prelude::*;
use mcfuser::workloads::{bert_graph, masked_attention_graph, mixer_block, mlp4_graph, BertConfig};

use mcfuser::core::OpCostModel as _;

fn mini_bert() -> Graph {
    bert_graph(
        "bert-mini",
        &BertConfig {
            layers: 2,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    )
}

fn inputs_for(graph: &Graph) -> FxHashMap<NodeId, mcfuser::sim::HostTensor> {
    let mut m = FxHashMap::default();
    for (i, node) in graph.nodes.iter().enumerate() {
        if matches!(node.op, Op::Input) {
            let len: u64 = node.shape.iter().product();
            m.insert(
                NodeId(i),
                mcfuser::sim::HostTensor::from_vec(
                    &node.shape,
                    (0..len).map(|x| ((x % 17) as f32 - 8.0) / 17.0).collect(),
                ),
            );
        }
    }
    m
}

fn engine_with_relay() -> FusionEngine {
    FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build()
}

/// Compile `graph`, register the frozen plan in a `ModelRuntime`, and
/// serve one node-keyed request — the migration target of the removed
/// `FusionEngine::execute(&graph, &model, &inputs, seed)` shim. Returns
/// the primary (first declared) output.
fn infer_once(
    engine: &FusionEngine,
    graph: &Graph,
    inputs: &FxHashMap<NodeId, mcfuser::sim::HostTensor>,
    seed: u64,
) -> mcfuser::sim::HostTensor {
    let plan = engine.compile_plan(graph).expect("plan freezes");
    let runtime = ModelRuntime::new();
    runtime.register(graph.name.clone(), plan);
    runtime
        .infer(
            &graph.name,
            &InputSet::from_node_values(inputs),
            RunOptions::seeded(seed),
        )
        .expect("request served")
        .primary()
        .clone()
}

#[test]
fn bert_partition_finds_attention_and_ffn_per_layer() {
    // At this mini scale (hidden 128, seq 64) the FFN's reductions are
    // skinny enough to classify as memory bound, so the generalized
    // partitioner fuses it alongside the attention module: per layer,
    // one softmax chain and one biased GELU Linear chain.
    let g = mini_bert();
    let part = partition(&g, &DeviceSpec::a100());
    assert_eq!(part.chains.len(), 4);
    let attention = part.chains.iter().filter(|c| c.chain.has_softmax()).count();
    let ffn = part
        .chains
        .iter()
        .filter(|c| c.chain.biases.iter().any(|&b| b))
        .count();
    assert_eq!(attention, 2);
    assert_eq!(ffn, 2);
}

#[test]
fn compiled_bert_matches_reference_numerically() {
    let g = mini_bert();
    let engine = engine_with_relay();
    let inputs = inputs_for(&g);
    let fused = infer_once(&engine, &g, &inputs, 3);
    let reference = evaluate(&g, &inputs, 3).unwrap();
    let out = g.outputs[0];
    let err = fused.rel_l2_error(&reference[out.0]);
    assert!(err < 5e-2, "end-to-end error {err}");
}

#[test]
fn fusion_reduces_total_time() {
    let g = mini_bert();
    let device = DeviceSpec::a100();
    let relay = Relay::new();
    let model = FusionEngine::builder(device.clone())
        .fallback(Relay::new())
        .build()
        .compile(&g)
        .unwrap();
    // Price the same graph with no fusion at all.
    let all_nodes: Vec<NodeId> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !matches!(n.op, Op::Input | Op::Weight))
        .map(|(i, _)| NodeId(i))
        .collect();
    let unfused: f64 = all_nodes
        .iter()
        .map(|&n| relay.op_time(&g, n, &device))
        .sum();
    assert!(
        model.total_time < unfused,
        "fused {} vs unfused {}",
        model.total_time,
        unfused
    );
}

#[test]
fn identical_layers_share_one_tuning_session() {
    let g = mini_bert();
    let engine = engine_with_relay();
    let model = engine.compile(&g).unwrap();
    assert_eq!(model.chains.len(), 4);
    // Attention chains come first (both layers), then the FFN chains.
    assert_eq!(
        model.chains[0].tuned.candidate, model.chains[1].tuned.candidate,
        "layer attention chains are identical and must share tuning"
    );
    assert_eq!(
        model.chains[2].tuned.candidate, model.chains[3].tuned.candidate,
        "layer FFN chains are identical and must share tuning"
    );
    // Exactly two fresh tunings: one attention, one FFN shape.
    assert_eq!(engine.stats().cache_misses, 2);
}

#[test]
fn ansor_fallback_compiles_too() {
    let g = mini_bert();
    let engine = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Ansor::with_trials(30))
        .build();
    let model = engine.compile(&g).unwrap();
    assert_eq!(model.fallback, "Ansor");
    assert!(model.total_time.is_finite() && model.total_time > 0.0);
    assert!(model.tuning_seconds > 0.0);
}

#[test]
fn fallbacks_can_share_one_engines_chain_cache() {
    // Comparing fallbacks through one session: the chains are tuned
    // once, then re-priced with a different remainder backend.
    let g = mini_bert();
    let engine = engine_with_relay();
    let with_relay = engine.compile(&g).unwrap();
    let with_ansor = engine
        .compile_with_fallback(&g, &Ansor::with_trials(30))
        .unwrap();
    assert_eq!(with_relay.chain_time, with_ansor.chain_time);
    assert_eq!(engine.stats().cache_misses, 2, "chains tuned exactly once");
    assert!(with_ansor.chains.iter().all(|c| c.cache_hit));
}

#[test]
fn mlp4_compiles_into_one_fused_kernel_and_matches_reference() {
    let g = mlp4_graph();
    let engine = engine_with_relay();
    let model = engine.compile(&g).unwrap();
    assert_eq!(model.chains.len(), 1, "whole MLP fuses into one chain");
    assert_eq!(model.chains[0].chain.num_ops(), 4);
    assert!(model.rest_times.is_empty());
    let inputs = inputs_for(&g);
    let fused = infer_once(&engine, &g, &inputs, 13);
    let reference = evaluate(&g, &inputs, 13).unwrap();
    let out = g.outputs[0];
    let err = fused.rel_l2_error(&reference[out.0]);
    assert!(err < 5e-2, "mlp4 error {err}");
}

#[test]
fn masked_attention_compiles_and_matches_reference() {
    let (g, mask) = masked_attention_graph(4, 64, 32);
    let engine = engine_with_relay();
    let model = engine.compile(&g).unwrap();
    assert_eq!(model.chains.len(), 1);
    assert!(model.chains[0].chain.epilogues[0].needs_mask());
    let mut inputs = inputs_for(&g);
    inputs.insert(mask, causal_mask(4, 64, 64));
    let fused = infer_once(&engine, &g, &inputs, 17);
    let reference = evaluate(&g, &inputs, 17).unwrap();
    let out = g.outputs[0];
    let err = fused.rel_l2_error(&reference[out.0]);
    assert!(err < 5e-2, "masked attention error {err}");
}

#[test]
fn mixer_block_compiles_and_fuses() {
    let g = mixer_block(128, 64, 64, 256);
    let engine = engine_with_relay();
    let model = engine.compile(&g).unwrap();
    assert!(!model.chains.is_empty(), "token/channel MLPs should fuse");
    let inputs = inputs_for(&g);
    let fused = infer_once(&engine, &g, &inputs, 5);
    let reference = evaluate(&g, &inputs, 5).unwrap();
    let out = g.outputs[0];
    let err = fused.rel_l2_error(&reference[out.0]);
    assert!(err < 5e-2, "mixer error {err}");
}
