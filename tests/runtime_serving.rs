//! Integration: the serving API — `ExecutablePlan` + `ModelRuntime`.
//!
//! The contract under test:
//!
//! * plans are `Send + Sync`, and an 8-thread stress run against one
//!   runtime produces outputs bit-identical to serial execution per
//!   `(model, seed)`, with request counts adding up;
//! * the buffer plan is built once at `plan()` time and recycles dead
//!   intermediates (peak live strictly below the node count on BERT);
//! * every `ExecError` variant fires on the malformed request that
//!   names it;
//! * node-keyed requests (`InputSet::from_node_values`, the calling
//!   convention of the removed `FusionEngine::execute` shim) agree
//!   with name-keyed ones bit for bit, and binding is strict —
//!   undeclared inputs are rejected;
//! * engine cache persistence failures surface in `EngineStats` and as
//!   a `Result` from `ModelRuntime::shutdown`.

use std::sync::Arc;

use mcfuser::baselines::Relay;
use mcfuser::core::cache::CachedTuning;
use mcfuser::core::{CacheKey, PlanStats};
use mcfuser::ir::NodeId;
use mcfuser::prelude::*;
use mcfuser::workloads::{bert_graph, BertConfig};

fn engine() -> FusionEngine {
    FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build()
}

/// A tiny 2-layer MLP (fuses into one chain).
fn mlp_graph(name: &str) -> Graph {
    let mut gb = GraphBuilder::new(name, DType::F16);
    let x = gb.input("x", vec![64, 32]);
    let y = gb.linear("fc1", x, 64, false);
    let z = gb.linear("fc2", y, 32, false);
    gb.finish(vec![z])
}

/// A tiny attention module with a layer norm tail (fused chain + rest).
fn attn_graph(name: &str) -> Graph {
    let mut gb = GraphBuilder::new(name, DType::F16);
    let q = gb.input("q", vec![2, 64, 32]);
    let k = gb.input("k", vec![2, 64, 32]);
    let v = gb.input("v", vec![2, 64, 32]);
    let s = gb.batch_matmul("qk", q, k, true);
    let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
    let o = gb.batch_matmul("pv", p, v, false);
    let ln = gb.layer_norm("ln", o);
    gb.finish(vec![ln])
}

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 19) as f32 - 9.0) / 19.0)
            .collect(),
    )
}

fn inputs_for(plan: &ExecutablePlan) -> InputSet {
    let mut set = InputSet::new();
    for (i, b) in plan.inputs().iter().enumerate() {
        set.insert(b.name.clone(), ramp(&b.shape, i as u64));
    }
    set
}

#[test]
fn eight_thread_stress_is_bit_identical_to_serial() {
    let engine = engine();
    let runtime = Arc::new(ModelRuntime::new());
    for graph in [mlp_graph("mlp"), attn_graph("attn")] {
        let plan = engine.compile_plan(&graph).unwrap();
        runtime.register(graph.name.clone(), plan);
    }
    let models = ["mlp", "attn"];
    let seeds: Vec<u64> = (0..3).collect();

    // Serial reference outputs per (model, seed).
    let mut expected: Vec<Vec<Vec<f32>>> = Vec::new();
    for model in &models {
        let inputs = inputs_for(&runtime.plan(model).unwrap());
        expected.push(
            seeds
                .iter()
                .map(|&s| {
                    runtime
                        .infer(model, &inputs, RunOptions::seeded(s))
                        .unwrap()
                        .primary()
                        .data
                        .clone()
                })
                .collect(),
        );
    }
    let serial_requests = (models.len() * seeds.len()) as u64;
    assert_eq!(runtime.stats().requests, serial_requests);

    // 8 threads, interleaved models and seeds, several requests each.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 6;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = runtime.clone();
            let expected = &expected;
            let seeds = &seeds;
            scope.spawn(move || {
                for r in 0..PER_THREAD {
                    let m = (t + r) % models.len();
                    let s = (t * PER_THREAD + r) % seeds.len();
                    let inputs = inputs_for(&runtime.plan(models[m]).unwrap());
                    let out = runtime
                        .infer(models[m], &inputs, RunOptions::seeded(seeds[s]))
                        .unwrap();
                    assert_eq!(
                        out.primary().data,
                        expected[m][s],
                        "thread {t} request {r} ({}, seed {s})",
                        models[m]
                    );
                }
            });
        }
    });

    let stats = runtime.stats();
    assert_eq!(
        stats.requests,
        serial_requests + (THREADS * PER_THREAD) as u64,
        "every request issued is counted"
    );
    assert_eq!(stats.failed, 0);
    // Per-plan accounting adds up and latency percentiles are populated
    // from the virtual clock.
    let by_plan: u64 = stats.plans.iter().map(|p| p.requests).sum();
    assert_eq!(by_plan, stats.requests);
    for PlanStats {
        p50_latency,
        p95_latency,
        bytes_moved,
        ..
    } in &stats.plans
    {
        assert!(*p50_latency > 0.0 && *p95_latency >= *p50_latency);
        assert!(*bytes_moved > 0.0);
    }
}

#[test]
fn plan_is_send_sync_and_shareable() {
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<ExecutablePlan>();
    assert_send_sync::<ModelRuntime>();
}

#[test]
fn bert_plan_recycles_intermediates_and_freezes_bindings() {
    let g = bert_graph(
        "bert-mini",
        &BertConfig {
            layers: 2,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    let plan = engine().compile_plan(&g).unwrap();
    // Buffer plan built once at plan() time: liveness keeps the peak
    // number of live values strictly below the total node count.
    let bp = plan.buffer_plan();
    assert_eq!(bp.total_nodes(), g.nodes.len());
    assert!(
        bp.peak_live() < bp.total_nodes(),
        "peak {} must be < {} nodes",
        bp.peak_live(),
        bp.total_nodes()
    );
    // Fused interiors are not even steps: steps < non-input nodes.
    assert!(plan.steps().len() < g.nodes.len());
    assert!(plan.fused_kernels() > 0);
    // The binding table is keyed by name.
    assert!(plan.inputs().iter().all(|b| !b.name.is_empty()));
    assert_eq!(
        plan.output_specs().len(),
        g.outputs.len(),
        "every declared output is served"
    );
    // And the frozen virtual latency matches the compile-time total.
    let model = engine().compile(&g).unwrap();
    assert!((plan.virtual_time_per_request() - model.total_time).abs() < 1e-12);
}

#[test]
fn exec_error_covers_every_malformed_request() {
    let g = attn_graph("attn");
    let engine = engine();
    let plan = engine.compile_plan(&g).unwrap();
    let runtime = ModelRuntime::new();
    let plan = runtime.register("attn", plan);
    let good = inputs_for(&plan);

    // Unknown model.
    let err = runtime
        .infer("nope", &good, RunOptions::default())
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::UnknownModel {
            name: "nope".into()
        }
    );

    // Missing input.
    let mut missing = InputSet::new();
    missing.insert("q", ramp(&[2, 64, 32], 0));
    missing.insert("k", ramp(&[2, 64, 32], 1));
    let err = runtime
        .infer("attn", &missing, RunOptions::default())
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::MissingInput {
            model: "attn".into(),
            name: "v".into()
        }
    );

    // Unknown input name.
    let mut unknown = good.clone();
    unknown.insert("mystery", ramp(&[1], 0));
    let err = runtime
        .infer("attn", &unknown, RunOptions::default())
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::UnknownInput {
            model: "attn".into(),
            name: "mystery".into()
        }
    );

    // Wrong shape.
    let mut wrong_shape = good.clone();
    wrong_shape.insert("v", ramp(&[2, 64, 16], 0));
    let err = runtime
        .infer("attn", &wrong_shape, RunOptions::default())
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::ShapeMismatch {
            model: "attn".into(),
            node: "v".into(),
            expected: vec![2, 64, 32],
            got: vec![2, 64, 16],
        }
    );

    // Wrong dtype tag (the graph stores f16).
    let mut wrong_dtype = good.clone();
    wrong_dtype.insert_typed("v", ramp(&[2, 64, 32], 0), DType::F32);
    let err = runtime
        .infer("attn", &wrong_dtype, RunOptions::default())
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::DTypeMismatch {
            model: "attn".into(),
            node: "v".into(),
            expected: DType::F16,
            got: DType::F32,
        }
    );

    // Graph/model mismatch at plan time.
    let other = mlp_graph("mlp");
    let model = engine.compile(&g).unwrap();
    let err = model.plan(&other).unwrap_err();
    assert!(matches!(err, ExecError::ModelGraphMismatch { .. }));

    // Failed requests are counted, successful state is untouched.
    let stats = runtime.stats();
    assert_eq!(stats.failed, 5);
    assert_eq!(stats.requests, 0);
    // Every error Displays with its model context.
    assert!(err.to_string().contains("mlp") || err.to_string().contains("attn"));
}

#[test]
fn node_keyed_requests_agree_with_name_keyed_and_binding_is_strict() {
    // The removed `FusionEngine::execute` shim took a NodeId-keyed map;
    // its migration target is `InputSet::from_node_values` + the strict
    // plan path. Node- and name-keyed requests must agree bit for bit,
    // and the old shim's tolerance of extra map entries is gone: an
    // undeclared input is a structured rejection, never silently
    // ignored.
    let g = attn_graph("attn");
    let engine = engine();
    let plan = engine.compile_plan(&g).unwrap();

    let mut node_inputs: rustc_hash::FxHashMap<NodeId, HostTensor> = Default::default();
    for b in plan.inputs() {
        node_inputs.insert(b.node, ramp(&b.shape, b.node.0 as u64));
    }
    let served = plan
        .execute(
            &InputSet::from_node_values(&node_inputs),
            RunOptions::seeded(5),
        )
        .unwrap();
    let by_name = plan
        .execute(&inputs_by_name(&plan, &node_inputs), RunOptions::seeded(5))
        .unwrap();
    assert_eq!(by_name.primary().data, served.primary().data);

    // Strict binding: an extra map entry for a non-input node (e.g. a
    // reused full value table) is rejected with UnknownInput.
    let mut with_extra = node_inputs.clone();
    with_extra.insert(g.outputs[0], ramp(&g.node(g.outputs[0]).shape, 0));
    assert!(matches!(
        plan.execute(
            &InputSet::from_node_values(&with_extra),
            RunOptions::seeded(5)
        ),
        Err(ExecError::UnknownInput { .. })
    ));
}

fn inputs_by_name(
    plan: &ExecutablePlan,
    node_inputs: &rustc_hash::FxHashMap<NodeId, HostTensor>,
) -> InputSet {
    let mut set = InputSet::new();
    for b in plan.inputs() {
        set.insert(b.name.clone(), node_inputs[&b.node].clone());
    }
    set
}

#[test]
fn cache_persistence_failures_reach_stats_and_shutdown() {
    // A disk cache pointed at an unwritable path: write-through tuning
    // keeps working, EngineStats counts the failures, and a runtime that
    // attached the cache reports them at shutdown.
    let path = std::env::temp_dir()
        .join(format!("mcfuser-no-dir-{}", std::process::id()))
        .join("cache.json");
    let engine = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .cache(CachePolicy::DiskJson(path))
        .build();
    let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
    engine.tune(&chain).unwrap();
    assert!(engine.stats().cache_persist_errors > 0);

    let runtime = ModelRuntime::new();
    runtime.attach_cache(engine.cache_handle().unwrap());
    let err = runtime.shutdown().unwrap_err();
    assert!(!err.failures.is_empty());
    assert!(err.to_string().contains("failed to persist"));

    // A healthy in-memory engine shuts down cleanly.
    let healthy = FusionEngine::builder(DeviceSpec::a100()).build();
    let rt = ModelRuntime::new();
    rt.attach_cache(healthy.cache_handle().unwrap());
    assert!(rt.shutdown().is_ok());
    assert_eq!(healthy.stats().cache_persist_errors, 0);
}

#[test]
fn no_public_api_returns_box_dyn_error() {
    // Compile-time check that the serving surface is structured:
    // every fallible entry point returns TuneError or ExecError.
    fn takes_tune(_: &Result<TunedKernel, TuneError>) {}
    fn takes_plan(_: &Result<ExecutablePlan, TuneError>) {}
    fn takes_exec(_: &Result<Outputs, ExecError>) {}
    let engine = engine();
    let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
    takes_tune(&engine.tune(&chain));
    let g = mlp_graph("mlp");
    let plan_result = engine.compile_plan(&g);
    takes_plan(&plan_result);
    let plan = plan_result.unwrap();
    takes_exec(&plan.execute(&inputs_for(&plan), RunOptions::default()));
}

#[test]
fn registry_management_and_custom_cache_flush() {
    // deregister removes a model; flush() default impl on a custom cache
    // is Ok.
    struct NullCache;
    impl mcfuser::core::TuningCache for NullCache {
        fn get(&self, _: &CacheKey) -> Option<CachedTuning> {
            None
        }
        fn put(&self, _: &CacheKey, _: CachedTuning) {}
        fn len(&self) -> usize {
            0
        }
    }
    assert!(NullCache.flush().is_ok());
    assert_eq!(NullCache.persist_errors(), 0);

    let runtime = ModelRuntime::new();
    let g = mlp_graph("mlp");
    let engine = engine();
    let plan = runtime.register("mlp", engine.compile_plan(&g).unwrap());
    assert_eq!(runtime.models(), vec!["mlp".to_string()]);

    // Re-registering under the same name (rolling update) resets that
    // name's stats — the old samples described the replaced plan.
    runtime
        .infer("mlp", &inputs_for(&plan), RunOptions::default())
        .unwrap();
    assert_eq!(runtime.stats().requests, 1);
    runtime.register_arc("mlp", plan.clone());
    assert_eq!(
        runtime.stats().requests,
        0,
        "replacement resets the plan's serving stats"
    );

    assert!(runtime.deregister("mlp").is_some());
    assert!(runtime.models().is_empty());
    assert!(runtime.deregister("mlp").is_none());
}

#[test]
fn plan_rejects_a_same_named_but_different_graph() {
    // A structurally different graph under the same name must not
    // silently mix v1 kernels with v2 reference ops.
    let g1 = mlp_graph("m");
    let mut g2 = mlp_graph("m");
    g2.nodes.last_mut().unwrap().op = mcfuser::ir::Op::Relu; // same arity, different op
    let model = engine().compile(&g1).unwrap();
    assert!(model.plan(&g1).is_ok());
    let err = model.plan(&g2).unwrap_err();
    assert!(matches!(err, ExecError::ModelGraphMismatch { .. }));
    assert!(err.to_string().contains("differs"), "{err}");
}

#[test]
fn arena_reuse_does_not_change_results() {
    // Repeated requests through one runtime (which pools arenas) must
    // equal fresh plan.execute calls (which never reuse buffers).
    let g = mlp_graph("mlp");
    let engine = engine();
    let plan = engine.compile_plan(&g).unwrap();
    let runtime = ModelRuntime::new();
    let shared = runtime.register("mlp", plan);
    let inputs = inputs_for(&shared);
    for seed in 0..3 {
        let fresh = shared.execute(&inputs, RunOptions::seeded(seed)).unwrap();
        for _ in 0..3 {
            let pooled = runtime
                .infer("mlp", &inputs, RunOptions::seeded(seed))
                .unwrap();
            assert_eq!(pooled.primary().data, fresh.primary().data);
        }
    }
}
