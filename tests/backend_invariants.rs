//! Integration: comparative invariants across backends — the qualitative
//! claims of Fig. 8 and Table I must hold on the simulated devices.

use mcfuser::baselines::{
    Ansor, Backend, Bolt, Chimera, FlashAttention, McFuserBackend, PyTorch, Relay,
};
use mcfuser::prelude::*;

fn g1() -> ChainSpec {
    ChainSpec::gemm_chain("G1", 1, 512, 256, 64, 64)
}

fn s1() -> ChainSpec {
    ChainSpec::attention("S1", 8, 512, 512, 64, 64)
}

#[test]
fn mcfuser_wins_on_gemm_chain() {
    let dev = DeviceSpec::a100();
    let ours = McFuserBackend::new().run_chain(&g1(), &dev).unwrap();
    for b in [
        Box::new(PyTorch) as Box<dyn Backend>,
        Box::new(Ansor::with_trials(80)),
        Box::new(Bolt::new()),
        Box::new(Relay::new()),
    ] {
        let them = b.run_chain(&g1(), &dev).unwrap();
        assert!(
            ours.time <= them.time * 1.02,
            "MCFuser {} vs {} {}",
            ours.time,
            b.name(),
            them.time
        );
    }
}

#[test]
fn mcfuser_wins_on_attention() {
    let dev = DeviceSpec::a100();
    let ours = McFuserBackend::new().run_chain(&s1(), &dev).unwrap();
    for b in [
        Box::new(PyTorch) as Box<dyn Backend>,
        Box::new(Ansor::with_trials(80)),
        Box::new(FlashAttention),
        Box::new(Chimera),
    ] {
        let them = b.run_chain(&s1(), &dev).unwrap();
        assert!(
            ours.time <= them.time * 1.02,
            "MCFuser {} vs {} {}",
            ours.time,
            b.name(),
            them.time
        );
    }
}

#[test]
fn fusion_beats_eager_by_a_wide_margin_on_attention() {
    // The headline effect: multi-kernel eager attention vs one fused
    // kernel (paper: 8.1x average on A100).
    let dev = DeviceSpec::a100();
    let pt = PyTorch.run_chain(&s1(), &dev).unwrap();
    let ours = McFuserBackend::new().run_chain(&s1(), &dev).unwrap();
    let speedup = pt.time / ours.time;
    assert!(speedup > 3.0, "speedup only {speedup:.2}x");
}

#[test]
fn bolt_rejects_sm86_and_flash_rejects_gemm() {
    let r3080 = DeviceSpec::rtx3080();
    assert!(Bolt::new().run_chain(&g1(), &r3080).is_err());
    assert!(FlashAttention
        .run_chain(&g1(), &DeviceSpec::a100())
        .is_err());
}

#[test]
fn all_backends_run_on_rtx3080_except_bolt() {
    let dev = DeviceSpec::rtx3080();
    assert!(PyTorch.run_chain(&s1(), &dev).is_ok());
    assert!(Ansor::with_trials(40).run_chain(&s1(), &dev).is_ok());
    assert!(FlashAttention.run_chain(&s1(), &dev).is_ok());
    assert!(Chimera.run_chain(&s1(), &dev).is_ok());
    assert!(McFuserBackend::new().run_chain(&s1(), &dev).is_ok());
    assert!(Bolt::new().run_chain(&s1(), &dev).is_err());
}

#[test]
fn tuning_time_ordering_matches_table4() {
    // MCFuser and Chimera tune in tens of seconds; Ansor takes orders of
    // magnitude longer; BOLT sits between.
    let dev = DeviceSpec::a100();
    let ours = McFuserBackend::new().run_chain(&g1(), &dev).unwrap();
    let chimera = Chimera.run_chain(&g1(), &dev).unwrap();
    let bolt = Bolt::new().run_chain(&g1(), &dev).unwrap();
    let ansor = Ansor::with_trials(300).run_chain(&g1(), &dev).unwrap();
    assert!(ours.tuning_seconds < 150.0);
    assert!(chimera.tuning_seconds < 150.0);
    assert!(
        ansor.tuning_seconds > 5.0 * ours.tuning_seconds,
        "ansor {} vs ours {}",
        ansor.tuning_seconds,
        ours.tuning_seconds
    );
    assert!(bolt.tuning_seconds > 10.0);
}

#[test]
fn capability_matrix_is_consistent() {
    // Table I: exactly the systems claiming MBCI support fuse the chain.
    let dev = DeviceSpec::a100();
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(PyTorch),
        Box::new(Ansor::with_trials(40)),
        Box::new(Bolt::new()),
        Box::new(Chimera),
        Box::new(McFuserBackend::new()),
    ];
    for b in &backends {
        let caps = b.capabilities();
        let run = b.run_chain(&g1(), &dev).unwrap();
        match caps.supports_mbci {
            "Yes" if b.name() != "Ansor" => {
                assert!(
                    run.fused,
                    "{} claims MBCI support but did not fuse",
                    b.name()
                )
            }
            "No" => assert!(!run.fused, "{} claims no MBCI support but fused", b.name()),
            _ => {}
        }
    }
}

#[test]
fn devices_rank_consistently() {
    // The same fused kernel must be slower on the smaller device.
    let a100 = DeviceSpec::a100();
    let r3080 = DeviceSpec::rtx3080();
    let big = ChainSpec::gemm_chain("big", 4, 1024, 1024, 128, 128);
    let on_a = McFuserBackend::new().run_chain(&big, &a100).unwrap();
    let on_r = McFuserBackend::new().run_chain(&big, &r3080).unwrap();
    assert!(on_r.time > on_a.time);
}
