//! Integration: the quantitative *shape* claims of the paper's figures
//! must hold on the reproduction (not the absolute numbers — the
//! substrate is a simulator — but who wins, what grows, what shrinks).

use mcfuser::core::{estimate, prune, SearchSpace};
use mcfuser::prelude::*;
use mcfuser::sim::{measure, measure_noisy};
use mcfuser::tile::{estimate_shmem_bytes, lower, LoweringOptions};
use mcfuser::workloads::{attention_suite, gemm_chain_suite, gemm_chain_workload};

/// Pearson correlation.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    num / (dx.sqrt() * dy.sqrt())
}

#[test]
fn fig3_search_space_census() {
    // 24 deep + 2 flat expressions; 1.09e8 candidates for the running
    // example (§III-C).
    let chain = ChainSpec::gemm_chain("census", 1, 1024, 1024, 512, 512);
    let space = SearchSpace::generate(&chain);
    assert_eq!(space.exprs.len(), 26);
    assert_eq!(space.count(), 109_051_904);
}

#[test]
fn fig7_pruning_waterfall_shape() {
    let chain = ChainSpec::gemm_chain("wf", 1, 1024, 1024, 512, 512);
    let space = SearchSpace::generate(&chain);
    let stats = prune(&chain, &DeviceSpec::a100(), &space).stats;
    // Each rule strictly shrinks (or keeps) the space; total ≥ 4 orders.
    assert!(stats.after_rule1 < stats.original);
    assert!(stats.after_rule2 <= stats.after_rule1);
    assert!(
        stats.after_rule3 < stats.after_rule2 / 50,
        "rule 3 must cut ~99%"
    );
    assert!(stats.after_rule4 < stats.after_rule3);
    assert!(
        stats.after_rule4 * 10_000 < stats.original,
        "4+ orders of magnitude"
    );
}

#[test]
fn fig2_throughput_collapses_with_k() {
    // Constant-complexity K sweep: achieved TFLOPS at K=32 must be far
    // below K=1024 (the MBCI transition).
    let dev = DeviceSpec::a100();
    let t_of = |m: u64, k: u64| {
        let chain = ChainSpec::single_matmul("sweep", 1, m, m, k);
        let tuned = FusionEngine::builder(dev.clone())
            .build()
            .tune(&chain)
            .unwrap();
        chain.flops() / tuned.profile.time
    };
    let fat = t_of(1024, 1024);
    let skinny = t_of(4096, 64);
    assert!(fat > 1.8 * skinny, "fat {fat:.3e} vs skinny {skinny:.3e}");
}

#[test]
fn fig10_shmem_estimate_accuracy() {
    use rand::prelude::*;
    let dev = DeviceSpec::a100();
    let chain = gemm_chain_workload("G4").unwrap();
    let space = SearchSpace::generate(&chain);
    let pruned = prune(&chain, &dev, &space);
    let mut rng = StdRng::seed_from_u64(99);
    let (mut agree, mut total) = (0, 0);
    for _ in 0..150 {
        // Rules 1–3 only, deliberately spanning the Rule-4 boundary.
        let cand = pruned.sample_rule3(&mut rng);
        let est = estimate_shmem_bytes(&chain, &cand) as f64;
        let Ok(lk) = lower(&chain, &cand, &LoweringOptions::for_device(&dev)) else {
            continue;
        };
        let kept = est <= 1.2 * dev.smem_per_block as f64;
        let runs = lk.smem_bytes <= dev.smem_per_block;
        total += 1;
        if kept == runs {
            agree += 1;
        }
    }
    let acc = agree as f64 / total as f64;
    assert!(acc > 0.7, "estimate accuracy {acc:.2} (paper >0.9)");
}

#[test]
fn fig11_model_correlates_with_measurement() {
    use rand::prelude::*;
    let dev = DeviceSpec::a100();
    let chain = gemm_chain_workload("G2").unwrap();
    let space = SearchSpace::generate(&chain);
    let pruned = prune(&chain, &dev, &space);
    let mut rng = StdRng::seed_from_u64(7);
    let (mut ests, mut meas) = (Vec::new(), Vec::new());
    while ests.len() < 60 {
        let cand = pruned.candidate(rng.gen_range(0..pruned.len()));
        let Ok(e) = estimate(&chain, &cand, &dev) else {
            continue;
        };
        let Ok(lk) = lower(&chain, &cand, &LoweringOptions::for_device(&dev)) else {
            continue;
        };
        if lk.smem_bytes > dev.smem_per_block {
            continue;
        }
        ests.push(e.total);
        meas.push(measure_noisy(&lk.program, &dev, ests.len() as u64).time);
    }
    let r = pearson(&ests, &meas);
    assert!(r > 0.6, "correlation {r:.2} (paper 0.8-0.92)");
}

#[test]
fn all_table_workloads_are_mbci_and_tunable() {
    let dev = DeviceSpec::a100();
    for chain in gemm_chain_suite()
        .into_iter()
        .take(4)
        .chain(attention_suite().into_iter().take(2))
    {
        assert!(chain.is_memory_bound(&dev), "{} not MBCI", chain.name);
        let tuned = FusionEngine::builder(dev.clone())
            .build()
            .tune(&chain)
            .unwrap();
        assert!(tuned.profile.time.is_finite());
        assert!(tuned.kernel.smem_bytes <= dev.smem_per_block);
    }
}

#[test]
fn alpha_slowdown_matches_eq5_shape() {
    // Few-block kernels are penalized exactly like Eq. 5 predicts: the
    // simulator's measured time rises as blocks shrink below the SM count.
    let dev = DeviceSpec::a100();
    let chain = ChainSpec::gemm_chain("alpha", 1, 512, 512, 128, 128);
    let mk = |tm: u64, th: u64| {
        let cand = mcfuser::tile::Candidate::new(
            mcfuser::tile::TilingExpr::parse("mhnk", &chain).unwrap(),
            vec![tm, 64, 64, th],
        );
        let lk = lower(&chain, &cand, &LoweringOptions::for_device(&dev)).unwrap();
        (cand.num_blocks(&chain), measure(&lk.program, &dev).time)
    };
    let (blocks_many, t_many) = mk(64, 32); // 8 × 4 = 32 blocks
    let (blocks_few, t_few) = mk(512, 128); // 1 × 1 = 1 block
    assert!(blocks_many > blocks_few);
    assert!(
        t_few > t_many,
        "few-block kernel must be slower: {t_few} vs {t_many}"
    );
}
