//! Integration: the continuous-batching subsystem — `BatchedPlan`
//! widening + the `ModelRuntime::submit` admission queue.
//!
//! The contract under test:
//!
//! * batched execution is **bit-identical** to serial execution at any
//!   width, for weight-bearing (MLP) and activation-only (attention)
//!   fused chains alike — property-tested across widths and seeds;
//! * widening amortizes: the virtual span of a width-`k` batch is
//!   strictly below `k ×` the serial per-request time for plans with
//!   shared weights;
//! * backpressure is structured: a full admission queue rejects with
//!   `ExecError::Overloaded` *before* queueing, and an expired
//!   per-request deadline completes with `ExecError::DeadlineExceeded`
//!   *before* any execution is wasted on it;
//! * concurrent submitters coalesce (the drained batch-width histogram
//!   shows widths > 1) and a stress mix of `submit` and `infer` stays
//!   bit-identical to serial, with every request accounted for.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mcfuser::baselines::Relay;
use mcfuser::prelude::*;
use mcfuser::sim::BufferArena;

fn engine() -> FusionEngine {
    FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build()
}

/// A tiny 2-layer MLP (weight-bearing fused chain, batch = 1).
fn mlp_graph(name: &str) -> Graph {
    let mut gb = GraphBuilder::new(name, DType::F16);
    let x = gb.input("x", vec![64, 32]);
    let y = gb.linear("fc1", x, 64, false);
    let z = gb.linear("fc2", y, 32, false);
    gb.finish(vec![z])
}

/// A tiny attention module (activation-only fused chain, batch > 1).
fn attn_graph(name: &str) -> Graph {
    let mut gb = GraphBuilder::new(name, DType::F16);
    let q = gb.input("q", vec![2, 64, 32]);
    let k = gb.input("k", vec![2, 64, 32]);
    let v = gb.input("v", vec![2, 64, 32]);
    let s = gb.batch_matmul("qk", q, k, true);
    let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
    let o = gb.batch_matmul("pv", p, v, false);
    let ln = gb.layer_norm("ln", o);
    gb.finish(vec![ln])
}

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 19) as f32 - 9.0) / 19.0)
            .collect(),
    )
}

/// Request inputs whose values differ per `phase` (so requests in a
/// batch are distinguishable and scatter bugs can't hide).
fn inputs_for(plan: &ExecutablePlan, phase: u64) -> InputSet {
    let mut set = InputSet::new();
    for (i, b) in plan.inputs().iter().enumerate() {
        set.insert(b.name.clone(), ramp(&b.shape, phase * 7 + i as u64));
    }
    set
}

/// Batched outputs must equal per-request serial outputs bit for bit.
fn assert_batch_matches_serial(plan: &Arc<ExecutablePlan>, width: usize, seed: u64) {
    let batched = BatchedPlan::new(plan.clone());
    let requests: Vec<InputSet> = (0..width as u64).map(|r| inputs_for(plan, r)).collect();
    let serial: Vec<Outputs> = requests
        .iter()
        .map(|r| plan.execute(r, RunOptions::seeded(seed)).unwrap())
        .collect();
    let refs: Vec<&InputSet> = requests.iter().collect();
    let mut arena = BufferArena::new();
    let outs = batched
        .execute_batch(&refs, RunOptions::seeded(seed), &mut arena, None)
        .unwrap();
    assert_eq!(outs.len(), width);
    for (r, (got, want)) in outs.iter().zip(&serial).enumerate() {
        for (name, tensor) in want.iter() {
            let g = got.get(name).expect("declared output present");
            assert_eq!(g.shape, tensor.shape, "request {r} output {name}");
            assert_eq!(
                g.data, tensor.data,
                "request {r} output {name} (width {width})"
            );
        }
    }
}

#[test]
fn batched_execution_is_bit_identical_across_widths() {
    let engine = engine();
    for graph in [mlp_graph("mlp"), attn_graph("attn")] {
        let plan = Arc::new(engine.compile_plan(&graph).unwrap());
        assert!(
            BatchedPlan::new(plan.clone()).is_batchable(),
            "{} must widen",
            graph.name
        );
        for width in [1usize, 2, 3, 4, 8] {
            assert_batch_matches_serial(&plan, width, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bit-identity holds for arbitrary (width, seed) pairs on the
    /// weight-bearing plan.
    #[test]
    fn batched_equals_serial_property(width in 1usize..7, seed in 0u64..1000) {
        let engine = engine();
        let graph = mlp_graph("mlp-prop");
        let plan = Arc::new(engine.compile_plan(&graph).unwrap());
        assert_batch_matches_serial(&plan, width, seed);
    }
}

#[test]
fn widening_amortizes_weight_traffic_and_launches() {
    let engine = engine();
    let plan = Arc::new(engine.compile_plan(&mlp_graph("mlp")).unwrap());
    let batched = BatchedPlan::new(plan.clone());
    let serial = plan.virtual_time_per_request();
    let (span4, bytes4) = batched.batch_span(4);
    assert!(
        span4 < 4.0 * serial,
        "a width-4 batch ({span4:.3e}s) must beat 4 serial requests ({:.3e}s)",
        4.0 * serial
    );
    // The bytes ledger stays consistent with the serial one: gmem
    // traffic is per-access and scales with the widened grid (the
    // amortization shows up in *time*, via DRAM reuse of the shared
    // weight tiles and fewer launches).
    let rel = (bytes4 - 4.0 * plan.bytes_per_request()).abs() / (4.0 * plan.bytes_per_request());
    assert!(
        rel < 1e-9,
        "widened gmem bytes must match the serial ledger"
    );
    // Wider batches keep amortizing (per-request span is monotone
    // non-increasing in width).
    let (span8, _) = batched.batch_span(8);
    assert!(span8 / 8.0 <= span4 / 4.0 + 1e-12);
}

#[test]
fn submit_matches_infer_and_coalesces_concurrent_requests() {
    let engine = engine();
    let runtime = Arc::new(ModelRuntime::with_batch_policy(BatchPolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(200),
        queue_cap: 64,
    }));
    let plan = engine.compile_plan(&mlp_graph("mlp")).unwrap();
    let plan = runtime.register("mlp", plan);
    let inputs = inputs_for(&plan, 3);
    let expected = runtime
        .infer("mlp", &inputs, RunOptions::seeded(1))
        .unwrap()
        .primary()
        .data
        .clone();

    const SUBMITTERS: usize = 8;
    std::thread::scope(|scope| {
        for _ in 0..SUBMITTERS {
            let runtime = runtime.clone();
            let plan = plan.clone();
            let expected = &expected;
            scope.spawn(move || {
                let out = runtime
                    .submit("mlp", inputs_for(&plan, 3), RunOptions::seeded(1))
                    .unwrap();
                assert_eq!(out.primary().data, *expected, "submit must match infer");
            });
        }
    });

    let stats = runtime.stats();
    assert_eq!(stats.requests, 1 + SUBMITTERS as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0, "queue drains completely");
    let drained: u64 = stats.batch_sizes.iter().map(|&(w, n)| w as u64 * n).sum();
    assert_eq!(
        drained, SUBMITTERS as u64,
        "histogram accounts for every request"
    );
    assert!(
        stats.batch_sizes.iter().any(|&(w, _)| w > 1),
        "concurrent submitters must coalesce, got {:?}",
        stats.batch_sizes
    );
    // Weights derived once, then served from the per-(model, seed) store.
    assert!(stats.weight_cache_hits > 0);
    assert!(stats.weight_cache_misses > 0);
}

#[test]
fn full_queue_rejects_with_overloaded_before_queueing() {
    let runtime = ModelRuntime::with_batch_policy(BatchPolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        queue_cap: 0,
    });
    let engine = engine();
    let plan = engine.compile_plan(&mlp_graph("mlp")).unwrap();
    let plan = runtime.register("mlp", plan);
    let err = runtime
        .submit("mlp", inputs_for(&plan, 0), RunOptions::seeded(0))
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::Overloaded {
            model: "mlp".into(),
            queue_cap: 0
        }
    );
    let stats = runtime.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.requests, 0);
}

#[test]
fn queue_cap_boundary_admits_exactly_cap_requests() {
    // cap = 1: a lone submitter is admitted (1 > 0 pending) and served.
    let runtime = ModelRuntime::with_batch_policy(BatchPolicy {
        max_batch: 2,
        max_wait: Duration::from_millis(1),
        queue_cap: 1,
    });
    let engine = engine();
    let plan = engine.compile_plan(&mlp_graph("mlp")).unwrap();
    let plan = runtime.register("mlp", plan);
    let out = runtime
        .submit("mlp", inputs_for(&plan, 0), RunOptions::seeded(0))
        .unwrap();
    assert_eq!(out.primary().shape, vec![64, 32]);
    let stats = runtime.stats();
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn expired_deadline_fails_before_execution() {
    let runtime = ModelRuntime::new();
    let engine = engine();
    let plan = engine.compile_plan(&mlp_graph("mlp")).unwrap();
    let plan = runtime.register("mlp", plan);
    let err = runtime
        .submit_with_deadline(
            "mlp",
            inputs_for(&plan, 0),
            RunOptions::seeded(0),
            Duration::ZERO,
        )
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::DeadlineExceeded {
            model: "mlp".into(),
            deadline: Duration::ZERO
        }
    );
    let stats = runtime.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.requests, 0, "expired requests never execute");
    assert!(stats.batch_sizes.is_empty(), "no batch was launched");
}

#[test]
fn submit_unknown_model_is_structured() {
    let runtime = ModelRuntime::new();
    let err = runtime
        .submit("nope", InputSet::new(), RunOptions::default())
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::UnknownModel {
            name: "nope".into()
        }
    );
    assert_eq!(runtime.stats().failed, 1);
}

#[test]
fn malformed_requests_are_rejected_at_admission() {
    // A bad request must carry its own structured error instead of
    // poisoning the batch it would have joined.
    let runtime = ModelRuntime::new();
    let engine = engine();
    let plan = engine.compile_plan(&mlp_graph("mlp")).unwrap();
    runtime.register("mlp", plan);
    let bad = InputSet::new().with("x", HostTensor::zeros(&[2, 2]));
    let err = runtime
        .submit("mlp", bad, RunOptions::seeded(0))
        .unwrap_err();
    assert!(
        matches!(err, ExecError::ShapeMismatch { .. }),
        "got {err:?}"
    );
    assert_eq!(runtime.stats().queue_depth, 0);
}

/// Mixed stress: half the threads use the batching queue, half the
/// serial path, against two models and several seeds, reusing one
/// shared `InputSet` per (model, phase) — exercising the Cow-style
/// borrowed input slots under concurrency. Everything must stay
/// bit-identical to the serial reference.
#[test]
fn mixed_submit_and_infer_stress_is_bit_identical() {
    let engine = engine();
    let runtime = Arc::new(ModelRuntime::with_batch_policy(BatchPolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(20),
        queue_cap: 256,
    }));
    for graph in [mlp_graph("mlp"), attn_graph("attn")] {
        let plan = engine.compile_plan(&graph).unwrap();
        runtime.register(graph.name.clone(), plan);
    }
    let models = ["mlp", "attn"];
    let seeds: Vec<u64> = (0..3).collect();

    // One shared InputSet per model, reused (borrowed) by all threads.
    let shared: Vec<InputSet> = models
        .iter()
        .map(|m| inputs_for(&runtime.plan(m).unwrap(), 5))
        .collect();
    let mut expected: Vec<Vec<Vec<f32>>> = Vec::new();
    for (m, model) in models.iter().enumerate() {
        expected.push(
            seeds
                .iter()
                .map(|&s| {
                    runtime
                        .infer(model, &shared[m], RunOptions::seeded(s))
                        .unwrap()
                        .primary()
                        .data
                        .clone()
                })
                .collect(),
        );
    }
    let warmup = (models.len() * seeds.len()) as u64;

    const THREADS: usize = 8;
    const PER_THREAD: usize = 6;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = runtime.clone();
            let shared = &shared;
            let expected = &expected;
            let seeds = &seeds;
            scope.spawn(move || {
                for r in 0..PER_THREAD {
                    let m = (t + r) % models.len();
                    let s = (t * PER_THREAD + r) % seeds.len();
                    let opts = RunOptions::seeded(seeds[s]);
                    let data = if t % 2 == 0 {
                        runtime.infer(models[m], &shared[m], opts).unwrap()
                    } else {
                        // submit takes ownership: clone the shared set's
                        // tensors into a fresh request.
                        let req = inputs_for(&runtime.plan(models[m]).unwrap(), 5);
                        runtime.submit(models[m], req, opts).unwrap()
                    };
                    assert_eq!(
                        data.primary().data,
                        expected[m][s],
                        "thread {t} request {r} ({}, seed {s})",
                        models[m]
                    );
                }
            });
        }
    });

    let stats = runtime.stats();
    assert_eq!(stats.requests, warmup + (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0);
}
