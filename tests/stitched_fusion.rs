//! Integration: prologue/epilogue stitching across the partitioner,
//! lowering, planner, and batched serving.
//!
//! The contract under test:
//!
//! * a stitched plan is **bit-identical** to its unstitched baseline
//!   (same chains, glue demoted to `Reference` steps) — the stitched
//!   kernel recomputes the glue with the exact quantization points the
//!   reference interpreter uses, so the outputs match bit for bit, not
//!   just within tolerance — property-tested across seeds;
//! * both match pure reference evaluation within f16 round-trip error;
//! * a transformer FFN block plans as ONE fused kernel with zero
//!   elementwise `Reference` steps, and a full (mini) BERT encoder
//!   plans as two fused kernels per layer;
//! * widened (`BatchedPlan`) execution of a stitched plan stays
//!   bit-identical to serial execution at any width.

use std::sync::Arc;

use proptest::prelude::*;
use rustc_hash::FxHashMap;

use mcfuser::baselines::Relay;
use mcfuser::ir::{evaluate, NodeId, Op};
use mcfuser::prelude::*;
use mcfuser::sim::BufferArena;
use mcfuser::workloads::{bert_graph, BertConfig};

fn engine(stitching: bool) -> FusionEngine {
    FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .stitching(stitching)
        .build()
}

/// Transformer FFN block with affine LayerNorms on both sides — the
/// shape the stitching passes fold into one kernel.
fn ffn_graph(name: &str) -> Graph {
    let mut gb = GraphBuilder::new(name, DType::F16);
    let proj = gb.input("proj", vec![128, 64]);
    let x = gb.input("x", vec![128, 64]);
    let res1 = gb.add("res1", proj, x);
    let ln1 = gb.layer_norm_affine("ln1", res1);
    let up = gb.linear("up", ln1, 128, true);
    let act = gb.gelu("act", up);
    let down = gb.linear("down", act, 64, true);
    let res2 = gb.add("res2", down, ln1);
    let ln2 = gb.layer_norm_affine("ln2", res2);
    gb.finish(vec![ln2])
}

fn mini_bert() -> Graph {
    bert_graph(
        "bert-mini",
        &BertConfig {
            layers: 2,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    )
}

fn node_inputs(graph: &Graph, phase: u64) -> FxHashMap<NodeId, mcfuser::sim::HostTensor> {
    let mut m = FxHashMap::default();
    for (i, node) in graph.nodes.iter().enumerate() {
        if matches!(node.op, Op::Input) {
            let len: u64 = node.shape.iter().product();
            m.insert(
                NodeId(i),
                mcfuser::sim::HostTensor::from_vec(
                    &node.shape,
                    (0..len)
                        .map(|x| (((x + phase) % 17) as f32 - 8.0) / 17.0)
                        .collect(),
                ),
            );
        }
    }
    m
}

/// Execute the same request against a stitched and an unstitched plan
/// of `graph`; assert the outputs are bit-identical and return the
/// stitched outputs.
fn assert_stitched_matches_unstitched(graph: &Graph, phase: u64, seed: u64) -> Outputs {
    let inputs = InputSet::from_node_values(&node_inputs(graph, phase));
    let stitched = engine(true).compile_plan(graph).expect("stitched plan");
    let unstitched = engine(false).compile_plan(graph).expect("unstitched plan");
    let got = stitched.execute(&inputs, RunOptions::seeded(seed)).unwrap();
    let want = unstitched
        .execute(&inputs, RunOptions::seeded(seed))
        .unwrap();
    for (name, tensor) in want.iter() {
        let g = got.get(name).expect("declared output present");
        assert_eq!(g.shape, tensor.shape, "output {name}");
        assert_eq!(g.data, tensor.data, "output {name} (seed {seed})");
    }
    got
}

#[test]
fn ffn_block_plans_as_one_fused_kernel_without_elementwise_rest() {
    let g = ffn_graph("ffn");
    let stitched = engine(true).compile_plan(&g).unwrap();
    assert_eq!(stitched.fused_kernels(), 1);
    let b = stitched.step_breakdown();
    assert_eq!(b.fused_steps, 1);
    assert_eq!(b.reference_elementwise, 0, "no glue on the interpreter");

    // The unstitched baseline runs the same core chain but pays for the
    // glue with elementwise Reference steps — and strictly more bytes.
    let unstitched = engine(false).compile_plan(&g).unwrap();
    assert_eq!(unstitched.fused_kernels(), 1);
    let ub = unstitched.step_breakdown();
    assert_eq!(ub.reference_elementwise, 4, "res1, ln1, res2, ln2");
    assert!(
        stitched.bytes_per_request() < unstitched.bytes_per_request(),
        "stitching must save traffic: {} vs {}",
        stitched.bytes_per_request(),
        unstitched.bytes_per_request()
    );
}

#[test]
fn mini_bert_plans_as_two_fused_kernels_per_layer() {
    let g = mini_bert();
    let plan = engine(true).compile_plan(&g).unwrap();
    assert_eq!(plan.fused_kernels(), 4, "attention + stitched FFN × 2");
    assert_eq!(plan.step_breakdown().reference_elementwise, 0);
}

#[test]
fn stitched_outputs_are_bit_identical_to_unstitched_and_match_reference() {
    let g = ffn_graph("ffn-bit");
    let got = assert_stitched_matches_unstitched(&g, 0, 0);
    let reference = evaluate(&g, &node_inputs(&g, 0), 0).unwrap();
    let err = got.primary().rel_l2_error(&reference[g.outputs[0].0]);
    assert!(err < 5e-2, "reference error {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identity of stitched vs unstitched plans holds for arbitrary
    /// (input phase, execution seed) pairs.
    #[test]
    fn stitched_equals_unstitched_property(phase in 0u64..1000, seed in 0u64..1000) {
        let g = ffn_graph("ffn-prop");
        assert_stitched_matches_unstitched(&g, phase, seed);
    }
}

#[test]
fn widened_stitched_batches_are_bit_identical_to_serial() {
    let g = ffn_graph("ffn-batch");
    let plan = Arc::new(engine(true).compile_plan(&g).unwrap());
    let batched = BatchedPlan::new(plan.clone());
    assert!(batched.is_batchable(), "stitched plan must widen");
    for width in [1usize, 2, 3, 5] {
        let requests: Vec<InputSet> = (0..width as u64)
            .map(|r| InputSet::from_node_values(&node_inputs(&g, r)))
            .collect();
        let serial: Vec<Outputs> = requests
            .iter()
            .map(|r| plan.execute(r, RunOptions::seeded(7)).unwrap())
            .collect();
        let refs: Vec<&InputSet> = requests.iter().collect();
        let mut arena = BufferArena::new();
        let outs = batched
            .execute_batch(&refs, RunOptions::seeded(7), &mut arena, None)
            .unwrap();
        assert_eq!(outs.len(), width);
        for (r, (got, want)) in outs.iter().zip(&serial).enumerate() {
            for (name, tensor) in want.iter() {
                let gt = got.get(name).expect("declared output present");
                assert_eq!(
                    gt.data, tensor.data,
                    "request {r} output {name} (width {width})"
                );
            }
        }
    }
}
