//! Property-based tests (proptest) over the core data structures:
//! tiling expressions, candidates, placement, lowering, and the
//! simulator's numerics.

use proptest::prelude::*;

use mcfuser::core::{estimate, SearchSpace};
use mcfuser::prelude::*;
use mcfuser::sim::{execute, noise};
use mcfuser::tile::{
    accumulator_instances, estimate_shmem_bytes, lower, place, Candidate, LoweringOptions,
    TilingExpr,
};

/// A random 2-GEMM chain with tensor-core-friendly dims.
fn chain_strategy() -> impl Strategy<Value = ChainSpec> {
    (
        1u64..3,
        prop::sample::select(vec![32u64, 48, 64, 96, 128]),
        prop::sample::select(vec![32u64, 48, 64, 96]),
        prop::sample::select(vec![16u64, 32, 48, 64]),
        prop::sample::select(vec![16u64, 32, 48, 64]),
    )
        .prop_map(|(b, m, n, k, h)| ChainSpec::gemm_chain("prop", b, m, n, k, h))
}

/// A random deep-tiling permutation of the chain's four axes.
fn perm_strategy() -> impl Strategy<Value = Vec<usize>> {
    Just(vec![0usize, 1, 2, 3]).prop_shuffle()
}

/// Random tile sizes (multiples of 16, clamped per axis at lowering).
fn tiles_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(prop::sample::select(vec![16u64, 32, 48, 64]), 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// display → parse is the identity on every tiling expression of a
    /// chain (deep and flat).
    #[test]
    fn expr_roundtrip(chain in chain_strategy()) {
        for e in mcfuser::tile::enumerate_all(&chain) {
            let s = e.display(&chain);
            let p = TilingExpr::parse(&s, &chain).expect("parses");
            prop_assert_eq!(p, e);
        }
    }

    /// Candidate arithmetic invariants: trips cover the dims, padding
    /// ratio is non-negative, the grid matches the trip counts.
    #[test]
    fn candidate_invariants(
        chain in chain_strategy(),
        perm in perm_strategy(),
        tiles in tiles_strategy(),
    ) {
        let axes: Vec<_> = perm.into_iter().map(mcfuser::tile::LoopId).collect();
        let cand = Candidate::new(TilingExpr::deep(&axes), tiles);
        for a in 0..chain.num_axes() {
            let id = mcfuser::tile::LoopId(a);
            let trips = cand.trips(&chain, id);
            prop_assert!(trips >= 1);
            prop_assert!(trips * cand.tile(id) >= chain.axis_extent(a));
        }
        prop_assert!(cand.padding_ratio(&chain) >= 0.0);
        prop_assert_eq!(
            cand.num_blocks(&chain),
            cand.grid(&chain).iter().product::<u64>()
        );
    }

    /// Placement succeeds for every deep candidate and the Eq. 1 estimate
    /// is positive; accumulator-instance analysis never reports zero.
    #[test]
    fn placement_and_estimates_total(
        chain in chain_strategy(),
        perm in perm_strategy(),
        tiles in tiles_strategy(),
    ) {
        let axes: Vec<_> = perm.into_iter().map(mcfuser::tile::LoopId).collect();
        let cand = Candidate::new(TilingExpr::deep(&axes), tiles);
        prop_assert!(place(&chain, &cand).is_ok());
        prop_assert!(estimate_shmem_bytes(&chain, &cand) > 0);
        for op in 0..chain.num_ops() {
            prop_assert!(accumulator_instances(&chain, &cand, op) >= 1);
        }
        // The analytical model is total over placeable candidates.
        let e = estimate(&chain, &cand, &DeviceSpec::a100()).unwrap();
        prop_assert!(e.total > 0.0 && e.total.is_finite());
        prop_assert!(e.alpha >= 1.0);
    }

    /// Any candidate that lowers computes the same function as the CPU
    /// reference (the central soundness property of the compiler).
    #[test]
    fn lowered_kernels_are_correct(
        chain in chain_strategy(),
        perm in perm_strategy(),
        tiles in tiles_strategy(),
        seed in 0u64..1000,
    ) {
        let axes: Vec<_> = perm.into_iter().map(mcfuser::tile::LoopId).collect();
        let cand = Candidate::new(TilingExpr::deep(&axes), tiles);
        let Ok(k) = lower(&chain, &cand, &LoweringOptions::default()) else {
            // Rule-2-style rejections are legal outcomes.
            return Ok(());
        };
        let inputs = chain.random_inputs(seed);
        let mut st = TensorStorage::for_program(&k.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&k.program, &mut st).unwrap();
        let reference = chain.reference(&inputs);
        let err = st.tensors.last().unwrap().rel_l2_error(&reference);
        prop_assert!(err < 2e-2, "err {} for {}", err, cand.describe(&chain));
    }

    /// Measurement noise is bounded and deterministic.
    #[test]
    fn noise_bounds(seed in any::<u64>(), salt in any::<u64>()) {
        let f = noise::noise_factor(seed, salt);
        prop_assert!((0.97..=1.03).contains(&f));
        prop_assert_eq!(f, noise::noise_factor(seed, salt));
    }

    /// Search-space sampling always yields candidates inside the domains.
    #[test]
    fn space_samples_in_domain(chain in chain_strategy(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let space = SearchSpace::generate(&chain);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cand = space.sample(&mut rng);
        for (a, t) in cand.tiles.iter().enumerate() {
            prop_assert!(space.tile_domains[a].contains(t));
        }
    }
}
