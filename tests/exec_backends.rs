//! Integration: the vectorized execution backend is a **bit-for-bit**
//! drop-in for the interpreter oracle.
//!
//! The contract under test:
//!
//! * any chain that lowers — plain GEMM chains, attention, masked
//!   attention, and stitched prologue/epilogue pipelines, across random
//!   permutations, tile sizes and intra-tile policies — produces
//!   bit-identical storage under [`InterpreterExec`] and
//!   [`VectorizedExec`] (property-tested);
//! * the targeted stitched pipeline exercises the whole statement
//!   vocabulary the vectorized kernels specialize: `Gemm` with a
//!   non-zero `acc_col` (chunked tail panel), a streamed `SmemDecl`,
//!   `RowNormStats`/`NormalizeTile`/`AddRecomputedNorm`, `Quantize`,
//!   and online-softmax attention — presence is asserted, not hoped for;
//! * widened (slot-strided) batched launches stay bit-identical to
//!   interpreter serial execution at any width, on either backend
//!   (property-tested across widths and seeds);
//! * every workload family in `mcfuser-workloads` — Table II GEMM
//!   chains, Table III attention, masked attention, the MLP4 chain,
//!   and the graph workloads (BERT, ViT, Mixer, MLP4, masked
//!   attention) — executes identically on both backends per
//!   `(model, seed)` (paper-scale shapes stay in the benches; the
//!   regression runs each family's smallest member).

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use mcfuser::baselines::Relay;
use mcfuser::core::ExecBackend;
use mcfuser::ir::{EpilogueStitch, PrologueSpec, ResidualSource};
use mcfuser::prelude::*;
use mcfuser::sim::{
    BlockStmt, BufferArena, InterpreterExec, KernelExecutor, NestClass, TileProgram, VectorizedExec,
};
use mcfuser::tile::{lower, LoopId, LoweringOptions};
use mcfuser::workloads::{
    attention_workload, bert_graph, gemm_chain_workload, masked_attention_graph,
    masked_attention_workload, mixer_block, mlp4_chain, mlp4_graph, vit_block, BertConfig,
};

/// Run `program` on both backends from identical input storage and
/// assert every tensor — outputs, temporaries, untouched inputs — is
/// bit-identical afterwards.
fn assert_backends_agree(program: &TileProgram, inputs: &[HostTensor], what: &str) {
    let mut interp = TensorStorage::for_program(program);
    for (i, t) in inputs.iter().enumerate() {
        interp.tensors[i] = t.clone();
    }
    let mut vector = interp.clone();
    InterpreterExec
        .execute(program, &mut interp)
        .unwrap_or_else(|e| panic!("{what}: interpreter failed: {e}"));
    VectorizedExec
        .execute(program, &mut vector)
        .unwrap_or_else(|e| panic!("{what}: vectorized failed: {e}"));
    for (b, (ti, tv)) in interp.tensors.iter().zip(&vector.tensors).enumerate() {
        assert_eq!(ti.shape, tv.shape, "{what}: tensor {b} shape");
        assert_eq!(ti.data.len(), tv.data.len(), "{what}: tensor {b} length");
        for (e, (a, v)) in ti.data.iter().zip(&tv.data).enumerate() {
            assert_eq!(
                a.to_bits(),
                v.to_bits(),
                "{what}: tensor {b} ({}) diverges at element {e}: {a} vs {v}",
                program.buffers[b].name,
            );
        }
    }
}

/// Recursively collect which statement kinds a program body contains.
fn walk_stmts<'a>(stmts: &'a [BlockStmt], seen: &mut Vec<&'a BlockStmt>) {
    for s in stmts {
        if let BlockStmt::Loop { body, .. } = s {
            walk_stmts(body, seen);
        }
        seen.push(s);
    }
}

// ---------------------------------------------------------------------------
// Property: every lowerable chain is backend-agnostic, bit for bit.
// ---------------------------------------------------------------------------

/// A random chain drawn from the three lowering families the statement
/// vocabulary comes from: plain 2-GEMM chains (with random epilogues
/// and biases), attention / masked attention (online softmax), and
/// stitched prologue + tail LayerNorm pipelines.
fn chain_strategy() -> impl Strategy<Value = ChainSpec> {
    let dim = || prop::sample::select(vec![32u64, 48, 64, 96]);
    (
        0usize..3,
        (dim(), dim(), dim(), 1u64..3),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        prop::sample::select(vec![
            Epilogue::None,
            Epilogue::Relu,
            Epilogue::Gelu,
            Epilogue::Scale(0.5),
        ]),
    )
        .prop_map(|(kind, (m, n, d, b), (f0, f1, f2), epi)| match kind {
            // Plain 2-GEMM chain with a random epilogue and bias.
            0 => {
                let h = if f2 { d } else { n };
                let mut c = ChainSpec::gemm_chain("xb-g", b, m, n, d, h);
                c.epilogues = vec![epi, Epilogue::None];
                c.biases = vec![f0, f1];
                c
            }
            // Attention (online softmax) or its masked variant.
            1 => {
                let k = d.min(32);
                if f0 {
                    ChainSpec::masked_attention("xb-ma", b, m, n, k, k)
                } else {
                    ChainSpec::attention("xb-a", b, m, n, k, k)
                }
            }
            // Stitched: affine LayerNorm prologue (optionally with a
            // raw residual) + PrologueOut residual / tail LayerNorm.
            _ => {
                let mut c = ChainSpec::gemm_chain("xb-s", 1, m, n, d, d);
                c.epilogues = vec![epi, Epilogue::None];
                c.prologue = Some(PrologueSpec {
                    residual: f0,
                    affine: true,
                    a_half: f1,
                    eps: 1e-5,
                });
                c.stitch_epilogue = Some(EpilogueStitch {
                    residual: ResidualSource::PrologueOut,
                    layer_norm: true,
                    affine: f2,
                    eps: 1e-5,
                });
                c
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Central property: for any chain, any deep tiling, any intra-tile
    /// policy, interpreter and vectorized execution are bit-identical
    /// over the *entire* storage.
    #[test]
    fn lowered_chains_execute_identically(
        chain in chain_strategy(),
        perm in Just(vec![0usize, 1, 2, 3]).prop_shuffle(),
        tiles in prop::collection::vec(prop::sample::select(vec![16u64, 32, 48, 64, 96]), 4),
        double_buffer in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let axes: Vec<LoopId> = perm.into_iter().map(LoopId).collect();
        let mut tiles = tiles;
        if chain.stitch_epilogue.is_some() {
            // A tail LayerNorm requires the full output row in one tile.
            tiles[3] = *chain.dims.last().unwrap();
        }
        let cand = Candidate::new(TilingExpr::deep(&axes), tiles);
        let opts = LoweringOptions {
            double_buffer_budget: double_buffer.then_some(1 << 20),
            ..LoweringOptions::default()
        };
        // Rule-2-style rejections are legal outcomes.
        let Ok(k) = lower(&chain, &cand, &opts) else { return Ok(()); };
        let inputs = chain.random_inputs(seed);
        assert_backends_agree(&k.program, &inputs, &chain.name);
    }
}

// ---------------------------------------------------------------------------
// Targeted: the full statement vocabulary, asserted present.
// ---------------------------------------------------------------------------

/// A stitched FFN-shaped chain whose `d_L = 256 > 128` forces the
/// chunked tail panel: the final weight streams in column slices
/// (`SmemDecl::streamed`) and each slice fills its accumulator columns
/// at a non-zero `acc_col`.
#[test]
fn stitched_pipeline_covers_the_statement_vocabulary() {
    let mut chain = ChainSpec::gemm_chain("xb-vocab", 1, 64, 64, 256, 256);
    chain.epilogues = vec![Epilogue::Gelu, Epilogue::None];
    chain.biases = vec![true, false];
    chain.prologue = Some(PrologueSpec {
        residual: true,
        affine: true,
        a_half: false,
        eps: 1e-5,
    });
    chain.stitch_epilogue = Some(EpilogueStitch {
        residual: ResidualSource::PrologueOut,
        layer_norm: true,
        affine: true,
        eps: 1e-5,
    });
    // Tile layout is constrained (tail LayerNorm pins t_h = d_L) and
    // some permutations violate the single-accumulator rule; take the
    // first permutation that lowers.
    let k = {
        let mut perms = Vec::new();
        for a in 0..4usize {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let p = [a, b, c, d];
                        let mut q = p;
                        q.sort_unstable();
                        if q == [0, 1, 2, 3] {
                            perms.push(p);
                        }
                    }
                }
            }
        }
        perms
            .iter()
            .find_map(|p| {
                let axes: Vec<LoopId> = p.iter().map(|&a| LoopId(a)).collect();
                let mut tiles = vec![32u64, 64, 32, 0];
                tiles[3] = 256;
                let cand = Candidate::new(TilingExpr::deep(&axes), tiles);
                lower(&chain, &cand, &LoweringOptions::default()).ok()
            })
            .expect("some permutation of the stitched chain lowers")
    };
    assert_eq!(k.program.nest_class(), NestClass::FusedPipeline);

    let mut seen = Vec::new();
    walk_stmts(&k.program.body, &mut seen);
    assert!(
        seen.iter()
            .any(|s| matches!(s, BlockStmt::Gemm { acc_col, .. } if *acc_col > 0)),
        "chunked tail must emit a Gemm at a non-zero acc_col"
    );
    for (what, hit) in [
        (
            "RowNormStats",
            seen.iter()
                .any(|s| matches!(s, BlockStmt::RowNormStats { .. })),
        ),
        (
            "NormalizeTile",
            seen.iter()
                .any(|s| matches!(s, BlockStmt::NormalizeTile { .. })),
        ),
        (
            "AddRecomputedNorm",
            seen.iter()
                .any(|s| matches!(s, BlockStmt::AddRecomputedNorm { .. })),
        ),
        (
            "Quantize",
            seen.iter().any(|s| matches!(s, BlockStmt::Quantize { .. })),
        ),
        (
            "AddBias",
            seen.iter().any(|s| matches!(s, BlockStmt::AddBias { .. })),
        ),
        (
            "Gelu",
            seen.iter().any(|s| matches!(s, BlockStmt::Gelu { .. })),
        ),
        ("streamed smem", k.program.smem.iter().any(|s| s.streamed)),
    ] {
        assert!(hit, "the vocabulary pipeline must contain {what}");
    }

    for seed in 0..3 {
        let inputs = chain.random_inputs(seed);
        assert_backends_agree(&k.program, &inputs, "xb-vocab");
    }
}

/// Masked attention lowers to the `AddTile` mask + `OnlineSoftmax` +
/// `RowDiv` streaming pipeline; assert the statements and bit-identity.
#[test]
fn masked_attention_covers_softmax_statements() {
    let chain = ChainSpec::masked_attention("xb-mask", 2, 64, 64, 32, 32);
    let cand = Candidate::new(
        TilingExpr::deep(&[LoopId(0), LoopId(1), LoopId(2), LoopId(3)]),
        vec![32, 32, 32, 32],
    );
    let k = lower(&chain, &cand, &LoweringOptions::default()).expect("masked attention lowers");
    let mut seen = Vec::new();
    walk_stmts(&k.program.body, &mut seen);
    for (what, hit) in [
        (
            "OnlineSoftmax",
            seen.iter()
                .any(|s| matches!(s, BlockStmt::OnlineSoftmax { .. })),
        ),
        (
            "AddTile",
            seen.iter().any(|s| matches!(s, BlockStmt::AddTile { .. })),
        ),
        (
            "RowDiv",
            seen.iter().any(|s| matches!(s, BlockStmt::RowDiv { .. })),
        ),
    ] {
        assert!(hit, "masked attention must contain {what}");
    }
    for seed in 0..3 {
        let inputs = chain.random_inputs(seed);
        assert_backends_agree(&k.program, &inputs, "xb-mask");
    }
}

// ---------------------------------------------------------------------------
// Property: widened (slot-strided) batches are backend-agnostic.
// ---------------------------------------------------------------------------

fn shared_plans() -> &'static Vec<Arc<ExecutablePlan>> {
    static PLANS: OnceLock<Vec<Arc<ExecutablePlan>>> = OnceLock::new();
    PLANS.get_or_init(|| {
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(Relay::new())
            .build();
        let mlp = {
            let mut gb = GraphBuilder::new("xb-mlp", DType::F16);
            let x = gb.input("x", vec![64, 32]);
            let y = gb.linear("fc1", x, 64, false);
            let z = gb.linear("fc2", y, 32, false);
            gb.finish(vec![z])
        };
        let attn = {
            let mut gb = GraphBuilder::new("xb-attn", DType::F16);
            let q = gb.input("q", vec![2, 64, 32]);
            let k = gb.input("k", vec![2, 64, 32]);
            let v = gb.input("v", vec![2, 64, 32]);
            let s = gb.batch_matmul("qk", q, k, true);
            let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
            let o = gb.batch_matmul("pv", p, v, false);
            let ln = gb.layer_norm("ln", o);
            gb.finish(vec![ln])
        };
        [mlp, attn]
            .iter()
            .map(|g| Arc::new(engine.compile_plan(g).expect("compiles")))
            .collect()
    })
}

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 23) as f32 - 11.0) / 23.0)
            .collect(),
    )
}

fn inputs_for(plan: &ExecutablePlan, phase: u64) -> InputSet {
    let mut set = InputSet::new();
    for (i, b) in plan.inputs().iter().enumerate() {
        set.insert(b.name.clone(), ramp(&b.shape, phase * 11 + i as u64));
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A widened launch over per-request slots must reproduce the
    /// interpreter's serial outputs bit for bit — whichever backend
    /// (plan-pinned or per-request override) runs the widened program.
    #[test]
    fn widened_batches_execute_identically(
        width in 2usize..7,
        seed in 0u64..100,
    ) {
        for plan in shared_plans() {
            let requests: Vec<InputSet> =
                (0..width as u64).map(|r| inputs_for(plan, r)).collect();
            let refs: Vec<&InputSet> = requests.iter().collect();
            // Oracle: serial, interpreter-pinned.
            let serial: Vec<Outputs> = requests
                .iter()
                .map(|r| {
                    plan.execute(
                        r,
                        RunOptions::seeded(seed).with_backend(ExecBackend::Interpreter),
                    )
                    .unwrap()
                })
                .collect();
            let batched = BatchedPlan::new(plan.clone());
            let mut arena = BufferArena::new();
            for backend in [ExecBackend::Interpreter, ExecBackend::Vectorized] {
                let outs = batched
                    .execute_batch(
                        &refs,
                        RunOptions::seeded(seed).with_backend(backend),
                        &mut arena,
                        None,
                    )
                    .unwrap();
                prop_assert_eq!(outs.len(), width);
                for (r, (got, want)) in outs.iter().zip(&serial).enumerate() {
                    for (name, tensor) in want.iter() {
                        let g = got.get(name).expect("declared output present");
                        prop_assert_eq!(&g.shape, &tensor.shape);
                        prop_assert_eq!(
                            &g.data,
                            &tensor.data,
                            "request {} output {} on {} (width {})",
                            r,
                            name,
                            backend,
                            width
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regression: every workload family, identical per (model, seed).
// ---------------------------------------------------------------------------

/// Tuned chain workloads (Table II / Table III / MLP4 families, the
/// smallest member of each) execute identically on both backends.
#[test]
fn chain_workloads_execute_identically_on_both_backends() {
    let engine = FusionEngine::builder(DeviceSpec::a100()).build();
    let chains = [
        gemm_chain_workload("G1").expect("G1 exists"),
        attention_workload("S7").expect("S7 exists"),
        masked_attention_workload("S7").expect("masked S7 exists"),
        mlp4_chain(),
    ];
    for chain in &chains {
        let tuned = engine
            .tune(chain)
            .unwrap_or_else(|e| panic!("{}: tuning failed: {e}", chain.name));
        for seed in 0..2 {
            let inputs = chain.random_inputs(seed);
            assert_backends_agree(&tuned.kernel.program, &inputs, &chain.name);
        }
    }
}

/// Graph workloads (BERT encoder, ViT block, Mixer block, MLP4,
/// masked attention) planned end to end: per (model, seed), the
/// interpreter-pinned and vectorized runs produce bit-identical
/// declared outputs.
#[test]
fn graph_workloads_execute_identically_on_both_backends() {
    let engine = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build();
    let graphs = [
        bert_graph(
            "xb-bert",
            &BertConfig {
                layers: 1,
                hidden: 64,
                heads: 2,
                seq: 32,
                intermediate: 128,
            },
        ),
        vit_block(16, 64, 2),
        mixer_block(32, 64, 128, 128),
        mlp4_graph(),
        masked_attention_graph(2, 32, 16).0,
    ];
    for graph in &graphs {
        let plan = engine
            .compile_plan(graph)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", graph.name));
        let mut set = InputSet::new();
        for (i, b) in plan.inputs().iter().enumerate() {
            set.insert(b.name.clone(), ramp(&b.shape, i as u64));
        }
        for seed in 0..2 {
            let interp = plan
                .execute(
                    &set,
                    RunOptions::seeded(seed).with_backend(ExecBackend::Interpreter),
                )
                .unwrap_or_else(|e| panic!("{}: interpreter run failed: {e}", graph.name));
            let vector = plan
                .execute(
                    &set,
                    RunOptions::seeded(seed).with_backend(ExecBackend::Vectorized),
                )
                .unwrap_or_else(|e| panic!("{}: vectorized run failed: {e}", graph.name));
            for (name, want) in interp.iter() {
                let got = vector.get(name).expect("output present on both backends");
                assert_eq!(got.shape, want.shape, "{}: output {name}", graph.name);
                for (e, (a, v)) in want.data.iter().zip(&got.data).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        v.to_bits(),
                        "{}: output {name} diverges at element {e} (seed {seed}): {a} vs {v}",
                        graph.name,
                    );
                }
            }
        }
    }
}
