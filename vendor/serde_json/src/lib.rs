//! In-tree stand-in for `serde_json` (offline build). Implements the
//! document model the workspace actually uses — [`Value`], [`Map`], the
//! [`json!`] macro (flat objects/arrays; nest by building inner values
//! first), [`to_string`]/[`to_string_pretty`], and a [`from_str`] parser
//! for the tuning-cache's on-disk format. There is no serde data-model
//! bridge: values are built explicitly via `From` impls.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON object: string keys to values, sorted by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// Empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert a key/value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Mutable lookup, inserting `Null` when absent.
    pub fn entry_or_null(&mut self, key: &str) -> &mut Value {
        self.entries.entry(key.to_string()).or_insert(Value::Null)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

/// A JSON document node.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as integer when exactly representable).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// A JSON number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl Value {
    /// As `f64` when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// As `u64` when a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// As `i64` when an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// As `&str` when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool` when boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an array when one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object when one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifying object member access, like serde_json's.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => m.entry_or_null(key),
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Number(Number::Int(i as i64))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Number(Number::Int(i))
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::Number(Number::Int(u as i64))
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        match i64::try_from(u) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(u)),
        }
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::from(u as u64)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::Float(f as f64))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Borrowing conversion used by the [`json!`] macro (mirrors how real
/// serde_json's macro leaves its arguments usable afterwards).
pub trait ToValue {
    /// Convert to a [`Value`] without consuming the receiver.
    fn to_value(&self) -> Value;
}

macro_rules! impl_to_value_copy {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}
impl_to_value_copy!(bool, i32, i64, u32, u64, usize, f32, f64);

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl ToValue for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}
impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}
impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}
impl<T: ToValue, const N: usize> ToValue for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}
impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Build a [`Value`] from a flat object/array literal or an expression.
/// Unlike real serde_json, object and array literals do not nest —
/// build inner values first and splice them in as expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::ToValue::to_value(&$val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToValue::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::ToValue::to_value(&$other) };
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(n: &Number, out: &mut String) {
    match n {
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::UInt(u) => out.push_str(&u.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // Round-trippable shortest representation; force a decimal
                // marker so the parser reads it back as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; match serde_json by emitting null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close) = match indent {
        Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number_into(n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, None, 0, &mut out);
    Ok(out)
}

/// Two-space-indented serialization.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, Some(2), 0, &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(Error::new(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                other.map(|c| c as char)
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Collect the longest run of plain UTF-8 bytes.
                    let start = self.pos - 1;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| Error::new(format!("invalid float {text:?}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::Int(i)))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::UInt(u)))
        } else {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    map.insert(key, self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::new("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
            None => Err(Error::new("unexpected end of input")),
        }
    }
}

/// Parse a JSON document.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_objects_and_arrays() {
        let inner = json!({ "a": 1u64, "b": 2.5f64 });
        let v = json!({ "name": "x", "ok": true, "inner": inner, "list": vec![1u64, 2] });
        assert_eq!(v["name"].as_str(), Some("x"));
        assert_eq!(v["inner"]["b"].as_f64(), Some(2.5));
        assert_eq!(v["list"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({
            "s": "quote \" backslash \\ newline \n",
            "n": -3.25f64,
            "i": 42u64,
            "arr": vec![json!(1u64), json!("two"), Value::Null],
            "b": false,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn index_mut_auto_vivifies() {
        let mut v = json!({ "a": 1u64 });
        v["b"] = json!({ "c": 3u64 });
        assert_eq!(v["b"]["c"].as_u64(), Some(3));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn numbers_preserve_integerness() {
        let v = from_str("{\"i\": 9007199254740993, \"f\": 1.5}").unwrap();
        assert_eq!(v["i"].as_u64(), Some(9007199254740993));
        assert_eq!(v["f"].as_f64(), Some(1.5));
        assert_eq!(v["i"].as_f64(), Some(9007199254740993.0_f64));
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [1.0e-7f64, 123456.789, -0.0, 3.0, f64::MIN_POSITIVE] {
            let v = json!(f);
            let back = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back.as_f64(), Some(f));
        }
    }
}
