//! In-tree stand-in for `criterion` (offline build). Provides the
//! benchmark-definition API the workspace's benches use — groups,
//! `bench_function`, `Bencher::iter` — with a simple wall-clock
//! measurement loop (median of `sample_size` samples after one warm-up)
//! instead of criterion's statistical machinery.

use std::time::Instant;

/// Re-export for benches that take `black_box` from criterion.
pub use std::hint::black_box;

/// Runs closures and times them.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, recording nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up iteration (also primes lazy state).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Define one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters: 1,
                last_ns_per_iter: 0.0,
            };
            f(&mut b);
            times.push(b.last_ns_per_iter);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        println!(
            "{}/{:<28} {:>12} / iter ({} samples)",
            self.name,
            id,
            fmt_ns(median),
            times.len()
        );
        self
    }

    /// Finish the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Define an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            samples: 10,
            _criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2.5e3), "2.50 us");
        assert_eq!(fmt_ns(3.2e6), "3.20 ms");
        assert_eq!(fmt_ns(1.1e9), "1.10 s");
    }
}
