//! In-tree stand-in for `rayon` (offline build). `par_iter()` degrades to
//! the ordinary sequential iterator: real rayon's `collect()` preserves
//! input order, so the sequential fallback is observationally identical
//! for the map/collect pipelines this workspace uses — only wall-clock
//! parallelism is lost. Genuinely parallel sections (the `FusionEngine`
//! tuning pool) use `std::thread::scope` directly instead of this shim.

/// Borrowed "parallel" iteration — sequential fallback.
pub trait IntoParallelRefIterator<'data> {
    /// Item type.
    type Item: 'data;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate by reference (sequentially).
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

/// Owned "parallel" iteration — sequential fallback.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate by value (sequentially).
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

/// Bridge an ordinary iterator into "parallel" iteration — sequential
/// fallback. Real rayon's `par_bridge()` does NOT preserve arrival
/// order, so (unlike the indexed `par_iter()` above) consumers must not
/// rely on ordering; the workspace's only user re-sorts by index after
/// collecting.
pub trait ParallelBridge: Iterator + Sized {
    /// Treat this iterator as a parallel one (sequentially here).
    fn par_bridge(self) -> Self;
}

impl<I: Iterator + Send> ParallelBridge for I
where
    I::Item: Send,
{
    fn par_bridge(self) -> Self {
        self
    }
}

/// The common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelBridge};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }
}
