//! In-tree stand-in for `proptest` (offline build). A deterministic mini
//! property-testing harness covering the strategy combinators this
//! workspace uses: ranges, `Just`, `prop_map`, `prop_shuffle`,
//! `prop::sample::select`, `prop::collection::vec`, `any::<T>()`, tuple
//! strategies, and the `proptest!` / `prop_assert*` macros. No shrinking:
//! a failing case reports its inputs via the assertion message instead.

use rand::prelude::*;

/// Deterministic generator used by the harness.
pub type TestRng = rand::rngs::StdRng;

/// Failure of one property case (returned by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable reason.
    pub message: String,
}

impl TestCaseError {
    /// Construct from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Randomly permute a generated `Vec`.
    fn prop_shuffle<T>(self) -> ShuffleStrategy<Self>
    where
        Self: Strategy<Value = Vec<T>> + Sized,
    {
        ShuffleStrategy { inner: self }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct ShuffleStrategy<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for ShuffleStrategy<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-domain strategy for primitive types — `any::<T>()`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Namespaced combinators, mirroring `proptest::prop`.
pub mod prop {
    /// Sampling from explicit option lists.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Uniform choice from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Choose uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires options");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Fixed-length vector of draws from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            count: usize,
        }

        /// `count` independent draws from `element`.
        pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
            VecStrategy { element, count }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.count)
                    .map(|_| self.element.generate(rng))
                    .collect()
            }
        }
    }
}

/// Seed a per-property generator from the property name.
pub fn rng_for(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Define deterministic property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_cfg($cfg) $($rest)* }
    };
    (@with_cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Property-scoped assertion: fails the case without panicking mid-draw.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn shuffle_permutes(v in Just(vec![0usize, 1, 2, 3]).prop_shuffle()) {
            let mut s = v.clone();
            s.sort_unstable();
            prop_assert_eq!(s, vec![0usize, 1, 2, 3]);
        }

        #[test]
        fn tuples_and_select(
            pair in (1u64..3, prop::sample::select(vec![10u64, 20])),
            tiles in prop::collection::vec(prop::sample::select(vec![16u64, 32]), 4),
        ) {
            prop_assert!(pair.0 < 3 && (pair.1 == 10 || pair.1 == 20));
            prop_assert_eq!(tiles.len(), 4);
        }

        #[test]
        fn early_return_is_a_pass(x in 0u64..10) {
            if x % 2 == 0 {
                return Ok(());
            }
            prop_assert!(x % 2 == 1);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = super::rng_for("determinism");
        let mut b = super::rng_for("determinism");
        use rand::Rng;
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }
}
