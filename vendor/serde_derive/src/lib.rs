//! In-tree stand-in for `serde_derive` (offline build). The workspace
//! uses `#[derive(Serialize, Deserialize)]` purely as a marker — nothing
//! drives serde's data model (the JSON paths go through the vendored
//! `serde_json::Value` and hand-written encoders) — so both derives
//! expand to nothing. The vendored `serde` crate supplies blanket trait
//! impls, keeping any `T: Serialize` bound satisfiable.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
