//! In-tree stand-in for `serde` (offline build). The workspace derives
//! `Serialize`/`Deserialize` as markers but never drives serde's data
//! model — persistence goes through the vendored `serde_json::Value` and
//! hand-written encoders (see `mcfuser-core`'s tuning cache). The traits
//! are therefore empty markers with blanket impls, and the derives (from
//! the vendored `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

/// Mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}
