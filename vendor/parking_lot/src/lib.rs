//! In-tree stand-in for `parking_lot` (offline build). Wraps the std
//! primitives and exposes the poison-free `lock()` API the workspace
//! relies on; a poisoned std lock is recovered rather than propagated,
//! matching parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
