//! In-tree stand-in for the `rand` crate (offline build). Provides the
//! API surface the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, `SliceRandom::shuffle`, and
//! `distributions::WeightedIndex` — backed by a deterministic
//! xoshiro256** generator seeded via SplitMix64. Streams differ from the
//! real crate's, but every consumer in this workspace only relies on
//! determinism, not on a specific stream.

use std::ops::Range;

/// Construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full seed state from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` given a raw 64-bit draw source.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Values `Rng::gen` can produce without a range.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64::draw(rng) as f32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The random-number-generator interface.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    #[inline]
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Draw a value of a `Standard`-distributed type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// ChaCha-based `StdRng`; this workspace only needs determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions beyond the uniform-over-range default.
pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a distribution.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Sample indices with probability proportional to the given weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Build from non-negative weights with a positive sum.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *std::borrow::Borrow::borrow(&w);
                if w.is_nan() || w < 0.0 || !w.is_finite() {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let target = unit * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&target).unwrap())
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::distributions::WeightedIndex;
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        for _ in 0..200 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
