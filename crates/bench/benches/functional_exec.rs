//! Criterion bench: functional (for-value) execution of fused kernels on
//! the simulator — the correctness-oracle path.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::{execute, TensorStorage};
use mcfuser_tile::{lower, Candidate, LoweringOptions, TilingExpr};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let chain = ChainSpec::gemm_chain("bench", 1, 128, 96, 64, 80);
    let cand = Candidate::new(
        TilingExpr::parse("mhnk", &chain).unwrap(),
        vec![32, 32, 32, 16],
    );
    let k = lower(&chain, &cand, &LoweringOptions::default()).unwrap();
    let inputs = chain.random_inputs(1);
    let mut g = c.benchmark_group("functional_exec");
    g.sample_size(20);
    g.bench_function("fused_2gemm_128x96", |b| {
        b.iter(|| {
            let mut st = TensorStorage::for_program(&k.program);
            for (i, t) in inputs.iter().enumerate() {
                st.tensors[i] = t.clone();
            }
            execute(black_box(&k.program), &mut st).unwrap();
            st
        })
    });
    g.bench_function("cpu_reference_128x96", |b| {
        b.iter(|| chain.reference(black_box(&inputs)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
