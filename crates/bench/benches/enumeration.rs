//! Criterion bench: tiling-expression enumeration and search-space
//! generation/counting (§III-A machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_core::SearchSpace;
use mcfuser_ir::ChainSpec;
use mcfuser_tile::{enumerate_all, enumerate_deep};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let chain = ChainSpec::gemm_chain("bench", 1, 1024, 1024, 512, 512);
    let chain3 = ChainSpec {
        name: "c3".into(),
        batch: 1,
        m: 512,
        dims: vec![64, 128, 128, 64],
        epilogues: vec![Default::default(); 3],
        biases: vec![false; 3],
        dtype: mcfuser_sim::DType::F16,
        prologue: None,
        stitch_epilogue: None,
    };
    let mut g = c.benchmark_group("enumeration");
    g.bench_function("deep_2gemm_24", |b| {
        b.iter(|| enumerate_deep(black_box(&chain)))
    });
    g.bench_function("all_2gemm_26", |b| {
        b.iter(|| enumerate_all(black_box(&chain)))
    });
    g.bench_function("all_3gemm_126", |b| {
        b.iter(|| enumerate_all(black_box(&chain3)))
    });
    g.bench_function("space_generate_and_count", |b| {
        b.iter(|| {
            let s = SearchSpace::generate(black_box(&chain));
            black_box(s.count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
