//! Criterion bench: statement placement (§III-B DAG analysis) and
//! lowering to tile programs (the Triton-analogue backend).

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_tile::{lower, place, Candidate, LoweringOptions, TilingExpr};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let chain = ChainSpec::gemm_chain("bench", 1, 1024, 1024, 512, 512);
    let attn = ChainSpec::attention("attn", 12, 512, 512, 64, 64);
    let cand = Candidate::new(
        TilingExpr::parse("mhnk", &chain).unwrap(),
        vec![128, 64, 64, 128],
    );
    let acand = Candidate::new(
        TilingExpr::parse("mhnk", &attn).unwrap(),
        vec![64, 64, 64, 64],
    );
    let opts = LoweringOptions::for_device(&DeviceSpec::a100());
    let mut g = c.benchmark_group("lowering");
    g.bench_function("place_gemm_chain", |b| {
        b.iter(|| place(black_box(&chain), black_box(&cand)).unwrap())
    });
    g.bench_function("lower_gemm_chain", |b| {
        b.iter(|| lower(black_box(&chain), black_box(&cand), &opts).unwrap())
    });
    g.bench_function("lower_attention", |b| {
        b.iter(|| lower(black_box(&attn), black_box(&acand), &opts).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
