//! Criterion bench: a full MCFuser tuning session (prune + Algorithm 1)
//! on a small chain — the end-to-end per-sub-graph cost.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_core::McFuser;
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let dev = DeviceSpec::a100();
    let chain = ChainSpec::gemm_chain("bench", 1, 512, 256, 64, 64);
    let attn = ChainSpec::attention("attn", 8, 256, 256, 64, 64);
    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    g.bench_function("tune_gemm_chain_g1", |b| {
        b.iter(|| McFuser::new().tune(black_box(&chain), &dev).unwrap())
    });
    g.bench_function("tune_attention", |b| {
        b.iter(|| McFuser::new().tune(black_box(&attn), &dev).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
