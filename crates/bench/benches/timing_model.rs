//! Criterion bench: the simulator's timing "measurement" — the hot inner
//! call of every tuner in the workspace.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_baselines::matmul_program;
use mcfuser_ir::{ChainSpec, Epilogue};
use mcfuser_sim::{measure, measure_noisy, DType, DeviceSpec};
use mcfuser_tile::{lower, Candidate, LoweringOptions, TilingExpr};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let dev = DeviceSpec::a100();
    let mm = matmul_program(
        "mm",
        1,
        1024,
        1024,
        512,
        (128, 128, 32),
        DType::F16,
        Epilogue::None,
    );
    let chain = ChainSpec::attention("attn", 12, 512, 512, 64, 64);
    let cand = Candidate::new(
        TilingExpr::parse("mhnk", &chain).unwrap(),
        vec![64, 64, 64, 64],
    );
    let fused = lower(&chain, &cand, &LoweringOptions::for_device(&dev)).unwrap();
    let mut g = c.benchmark_group("timing_model");
    g.bench_function("measure_library_matmul", |b| {
        b.iter(|| measure(black_box(&mm), &dev))
    });
    g.bench_function("measure_fused_attention", |b| {
        b.iter(|| measure(black_box(&fused.program), &dev))
    });
    g.bench_function("measure_noisy", |b| {
        b.iter(|| measure_noisy(black_box(&fused.program), &dev, 42))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
