//! Criterion bench: interpreter oracle vs vectorized backend on the two
//! shapes the executor trait was built for — a fused BERT encoder layer
//! served request-at-a-time, and the same plan widened to a batch of 8
//! (slot-strided stores).

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_baselines::Relay;
use mcfuser_core::{BatchedPlan, ExecBackend, FusionEngine, InputSet, RunOptions};
use mcfuser_sim::{BufferArena, DeviceSpec, HostTensor};
use mcfuser_workloads::{bert_graph, BertConfig};

const BACKENDS: [ExecBackend; 2] = [ExecBackend::Interpreter, ExecBackend::Vectorized];

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 29) as f32 - 14.0) / 29.0)
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let engine = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build();
    let bert = bert_graph(
        "bert-layer",
        &BertConfig {
            layers: 1,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    let plan = Arc::new(engine.compile_plan(&bert).expect("bert layer compiles"));
    let inputs: Vec<InputSet> = (0..8u64)
        .map(|r| {
            let mut set = InputSet::new();
            for (i, b) in plan.inputs().iter().enumerate() {
                set.insert(b.name.clone(), ramp(&b.shape, r * 7 + i as u64));
            }
            set
        })
        .collect();

    let mut g = c.benchmark_group("exec_backends");
    g.sample_size(10);
    for backend in BACKENDS {
        g.bench_function(&format!("bert_layer_serial/{backend}"), |b| {
            let opts = RunOptions::seeded(0).with_backend(backend);
            b.iter(|| plan.execute(black_box(&inputs[0]), opts).unwrap())
        });
    }
    let batched = BatchedPlan::new(plan.clone());
    let refs: Vec<&InputSet> = inputs.iter().collect();
    for backend in BACKENDS {
        g.bench_function(&format!("bert_layer_batch8/{backend}"), |b| {
            let opts = RunOptions::seeded(0).with_backend(backend);
            let mut arena = BufferArena::new();
            b.iter(|| {
                batched
                    .execute_batch(black_box(&refs), opts, &mut arena, None)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
