//! Criterion bench: the analytical performance model (Eqs. 2–5) — free
//! estimates are the paper's key to fast tuning, so they must be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_core::{estimate, estimate_or_inf};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_tile::{Candidate, TilingExpr};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let dev = DeviceSpec::a100();
    let chain = ChainSpec::gemm_chain("bench", 1, 1024, 1024, 512, 512);
    let cand = Candidate::new(
        TilingExpr::parse("mhnk", &chain).unwrap(),
        vec![128, 64, 64, 128],
    );
    let mut g = c.benchmark_group("perf_model");
    g.bench_function("estimate_single", |b| {
        b.iter(|| estimate(black_box(&chain), black_box(&cand), &dev).unwrap())
    });
    g.bench_function("estimate_population_128", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..128 {
                acc += estimate_or_inf(black_box(&chain), black_box(&cand), &dev);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
