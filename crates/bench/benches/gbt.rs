//! Criterion bench: the gradient-boosted-trees cost model behind the
//! Ansor baseline (fit + predict throughput).

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_baselines::{GbtModel, GbtParams};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let x: Vec<Vec<f64>> = (0..512)
        .map(|_| (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1] * r[2]).collect();
    let model = GbtModel::fit(&x, &y, &GbtParams::default());
    let mut g = c.benchmark_group("gbt");
    g.sample_size(10);
    g.bench_function("fit_512x9", |b| {
        b.iter(|| GbtModel::fit(black_box(&x), black_box(&y), &GbtParams::default()))
    });
    g.bench_function("predict_512", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in &x {
                acc += model.predict(black_box(row));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
