//! Criterion bench: the Rule 1–4 pruning cascade (§III-C) on the paper's
//! running example (1.09e8 candidates in, ~1e3 out).

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_core::{prune, SearchSpace};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let dev = DeviceSpec::a100();
    let big = ChainSpec::gemm_chain("big", 1, 1024, 1024, 512, 512);
    let attn = ChainSpec::attention("attn", 12, 512, 512, 64, 64);
    let big_space = SearchSpace::generate(&big);
    let attn_space = SearchSpace::generate(&attn);
    let mut g = c.benchmark_group("pruning");
    g.sample_size(20);
    g.bench_function("gemm_chain_1e8_candidates", |b| {
        b.iter(|| prune(black_box(&big), &dev, &big_space))
    });
    g.bench_function("attention_s2", |b| {
        b.iter(|| prune(black_box(&attn), &dev, &attn_space))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
