//! Criterion bench: the Rule 1–4 pruning cascade (§III-C) on the paper's
//! running example (1.09e8 candidates in, ~1e3 out), plus the lazy
//! [`CandidateSpace`] paths that replaced the eager materialization —
//! the Rule-4 survivor-index build (filter on), the `-rule4` ablation
//! (filter off: O(1), nothing scanned), and indexed candidate decoding.
//!
//! [`CandidateSpace`]: mcfuser_core::CandidateSpace

use criterion::{criterion_group, criterion_main, Criterion};
use mcfuser_core::{
    build_candidate_space, build_candidate_space_scanned, prune, Rule4Scan, SearchSpace,
    SpacePolicy,
};
use mcfuser_ir::{ChainSpec, Epilogue};
use mcfuser_sim::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let dev = DeviceSpec::a100();
    let big = ChainSpec::gemm_chain("big", 1, 1024, 1024, 512, 512);
    let attn = ChainSpec::attention("attn", 12, 512, 512, 64, 64);
    let big_space = SearchSpace::generate(&big);
    let attn_space = SearchSpace::generate(&attn);
    let mut g = c.benchmark_group("pruning");
    g.sample_size(20);
    g.bench_function("gemm_chain_1e8_candidates", |b| {
        b.iter(|| prune(black_box(&big), &dev, &big_space))
    });
    g.bench_function("attention_s2", |b| {
        b.iter(|| prune(black_box(&attn), &dev, &attn_space))
    });
    // The -rule4 ablation path: the same lazy space with the filter
    // disabled — no scan, no materialization, O(1) regardless of size.
    let no_rule4 = SpacePolicy {
        shared_memory_pruning: false,
        ..Default::default()
    };
    g.bench_function("lazy_rule4_disabled", |b| {
        b.iter(|| build_candidate_space(black_box(&big), &dev, &no_rule4))
    });
    // Dense vs frontier Rule-4 scan on a grid past FRONTIER_MIN_GRID
    // (the non-power-of-two 3-GEMM chain keeps 14–22 Rule-3 options per
    // axis — ~2.9M combinations): the frontier binary-searches one row
    // prefix per fixed setting of the slow axes instead of estimating
    // every combination.
    let wide = ChainSpec::chain(
        "mlp3-1536",
        1,
        1536,
        vec![1536, 768, 1536, 768],
        vec![Epilogue::None; 3],
    );
    let full = SpacePolicy::default();
    g.bench_function("rule4_scan_dense_2_9e6_grid", |b| {
        b.iter(|| build_candidate_space_scanned(black_box(&wide), &dev, &full, Rule4Scan::Dense))
    });
    g.bench_function("rule4_scan_frontier_2_9e6_grid", |b| {
        b.iter(|| build_candidate_space_scanned(black_box(&wide), &dev, &full, Rule4Scan::Frontier))
    });
    // Indexed decoding: the hot operation of sampling-based search.
    let pruned = prune(&big, &dev, &big_space);
    let stride = (pruned.len() / 251).max(1);
    g.bench_function("candidate_indexing", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut i = 0u64;
            while i < pruned.len() {
                acc ^= black_box(pruned.candidate(i)).tiles[0];
                i += stride;
            }
            acc
        })
    });
    // Streaming enumeration: the full-ranking seed path of Algorithm 1.
    g.bench_function("candidate_streaming", |b| {
        b.iter(|| black_box(&pruned).iter().map(|c| c.tiles[0]).sum::<u64>())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
