//! # mcfuser-bench — the evaluation harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! shared reporting utilities in this library:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig2_roofline` | Fig. 2 — MatMul K/M sweep, φ and achieved TFLOPS |
//! | `fig3_search_space` | Fig. 3 — deep/flat tiling census (+ Fig. 4/5 DAG listings) |
//! | `fig7_pruning` | Fig. 7 — pruning waterfall |
//! | `fig8_subgraph` | Fig. 8 — sub-graph performance, GEMM chains & attention |
//! | `fig9_end2end` | Fig. 9 — end-to-end BERT |
//! | `fig10_shmem` | Fig. 10 — shared-memory estimate accuracy quadrants |
//! | `fig11_perf_model` | Fig. 11 — analytical-model correlation |
//! | `table1_comparison` | Table I — capability matrix |
//! | `table4_tuning_time` | Table IV — tuning times |
//!
//! Every binary prints a human-readable table and writes machine-readable
//! JSON under `results/`.

#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;

use mcfuser_sim::DeviceSpec;

/// Resolve a device by CLI name.
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_ascii_lowercase().as_str() {
        "a100" => Some(DeviceSpec::a100()),
        "h100" => Some(DeviceSpec::h100()),
        "rtx3080" | "3080" => Some(DeviceSpec::rtx3080()),
        _ => None,
    }
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    num / (dx.sqrt() * dy.sqrt())
}

/// Geometric mean (for speedup aggregation).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start with headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Directory for machine-readable outputs (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MCFUSER_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a JSON value under `results/<name>.json`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(value).unwrap());
            eprintln!("[wrote {}]", path.display());
        }
        Err(e) => eprintln!("[warn: cannot write {}: {e}]", path.display()),
    }
}

/// Format seconds with an adaptive unit.
pub fn fmt_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "-".into();
    }
    if seconds >= 3600.0 {
        format!("{:.2}h", seconds / 3600.0)
    } else if seconds >= 1.0 {
        format!("{seconds:.0}s")
    } else if seconds >= 1e-3 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{:.1}us", seconds * 1e6)
    }
}

/// Price a whole graph with a per-operator backend and *no* MBCI fusion
/// (the "Relay alone" / "Ansor alone" / "BOLT" bars of Fig. 9).
/// Returns `(inference_seconds, tuning_seconds)`.
pub fn unfused_graph_cost(
    graph: &mcfuser_ir::Graph,
    dev: &DeviceSpec,
    model: &dyn mcfuser_core::OpCostModel,
) -> (f64, f64) {
    let nodes: Vec<mcfuser_ir::NodeId> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !matches!(n.op, mcfuser_ir::Op::Input | mcfuser_ir::Op::Weight))
        .map(|(i, _)| mcfuser_ir::NodeId(i))
        .collect();
    let time: f64 = nodes.iter().map(|&n| model.op_time(graph, n, dev)).sum();
    let tuning = model.tuning_seconds(graph, &nodes, dev);
    (time, tuning)
}

/// `--fast` flag: trimmed budgets for CI-speed runs.
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5e-6), "2.5us");
        assert_eq!(fmt_time(1.5e-3), "1.50ms");
        assert_eq!(fmt_time(42.0), "42s");
        assert_eq!(fmt_time(7200.0), "2.00h");
        assert_eq!(fmt_time(f64::INFINITY), "-");
    }

    #[test]
    fn devices_resolve() {
        assert!(device_by_name("a100").is_some());
        assert!(device_by_name("RTX3080").is_some());
        assert_eq!(
            device_by_name("H100").map(|d| d.arch),
            Some(mcfuser_sim::Arch::Sm90)
        );
        assert!(device_by_name("mi300").is_none());
    }
}
