//! Fig. 3 — the search-space census for the 2-GEMM chain (24 deep + 2
//! flat tiling expressions), plus the Fig. 4/5 pseudo-code listings that
//! illustrate the DAG-based memory-access optimization
//! (pass `--show-dag`).

use mcfuser_bench::{write_json, TextTable};
use mcfuser_core::SearchSpace;
use mcfuser_ir::ChainSpec;
use mcfuser_tile::{
    enumerate_deep, enumerate_flat, place_into, render_tree, Candidate, TilingExpr,
};

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let chain = ChainSpec::gemm_chain("fig3", 1, 1024, 1024, 512, 512);
    let deep = enumerate_deep(&chain);
    let flat = enumerate_flat(&chain);
    // The census of the full product space comes from the analytical
    // counter — the space is never materialized (§III-C: 1.09 × 10⁸).
    let full_count = SearchSpace::generate(&chain).count();

    println!("Fig. 3 — tiling expressions of the GEMM chain (m, k, n, h):\n");
    let mut t = TextTable::new(&["category", "count", "examples"]);
    let show = |v: &[TilingExpr], n: usize| -> String {
        v.iter()
            .take(n)
            .map(|e| e.display(&chain))
            .collect::<Vec<_>>()
            .join(", ")
    };
    t.row(vec![
        "deep tiling".into(),
        deep.len().to_string(),
        format!("{} …", show(&deep, 6)),
    ]);
    t.row(vec![
        "flat tiling".into(),
        flat.len().to_string(),
        show(&flat, 2),
    ]);
    t.row(vec![
        "total".into(),
        (deep.len() + flat.len()).to_string(),
        String::new(),
    ]);
    t.row(vec![
        "x tile vectors".into(),
        full_count.to_string(),
        "counted analytically, never materialized".into(),
    ]);
    println!("{}", t.render());

    if std::env::args().any(|a| a == "--show-dag") {
        // Fig. 4(a): the full mhnk expression with optimized placement.
        let cand = Candidate::new(
            TilingExpr::parse("mhnk", &chain).unwrap(),
            vec![128, 64, 64, 128],
        );
        let p = place_into(&chain, &cand, &cand.expr).unwrap();
        println!("Fig. 4(a) — optimized tiling expression mhnk:");
        println!("{}", render_tree(&p.tree, &chain));

        // Fig. 4(b)/5(b): k covered by a single tile → dead-loop
        // elimination hoists LA outward.
        let cand1 = Candidate::new(
            TilingExpr::parse("mhnk", &chain).unwrap(),
            vec![128, 512, 64, 128],
        );
        let live = cand1.live_block_expr(&chain);
        let p1 = place_into(&chain, &cand1, &live).unwrap();
        println!("Fig. 4(b) — per-block program after k = 1 elimination (Rule-1 bound):");
        println!("{}", render_tree(&p1.tree, &chain));
    } else {
        println!("(pass --show-dag for the Fig. 4/5 pseudo-code listings)");
    }

    // Fig. 6: shared-memory behaviour of the two per-block sub-tiling
    // expressions — "nk" reuses a single C-tile buffer; "kn" must cache
    // one partial C tile per n iteration (what Rule 2 prunes).
    let tiles = vec![64u64, 64, 64, 64];
    let nk = Candidate::new(TilingExpr::parse("mhnk", &chain).unwrap(), tiles.clone());
    let kn = Candidate::new(TilingExpr::parse("mhkn", &chain).unwrap(), tiles);
    let inst = |c: &Candidate| mcfuser_tile::accumulator_instances(&chain, c, 0);
    println!("Fig. 6 — per-thread-block accumulator tiles of C (tile 64, N = 1024):");
    println!(
        "  sub-expression nk (from mhnk): {} tile  (single reusable buffer)",
        inst(&nk)
    );
    println!(
        "  sub-expression kn (from mhkn): {} tiles (partial results for every n) -> pruned by Rule 2",
        inst(&kn)
    );

    write_json(
        "fig3_search_space",
        &serde_json::json!({
            "deep": deep.len(),
            "flat": flat.len(),
            "total": deep.len() + flat.len(),
            "full_space": full_count.to_string(),
            "deep_examples": deep.iter().take(24).map(|e| e.display(&chain)).collect::<Vec<_>>(),
            "flat_examples": flat.iter().map(|e| e.display(&chain)).collect::<Vec<_>>(),
        }),
    );
}
