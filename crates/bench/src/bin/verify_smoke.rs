//! Static-verifier smoke sweep: sample ≥ 500 lowered candidates per
//! workload family (BERT, ViT, MLP-Mixer, decoder GQA), run every one
//! through the full symbolic verifier — bounds, init/def-use,
//! inter-block races — and assert **zero violations**. The verifier
//! gates every kernel the engine caches or serves, so a violation here
//! means either a lowering bug (the gate caught a miscompile before any
//! runtime test could) or an over-strict analysis (the gate would
//! demote sound kernels); both must fail CI.
//!
//! A handful of verified programs per family are additionally executed
//! against the chain's CPU reference on the selected backend, tying the
//! static proof to runtime behaviour on both executors:
//!
//! ```sh
//! cargo run --release -p mcfuser-bench --bin verify_smoke               # vectorized
//! cargo run --release -p mcfuser-bench --bin verify_smoke interpreter
//! ```
//!
//! Reports programs-verified/sec and writes `results/verify_smoke.json`.

use std::time::Instant;

use mcfuser_core::{build_candidate_space, SpacePolicy};
use mcfuser_ir::{partition, ChainSpec};
use mcfuser_sim::verify::{verify_program, VerifyReport};
use mcfuser_sim::{
    DeviceSpec, InterpreterExec, KernelExecutor, TensorStorage, TileProgram, VectorizedExec,
};
use mcfuser_tile::{lower, LoweringOptions};
use mcfuser_workloads::{
    bert_graph, decode_attention_chain, decode_ffn_chain, mixer_block, vit_block, BertConfig,
    DecoderConfig,
};

/// Candidates each family must get through the verifier.
const QUOTA: usize = 500;
/// Verified programs per family to additionally execute for value.
const EXEC_SPOT_CHECKS: usize = 2;

struct FamilyResult {
    name: &'static str,
    chains: usize,
    sampled: usize,
    lowering_rejects: usize,
    verified: usize,
    violations: Vec<String>,
    report: VerifyReport,
    spot_checked: usize,
}

fn main() {
    let backend_name = std::env::args().nth(1).unwrap_or_default();
    let backend: Box<dyn KernelExecutor> = match backend_name.as_str() {
        "interpreter" => Box::new(InterpreterExec),
        "" | "vectorized" => Box::new(VectorizedExec),
        other => panic!("unknown backend '{other}' (expected 'interpreter' or 'vectorized')"),
    };
    let device = DeviceSpec::a100();

    let graph_chains = |g: &mcfuser_ir::Graph| -> Vec<ChainSpec> {
        partition(g, &device)
            .chains
            .iter()
            .map(|fc| fc.chain.clone())
            .collect()
    };
    // Each family pools several shape variants so the sampled spaces
    // are comfortably larger than the per-family quota.
    let mut bert_chains = Vec::new();
    for (seq, hidden, heads, inter) in [
        (64, 128, 4, 512),
        (128, 128, 4, 512),
        (256, 256, 8, 1024),
        (512, 256, 4, 512),
    ] {
        bert_chains.extend(graph_chains(&bert_graph(
            &format!("bert-s{seq}-h{hidden}"),
            &BertConfig {
                layers: 1,
                hidden,
                heads,
                seq,
                intermediate: inter,
            },
        )));
    }
    let mut vit_chains = Vec::new();
    for (patches, hidden, heads) in [(64, 128, 4), (196, 256, 8), (256, 128, 4), (576, 256, 4)] {
        vit_chains.extend(graph_chains(&vit_block(patches, hidden, heads)));
    }
    let mut mixer_chains = Vec::new();
    for (tokens, channels, th, ch) in [
        (64, 128, 256, 512),
        (196, 256, 128, 1024),
        (256, 128, 512, 256),
    ] {
        mixer_chains.extend(graph_chains(&mixer_block(tokens, channels, th, ch)));
    }
    let mut decoder_chains = Vec::new();
    for hidden in [128u64, 256] {
        let gqa = DecoderConfig {
            hidden,
            intermediate: 2 * hidden,
            ..DecoderConfig::gpt_mini_gqa()
        };
        decoder_chains.push(decode_ffn_chain(&format!("gqa-h{hidden}-ffn"), &gqa));
        for t_b in [32u64, 64, 128, 256, 512, 1024] {
            decoder_chains.push(decode_attention_chain(
                &format!("gqa-h{hidden}-attn-t{t_b}"),
                &gqa,
                t_b,
            ));
        }
    }
    let families: Vec<(&'static str, Vec<ChainSpec>)> = vec![
        ("bert", bert_chains),
        ("vit", vit_chains),
        ("mixer", mixer_chains),
        ("decoder_gqa", decoder_chains),
    ];

    let start = Instant::now();
    let mut results = Vec::new();
    for (name, chains) in &families {
        assert!(!chains.is_empty(), "family '{name}' produced no chains");
        results.push(sweep_family(name, chains, &device, backend.as_ref()));
    }
    let wall = start.elapsed().as_secs_f64();

    let total_verified: usize = results.iter().map(|r| r.verified).sum();
    let total_violations: usize = results.iter().map(|r| r.violations.len()).sum();
    let per_sec = total_verified as f64 / wall;
    for r in &results {
        println!(
            "  {:<12} {} chains, {} sampled, {} lowering rejects, {} verified \
             ({} stmts / {} accesses / {} stores proved, {} declared clips), \
             {} executed for value",
            r.name,
            r.chains,
            r.sampled,
            r.lowering_rejects,
            r.verified,
            r.report.stmts,
            r.report.accesses,
            r.report.stores,
            r.report.clipped,
            r.spot_checked,
        );
        for v in &r.violations {
            println!("    VIOLATION: {v}");
        }
    }
    println!(
        "  {total_verified} programs verified in {wall:.2} s ({per_sec:.0} programs/s) on {}",
        device.name
    );

    mcfuser_bench::write_json(
        "verify_smoke",
        &serde_json::json!({
            "backend": backend.name(),
            "quota_per_family": QUOTA,
            "families": results.iter().map(|r| serde_json::json!({
                "name": r.name,
                "chains": r.chains,
                "sampled": r.sampled,
                "lowering_rejects": r.lowering_rejects,
                "verified": r.verified,
                "violations": r.violations,
                "stmts_proved": r.report.stmts,
                "accesses_proved": r.report.accesses,
                "stores_proved": r.report.stores,
                "declared_clips": r.report.clipped,
                "exec_spot_checks": r.spot_checked,
            })).collect::<Vec<_>>(),
            "total_verified": total_verified,
            "total_violations": total_violations,
            "wall_seconds": wall,
            "programs_per_second": per_sec,
        }),
    );

    for r in &results {
        assert!(
            r.verified >= QUOTA,
            "family '{}' only got {} candidates through the verifier (quota {QUOTA})",
            r.name,
            r.verified
        );
    }
    assert_eq!(total_violations, 0, "static verifier found violations");
    println!("OK — verify_smoke: zero violations across {total_verified} sampled programs.");
}

/// Sweep one family: walk each chain's pruned candidate space with an
/// even-spaced deterministic stride, lower, verify, and accumulate
/// until the family quota is met (or every space is exhausted).
fn sweep_family(
    name: &'static str,
    chains: &[ChainSpec],
    device: &DeviceSpec,
    backend: &dyn KernelExecutor,
) -> FamilyResult {
    let opts = LoweringOptions::for_device(device);
    let mut r = FamilyResult {
        name,
        chains: chains.len(),
        sampled: 0,
        lowering_rejects: 0,
        verified: 0,
        violations: Vec::new(),
        report: VerifyReport::default(),
        spot_checked: 0,
    };
    // Generous per-chain budget: lowering legitimately rejects a large
    // share of pruned candidates (Rule-2-style launch-limit failures),
    // so each chain contributes well past its even share and the family
    // total comfortably clears the quota.
    let per_chain_cap = QUOTA as u64;
    for chain in chains {
        let space = build_candidate_space(chain, device, &SpacePolicy::default());
        let len = space.len();
        assert!(
            len > 0,
            "chain '{}' has an empty candidate space",
            chain.name
        );
        // Even-spaced indices cover the space deterministically; when
        // the space is smaller than the per-chain cap, take all of it.
        let take = per_chain_cap.min(len);
        let step = len / take;
        for i in 0..take {
            let cand = space.candidate(i * step);
            r.sampled += 1;
            let Ok(kernel) = lower(chain, &cand, &opts) else {
                r.lowering_rejects += 1;
                continue;
            };
            match verify_program(&kernel.program) {
                Ok(rep) => {
                    r.verified += 1;
                    r.report.stmts += rep.stmts;
                    r.report.accesses += rep.accesses;
                    r.report.stores += rep.stores;
                    r.report.clipped += rep.clipped;
                    if r.spot_checked < EXEC_SPOT_CHECKS {
                        exec_spot_check(chain, &kernel.program, backend);
                        r.spot_checked += 1;
                    }
                }
                Err(e) => {
                    r.violations
                        .push(format!("{} [{}]: {e}", chain.name, cand.describe(chain)))
                }
            }
        }
    }
    r
}

/// Execute a verified program for value on the selected backend and
/// compare against the chain's CPU reference — the static proof and the
/// runtime oracle must agree on the same program.
fn exec_spot_check(chain: &ChainSpec, program: &TileProgram, backend: &dyn KernelExecutor) {
    let inputs = chain.random_inputs(7);
    let mut st = TensorStorage::for_program(program);
    for (i, t) in inputs.iter().enumerate() {
        st.tensors[i] = t.clone();
    }
    backend
        .execute(program, &mut st)
        .expect("verified program must execute");
    let reference = chain.reference(&inputs);
    let err = st.tensors.last().unwrap().rel_l2_error(&reference);
    assert!(
        err < 2e-2,
        "verified program for '{}' diverged from reference (rel l2 {err})",
        chain.name
    );
}
