//! Table I — the qualitative comparison among representative works and
//! MCFuser, generated from each backend's self-reported capabilities.
//! (AStitch and DNNFusion are not executable baselines here — they never
//! fuse MBCI chains — so their rows are static, as in the paper.)

use mcfuser_baselines::{Ansor, Backend, Bolt, Chimera, FlashAttention, McFuserBackend, PyTorch};
use mcfuser_bench::{write_json, TextTable};

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let mut t = TextTable::new(&[
        "Name",
        "Support MBCI",
        "Auto.",
        "Search Space",
        "Objective / Guidance",
        "Tuning time",
    ]);

    // Static rows for systems whose designs preclude MBCI fusion.
    t.row(vec![
        "AStitch".into(),
        "No".into(),
        "Yes".into(),
        "Stitch schemas fusion".into(),
        "Rule-based".into(),
        "Short".into(),
    ]);
    t.row(vec![
        "DNNFusion".into(),
        "No".into(),
        "Yes".into(),
        "Pattern-based fusion".into(),
        "Mathematical analysis".into(),
        "Short".into(),
    ]);

    let backends: Vec<(&str, mcfuser_baselines::Capabilities)> = vec![
        ("PyTorch", PyTorch.capabilities()),
        ("BOLT", Bolt::new().capabilities()),
        ("FlashAttention", FlashAttention.capabilities()),
        ("Ansor", Ansor::with_trials(1).capabilities()),
        ("Chimera", Chimera.capabilities()),
        ("MCFuser (ours)", McFuserBackend::new().capabilities()),
    ];
    let mut json_rows = Vec::new();
    for (name, c) in &backends {
        t.row(vec![
            name.to_string(),
            c.supports_mbci.into(),
            c.automatic.into(),
            c.search_space.into(),
            c.objective.into(),
            c.tuning_time.into(),
        ]);
        json_rows.push(serde_json::json!({
            "name": name,
            "supports_mbci": c.supports_mbci,
            "automatic": c.automatic,
            "search_space": c.search_space,
            "objective": c.objective,
            "tuning_time": c.tuning_time,
        }));
    }

    println!("Table I — comparison among representative works and MCFuser\n");
    println!("{}", t.render());
    write_json(
        "table1_comparison",
        &serde_json::json!({ "rows": json_rows }),
    );
}
