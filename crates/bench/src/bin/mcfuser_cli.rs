//! `mcfuser_cli` — tune an arbitrary MBCI chain from the command line and
//! inspect the winning kernel, through a `FusionEngine` session.
//!
//! ```sh
//! mcfuser_cli gemm  --m 512 --n 256 --k 64 --h 64 [--batch 1] [--device a100]
//! mcfuser_cli attn  --heads 12 --seq 512 --dim 64 [--device rtx3080]
//! mcfuser_cli explain gemm --m 512 --n 256 --k 64 --h 64   # kernel report
//! mcfuser_cli gemm --m 512 ... --cache tuning.json         # persistent cache
//! ```
//!
//! With `--cache <path>`, the session reuses any schedule tuned by an
//! earlier invocation pointed at the same file (a second identical run
//! reports a cache hit and near-zero tuning cost).

use mcfuser_bench::device_by_name;
use mcfuser_core::{CachePolicy, FusionEngine};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::{explain, DeviceSpec};

fn arg(flag: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("gemm");
    let (want_explain, kind) = if mode == "explain" {
        (true, args.get(2).map(String::as_str).unwrap_or("gemm"))
    } else {
        (false, mode)
    };

    let device: DeviceSpec = arg_str("--device")
        .and_then(|d| device_by_name(&d))
        .unwrap_or_else(DeviceSpec::a100);

    let chain = match kind {
        "attn" | "attention" => {
            let heads = arg("--heads", 12);
            let seq = arg("--seq", 512);
            let dim = arg("--dim", 64);
            ChainSpec::attention("cli", heads, seq, seq, dim, dim)
        }
        _ => {
            let batch = arg("--batch", 1);
            let m = arg("--m", 512);
            let n = arg("--n", 256);
            let k = arg("--k", 64);
            let h = arg("--h", 64);
            ChainSpec::gemm_chain("cli", batch, m, n, k, h)
        }
    };

    println!("chain : {chain}");
    println!(
        "MBCI  : {} (per-op intensity {:.1}/{:.1} vs ridge {:.0} FLOP/B)",
        chain.is_memory_bound(&device),
        chain.op_intensity(0),
        chain.op_intensity(chain.num_ops() - 1),
        device.ridge_flops_per_byte(chain.dtype)
    );

    let cache = match arg_str("--cache") {
        Some(path) => CachePolicy::DiskJson(path.into()),
        None => CachePolicy::InMemory,
    };
    let engine = FusionEngine::builder(device.clone()).cache(cache).build();

    match engine.tune(&chain) {
        Ok(t) => {
            let stats = engine.stats();
            println!("sched : {}", t.candidate.describe(&chain));
            println!(
                "time  : {:.2} us ({} blocks)",
                t.profile.time * 1e6,
                t.profile.blocks
            );
            println!(
                "tuning: {:.0} virtual s ({} measured / {} estimated){}",
                t.tuning.virtual_seconds,
                t.tuning.measurements,
                t.tuning.estimates,
                if stats.cache_hits > 0 {
                    " [cache hit — nothing spent this run]"
                } else {
                    ""
                }
            );
            if want_explain {
                println!("\n{}", explain(&t.kernel.program, &device));
            }
        }
        Err(e) => {
            eprintln!("tuning failed: {e}");
            std::process::exit(1);
        }
    }
}
