//! Fig. 2 — a MatMul across K/M ratios at constant complexity
//! (M·N·K = 1024³, M = N): theoretical compute/memory ratio φ for a
//! 256-tile (left axis) and achieved throughput on the simulated A100
//! (right axis), showing the compute-bound → memory-bound transition.

use mcfuser_baselines::libkernels::{matmul_program, pick_library_tile};
use mcfuser_bench::{fmt_time, write_json, TextTable};
use mcfuser_core::matmul_tile_intensity;
use mcfuser_ir::Epilogue;
use mcfuser_sim::{measure, DType, DeviceSpec};

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let dev = DeviceSpec::a100();
    let ridge = dev.ridge_flops_per_byte(DType::F16);
    let total: f64 = 1024f64 * 1024.0 * 1024.0;

    // K/M sweep from 1.0 down to ~1/256 (the paper's x axis).
    let ratios: Vec<f64> = vec![
        1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.15, 0.1, 0.05, 0.025, 0.0125, 0.00625, 0.0039,
    ];

    let mut table = TextTable::new(&[
        "K/M",
        "M=N",
        "K",
        "phi(T=256) op/B",
        "regime",
        "TFLOPS",
        "kernel",
    ]);
    let mut json_rows = Vec::new();
    for &r in &ratios {
        // M²·K = total with K = r·M  ⇒  M = (total / r)^(1/3).
        let m_f = (total / r).powf(1.0 / 3.0);
        let m = ((m_f / 16.0).round() as u64 * 16).max(16);
        let k = (((r * m as f64) / 16.0).round() as u64 * 16)
            .max(16)
            .min(m * 4);
        // φ in FLOPs per *byte* (f16 elements are 2 B).
        let phi = matmul_tile_intensity(256, 256, k) / 2.0;
        // Best library kernel for the shape (vendors search their whole
        // template table internally) — keeps the sweep smooth.
        let mut best: Option<mcfuser_sim::KernelProfile> = None;
        for &tiles in mcfuser_baselines::LIBRARY_TILES.iter() {
            let p = matmul_program("fig2", 1, m, m, k, tiles, DType::F16, Epilogue::None);
            let prof = measure(&p, &dev);
            if best.as_ref().map(|b| prof.time < b.time).unwrap_or(true) {
                best = Some(prof);
            }
        }
        let _ = pick_library_tile(1, m, m, k, &dev);
        let prof = best.unwrap();
        let regime = match prof.bound {
            mcfuser_sim::Bound::Compute => "compute",
            mcfuser_sim::Bound::Dram => "memory",
            mcfuser_sim::Bound::L2 => "memory(L2)",
            mcfuser_sim::Bound::Smem => "smem",
            mcfuser_sim::Bound::Latency => "latency",
        };
        let tflops = prof.achieved_flops / 1e12;
        table.row(vec![
            format!("{r:.4}"),
            m.to_string(),
            k.to_string(),
            format!("{phi:.1}"),
            regime.to_string(),
            format!("{tflops:.1}"),
            fmt_time(prof.time),
        ]);
        json_rows.push(serde_json::json!({
            "k_over_m": r, "m": m, "k": k, "phi_flops_per_byte": phi,
            "regime": regime, "tflops": tflops, "time_s": prof.time,
        }));
    }

    println!(
        "Fig. 2 — MatMul K/M sweep on {} (ridge = {:.0} FLOP/B)",
        dev.name, ridge
    );
    println!("{}", table.render());
    println!(
        "Shape check: throughput collapses once phi falls below the ridge,\n\
         reproducing the compute-bound -> memory-bound transition of Fig. 2."
    );
    write_json(
        "fig2_roofline",
        &serde_json::json!({ "device": dev.name, "ridge_flops_per_byte": ridge, "rows": json_rows }),
    );
}
