//! Fig. 7 — pruning the search space of the running example
//! (GEMM chain, M = N = 1024, K = H = 512) with Rules 1–4.
//!
//! The paper reports 1.09×10⁸ → −80 % → −40 % → −99 % → −40 % → ≈10⁴.
//! Our Rule-1 equivalence is slightly stronger (see DESIGN.md), so the
//! expression counts differ by a small constant while the waterfall shape
//! is preserved.

use mcfuser_bench::{write_json, TextTable};
use mcfuser_core::{prune, SearchSpace};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let chain = ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
    let dev = DeviceSpec::a100();
    let space = SearchSpace::generate(&chain);
    let pruned = prune(&chain, &dev, &space);
    let s = &pruned.stats;

    let pct = |num: u128, den: u128| -> String {
        if den == 0 {
            return "-".into();
        }
        format!("{:+.1}%", (num as f64 / den as f64 - 1.0) * 100.0)
    };

    println!(
        "Fig. 7 — pruning waterfall for {} on {} (paper: 1.09e8 → ~1e4)\n",
        chain.name, dev.name
    );
    let mut t = TextTable::new(&["stage", "#candidates", "Δ vs prev", "#tiling exprs"]);
    t.row(vec![
        "original".into(),
        s.original.to_string(),
        "-".into(),
        s.exprs_original.to_string(),
    ]);
    t.row(vec![
        "+ rule 1 (dedup)".into(),
        s.after_rule1.to_string(),
        pct(s.after_rule1, s.original),
        s.exprs_rule1.to_string(),
    ]);
    t.row(vec![
        "+ rule 2 (partial tiles)".into(),
        s.after_rule2.to_string(),
        pct(s.after_rule2, s.after_rule1),
        s.exprs_rule2.to_string(),
    ]);
    t.row(vec![
        "+ rule 3 (padding)".into(),
        s.after_rule3.to_string(),
        pct(s.after_rule3, s.after_rule2),
        s.exprs_rule2.to_string(),
    ]);
    t.row(vec![
        "+ rule 4 (shared memory)".into(),
        s.after_rule4.to_string(),
        pct(s.after_rule4, s.after_rule3),
        s.exprs_rule2.to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "Total reduction: {:.1e} → {:.1e} ({}x)",
        s.original as f64,
        s.after_rule4 as f64,
        s.original / s.after_rule4.max(1)
    );
    println!(
        "Lazy space: {} candidates reachable by index ({} exprs x {} of {} tile combos; \
         no materialization cap)",
        pruned.len(),
        pruned.exprs.len(),
        pruned.surviving_combos(),
        pruned.grid_combos(),
    );
    println!(
        "Surviving per-block classes: {:?}",
        pruned
            .exprs
            .iter()
            .map(|e| e.display(&chain))
            .collect::<Vec<_>>()
    );

    write_json(
        "fig7_pruning",
        &serde_json::json!({
            "chain": chain.name,
            "device": dev.name,
            "original": s.original.to_string(),
            "after_rule1": s.after_rule1.to_string(),
            "after_rule2": s.after_rule2.to_string(),
            "after_rule3": s.after_rule3.to_string(),
            "after_rule4": s.after_rule4.to_string(),
            "exprs": [s.exprs_original, s.exprs_rule1, s.exprs_rule2],
        }),
    );
}
