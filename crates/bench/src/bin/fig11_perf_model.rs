//! Fig. 11 — analytical-model estimates vs. simulated measurements for
//! scheduled candidates of workloads G1–G4 (paper correlation
//! coefficients: 0.86, 0.92, 0.84, 0.80).

use rand::prelude::*;

use mcfuser_bench::{fast_mode, pearson, write_json, TextTable};
use mcfuser_core::{estimate, prune, SearchSpace};
use mcfuser_sim::{measure_noisy, DeviceSpec};
use mcfuser_tile::{lower, LoweringOptions};
use mcfuser_workloads::gemm_chain_workload;

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let dev = DeviceSpec::a100();
    let samples = if fast_mode() { 60 } else { 200 };
    let mut rng = StdRng::seed_from_u64(0x000F_1611);

    let mut t = TextTable::new(&["workload", "#candidates", "corr(est, meas)", "top-8 hit"]);
    let mut json_rows = Vec::new();

    for name in ["G1", "G2", "G3", "G4"] {
        let chain = gemm_chain_workload(name).unwrap();
        let space = SearchSpace::generate(&chain);
        let pruned = prune(&chain, &dev, &space);
        let mut ests = Vec::new();
        let mut meas = Vec::new();
        let mut tried = 0;
        while ests.len() < samples && tried < samples * 10 {
            tried += 1;
            let cand = pruned.candidate(rng.gen_range(0..pruned.len()));
            let Ok(e) = estimate(&chain, &cand, &dev) else {
                continue;
            };
            let Ok(lk) = lower(&chain, &cand, &LoweringOptions::for_device(&dev)) else {
                continue;
            };
            if lk.smem_bytes > dev.smem_per_block {
                continue;
            }
            let prof = measure_noisy(&lk.program, &dev, ests.len() as u64);
            ests.push(e.total);
            meas.push(prof.time);
        }
        let r = pearson(&ests, &meas);
        // Does the model's top-8 contain the measured best candidate?
        let top8_hit = {
            let mut by_est: Vec<usize> = (0..ests.len()).collect();
            by_est.sort_by(|&a, &b| ests[a].total_cmp(&ests[b]));
            let best_meas = (0..meas.len())
                .min_by(|&a, &b| meas[a].total_cmp(&meas[b]))
                .unwrap();
            by_est[..8.min(by_est.len())].contains(&best_meas)
        };
        t.row(vec![
            name.to_string(),
            ests.len().to_string(),
            format!("{r:.3}"),
            if top8_hit { "yes" } else { "no" }.into(),
        ]);
        json_rows.push(serde_json::json!({
            "workload": name,
            "n": ests.len(),
            "pearson": r,
            "top8_contains_best": top8_hit,
            "estimated_s": ests,
            "measured_s": meas,
        }));
    }

    println!(
        "Fig. 11 — analytical model (Eqs. 2-5) vs. measurement on {}\n",
        dev.name
    );
    println!("{}", t.render());
    println!("Paper correlations: G1 0.86, G2 0.92, G3 0.84, G4 0.80.");
    write_json(
        "fig11_perf_model",
        &serde_json::json!({ "rows": json_rows }),
    );
}
