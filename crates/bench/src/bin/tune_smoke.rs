//! Batched-tuning smoke test: tune the 8 MBCI chains of a 4-layer mini
//! BERT (4 attention + 4 FFN) three ways and time them —
//!
//! * **cold**: schedule cache off, space cache off — every chain pays
//!   its own Rule-4 scan plus a full search (the pre-space-cache
//!   worst case);
//! * **shared-space**: schedule cache still off, space cache on — the
//!   8 chains collapse onto 2 content-distinct candidate spaces (one
//!   scan per *shape*), searches unchanged;
//! * **batched**: the production `tune_many` path with the schedule
//!   cache on — identical chains additionally dedup to one search per
//!   shape.
//!
//! Asserts the invariants CI cares about: the shared-space engine
//! performs exactly one scan per distinct shape (probe-counted), its
//! results are bit-identical to the cold per-chain builds, and the
//! batched path agrees too. Writes `results/tune_smoke.json`.
//!
//! ```sh
//! cargo run --release -p mcfuser-bench --bin tune_smoke
//! ```

use std::time::Instant;

use mcfuser_core::{CachePolicy, FusionEngine, TunedKernel};
use mcfuser_ir::{partition, ChainSpec};
use mcfuser_sim::DeviceSpec;
use mcfuser_workloads::{bert_graph, BertConfig};

fn main() {
    let device = DeviceSpec::a100();
    let bert = bert_graph(
        "bert-mini-4l",
        &BertConfig {
            layers: 4,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    let part = partition(&bert, &device);
    let chains: Vec<ChainSpec> = part.chains.iter().map(|fc| fc.chain.clone()).collect();
    assert_eq!(
        chains.len(),
        8,
        "4 BERT layers should partition into 8 MBCI chains"
    );
    let fingerprints: Vec<String> = chains
        .iter()
        .map(|c| mcfuser_core::space_fingerprint(c, &device, &Default::default()))
        .collect();
    // First chain index of each distinct shape, in batch order.
    let first_of_shape: Vec<usize> = fingerprints
        .iter()
        .enumerate()
        .filter(|(i, fp)| fingerprints[..*i].iter().all(|f| f != *fp))
        .map(|(i, _)| i)
        .collect();
    let shapes = first_of_shape.len();
    println!(
        "tuning {} BERT-layer chains ({} distinct shapes) on {}",
        chains.len(),
        shapes,
        device.name
    );

    // --- cold: per-chain scans, per-chain searches ----------------------
    let cold_engine = FusionEngine::builder(device.clone())
        .cache(CachePolicy::Disabled)
        .space_cache(false)
        .build();
    let cold_start = Instant::now();
    let cold: Vec<TunedKernel> = chains
        .iter()
        .map(|c| cold_engine.tune(c).expect("cold tune"))
        .collect();
    let cold_wall = cold_start.elapsed().as_secs_f64();
    assert_eq!(
        cold_engine.stats().space_builds,
        chains.len() as u64,
        "cold tuning pays one Rule-4 scan per chain"
    );

    // --- shared-space: one scan per shape, searches unchanged -----------
    let shared_engine = FusionEngine::builder(device.clone())
        .cache(CachePolicy::Disabled)
        .build();
    let shared_start = Instant::now();
    let shared: Vec<TunedKernel> = chains
        .iter()
        .map(|c| shared_engine.tune(c).expect("shared tune"))
        .collect();
    let shared_wall = shared_start.elapsed().as_secs_f64();
    let shared_stats = shared_engine.stats();
    assert_eq!(
        shared_stats.space_builds, shapes as u64,
        "the space cache must collapse same-shaped chains onto one scan"
    );
    assert_eq!(
        shared_stats.space_cache_hits,
        (chains.len() - shapes) as u64
    );
    for (a, b) in cold.iter().zip(&shared) {
        assert_eq!(a.candidate, b.candidate, "shared-space winner diverged");
        assert_eq!(a.profile.time, b.profile.time);
    }

    // --- batched: tune_many with the schedule cache on -------------------
    let batch_engine = FusionEngine::builder(device.clone()).build();
    let batch_start = Instant::now();
    let batched: Vec<TunedKernel> = batch_engine
        .tune_many(&chains)
        .into_iter()
        .map(|r| r.expect("batched tune"))
        .collect();
    let batch_wall = batch_start.elapsed().as_secs_f64();
    let batch_stats = batch_engine.stats();
    assert_eq!(batch_stats.space_builds, shapes as u64);
    assert_eq!(
        batch_stats.cache_misses, shapes as u64,
        "identical chains dedup to one search per shape"
    );
    // tune_many dedups same-content chains onto the first occurrence's
    // kernel (the measured noise is seeded per chain name, so only the
    // first of each shape has a per-chain reference to compare against).
    for (i, fp) in fingerprints.iter().enumerate() {
        let first = first_of_shape
            .iter()
            .copied()
            .find(|&j| &fingerprints[j] == fp)
            .unwrap();
        assert_eq!(
            batched[i].candidate, batched[first].candidate,
            "same-shape chains must share the deduplicated kernel"
        );
    }
    for &i in &first_of_shape {
        assert_eq!(
            batched[i].candidate, cold[i].candidate,
            "batched winner diverged from the per-chain build"
        );
    }

    println!(
        "  cold         : {cold_wall:>7.2} s  ({} scans, {} searches)",
        chains.len(),
        chains.len()
    );
    println!(
        "  shared-space : {shared_wall:>7.2} s  ({} scans, {} searches, {} space hits, \
         decode cache {} hits / {} misses)",
        shared_stats.space_builds,
        shared_stats.cache_misses,
        shared_stats.space_cache_hits,
        shared_stats.decode_cache_hits,
        shared_stats.decode_cache_misses,
    );
    println!(
        "  batched      : {batch_wall:>7.2} s  ({} scans, {} searches)",
        batch_stats.space_builds, batch_stats.cache_misses
    );
    println!(
        "  shared-space saves {:.0}% of cold wall time; batched {:.0}%",
        100.0 * (1.0 - shared_wall / cold_wall),
        100.0 * (1.0 - batch_wall / cold_wall)
    );
    // Bounded-LRU eviction counters: this workload fits both caches, so
    // the counters must exist and stay at zero — a nonzero value here
    // means the capacity clamps regressed.
    println!(
        "  evictions    : space {} / tuning cache {}",
        shared_stats.space_evictions, shared_stats.tuning_cache_evictions
    );
    assert_eq!(
        (
            shared_stats.space_evictions,
            shared_stats.tuning_cache_evictions
        ),
        (0, 0),
        "this workload fits the bounded caches; evictions mean the LRU capacity regressed"
    );

    mcfuser_bench::write_json(
        "tune_smoke",
        &serde_json::json!({
            "chains": chains.len(),
            "distinct_shapes": shapes,
            "cold_wall_seconds": cold_wall,
            "shared_space_wall_seconds": shared_wall,
            "batched_wall_seconds": batch_wall,
            "cold_scans": chains.len(),
            "shared_space_scans": shared_stats.space_builds,
            "shared_space_hits": shared_stats.space_cache_hits,
            "shared_space_decode_hits": shared_stats.decode_cache_hits,
            "shared_space_decode_misses": shared_stats.decode_cache_misses,
            "batched_searches": batch_stats.cache_misses,
            "batched_decode_hits": batch_stats.decode_cache_hits,
            "batched_decode_misses": batch_stats.decode_cache_misses,
            "space_evictions": shared_stats.space_evictions,
            "tuning_cache_evictions": shared_stats.tuning_cache_evictions,
            "speedup_shared_vs_cold": cold_wall / shared_wall,
            "speedup_batched_vs_cold": cold_wall / batch_wall,
        }),
    );
    println!("OK — tune_smoke invariants hold.");
}
