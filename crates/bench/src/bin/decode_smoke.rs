//! Autoregressive decoder-serving smoke test: drive a GPT-style mini
//! decoder (4 layers, GEMV-shaped decode chains) end to end through
//! [`DecodeServing`] / [`mcfuser_core::DecodeSession`] — prefill plus 40
//! teacher-forced
//! decode steps, crossing a sequence-length bucket boundary midway.
//!
//! Asserts the invariants CI cares about:
//!
//! * the decode-step plan fuses both the KV-cache attention and the FFN
//!   chain of every layer (nonzero fused-step count);
//! * the fused step is **bit-identical** to the pure reference lane on
//!   both execution backends;
//! * width-4 batched decode (four sessions stepping in lockstep through
//!   the coalescing queue) is bit-identical to width-1 serial decode
//!   and spends strictly less virtual device time per token;
//! * per-step latency reservoirs (virtual and wall clock) are populated.
//!
//! Prints tokens/s and per-step p50/p95 on both clocks, and writes the
//! report to `results/decode_smoke.json`.
//!
//! ```sh
//! MCFUSER_EXEC_BACKEND=vectorized cargo run --release -p mcfuser-bench --bin decode_smoke
//! ```

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mcfuser_baselines::Relay;
use mcfuser_core::{
    BatchPolicy, DecodeServing, DecodeSpec, FusionEngine, ModelRuntime, RunOptions, RuntimeStats,
};
use mcfuser_ir::{decode_mask, evaluate, scatter_onehot};
use mcfuser_sim::{DeviceSpec, ExecBackend, HostTensor};
use mcfuser_workloads::{decoder_forward_graph, decoder_step_graph, DecoderConfig};

const PROMPT: u64 = 8;
const STEPS: u64 = 40;
const WIDTH: usize = 4;
const BUCKETS: [u64; 2] = [16, 64];
const SEED: u64 = 5;

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 23) as f32 - 11.0) / 23.0)
            .collect(),
    )
}

fn spec(cfg: &DecoderConfig) -> DecodeSpec {
    DecodeSpec {
        model: "gpt-mini".into(),
        layers: cfg.layers,
        hidden: cfg.hidden,
        heads: cfg.heads,
        kv_heads: cfg.kv_heads,
        buckets: BUCKETS.to_vec(),
    }
}

fn serving(engine: &FusionEngine, cfg: &DecoderConfig, policy: BatchPolicy) -> Arc<DecodeServing> {
    let runtime = Arc::new(ModelRuntime::with_batch_policy(policy));
    let (c1, c2) = (*cfg, *cfg);
    DecodeServing::compile(
        engine,
        runtime,
        spec(cfg),
        move |t_b| decoder_step_graph("gpt-mini", &c1, t_b),
        move |t| decoder_forward_graph("gpt-mini", &c2, t),
    )
    .expect("decoder compiles")
}

/// Teacher-forced token stream for one session: prompt rows then step
/// rows, all from one deterministic ramp sequence.
fn token_rows(cfg: &DecoderConfig, phase: u64) -> (HostTensor, Vec<HostTensor>) {
    let x = ramp(&[PROMPT + STEPS, cfg.hidden], phase);
    let prompt = HostTensor::from_vec(
        &[PROMPT, cfg.hidden],
        x.data[..(PROMPT * cfg.hidden) as usize].to_vec(),
    );
    let rows = (PROMPT..PROMPT + STEPS)
        .map(|p| {
            HostTensor::from_vec(
                &[1, cfg.hidden],
                x.data[(p * cfg.hidden) as usize..((p + 1) * cfg.hidden) as usize].to_vec(),
            )
        })
        .collect();
    (prompt, rows)
}

/// The fused decode step must be bit-identical to the pure reference
/// lane, per backend. Returns the plan's fused-step count.
fn assert_step_bit_identity(engine: &FusionEngine, cfg: &DecoderConfig) -> usize {
    let t_b = BUCKETS[0];
    let g = decoder_step_graph("gpt-mini", cfg, t_b);
    let plan = engine.compile_plan(&g).expect("step plan compiles");
    let breakdown = plan.step_breakdown();
    assert!(
        breakdown.fused_steps >= 2 * cfg.layers as usize,
        "attention + FFN must fuse per layer, got {} fused steps",
        breakdown.fused_steps
    );
    for pos in [0u64, 7, 15] {
        let mut named: Vec<(String, HostTensor)> = vec![
            ("x".into(), ramp(&[1, cfg.hidden], pos)),
            ("mask".into(), decode_mask(cfg.heads, t_b, pos)),
            ("onehot".into(), scatter_onehot(cfg.kv_heads, t_b, pos)),
        ];
        for l in 0..cfg.layers {
            let shape = [cfg.kv_heads, t_b, cfg.head_dim()];
            named.push((format!("l{l}.k_cache"), ramp(&shape, pos + 3 * l as u64)));
            named.push((format!("l{l}.v_cache"), ramp(&shape, pos + 5 * l as u64)));
        }
        let mut by_node = rustc_hash_map();
        let mut inputs = mcfuser_core::InputSet::new();
        for (name, t) in &named {
            by_node.insert(g.input_named(name).expect("input"), t.clone());
            inputs.insert(name.clone(), t.clone());
        }
        let vals = evaluate(&g, &by_node, SEED).expect("reference lane");
        for backend in [ExecBackend::Interpreter, ExecBackend::Vectorized] {
            let got = plan
                .execute(&inputs, RunOptions::seeded(SEED).with_backend(backend))
                .expect("fused step");
            for (o, (name, tensor)) in g.outputs.iter().zip(got.iter()) {
                assert_eq!(
                    tensor.data, vals[o.0].data,
                    "fused output {name} diverged from the reference lane ({backend}, pos {pos})"
                );
            }
        }
    }
    breakdown.fused_steps
}

fn rustc_hash_map() -> rustc_hash::FxHashMap<mcfuser_ir::NodeId, HostTensor> {
    rustc_hash::FxHashMap::default()
}

/// Per-token virtual/wall summary over every step-plan bucket.
fn step_summary(stats: &RuntimeStats) -> (u64, f64, f64, Vec<serde_json::Value>) {
    let mut tokens = 0u64;
    let mut virtual_busy = 0.0f64;
    let mut wall_busy = 0.0f64;
    let mut plans = Vec::new();
    for p in stats.plans.iter().filter(|p| p.model.contains("@step")) {
        tokens += p.requests;
        virtual_busy += p.virtual_busy;
        wall_busy += p.wall_busy;
        assert!(
            p.p95_latency >= p.p50_latency && p.p50_latency > 0.0,
            "virtual latency reservoir must be populated for {}",
            p.model
        );
        assert!(
            p.wall_p95_latency >= p.wall_p50_latency && p.wall_p50_latency > 0.0,
            "wall latency reservoir must be populated for {}",
            p.model
        );
        println!(
            "  {:>16}: {:>3} steps, virtual p50 {:.1} us / p95 {:.1} us, \
             wall p50 {:.1} us / p95 {:.1} us, {} fused steps",
            p.model,
            p.requests,
            p.p50_latency * 1e6,
            p.p95_latency * 1e6,
            p.wall_p50_latency * 1e6,
            p.wall_p95_latency * 1e6,
            p.fused_steps,
        );
        plans.push(serde_json::json!({
            "model": p.model,
            "steps": p.requests,
            "p50_latency_s": p.p50_latency,
            "p95_latency_s": p.p95_latency,
            "wall_p50_latency_s": p.wall_p50_latency,
            "wall_p95_latency_s": p.wall_p95_latency,
            "virtual_busy_s": p.virtual_busy,
            "fused_steps": p.fused_steps,
        }));
    }
    (tokens, virtual_busy, wall_busy, plans)
}

fn main() {
    let device = DeviceSpec::a100();
    let backend = ExecBackend::from_env().unwrap_or_default();
    println!("decode backend: {backend}");
    let engine = FusionEngine::builder(device)
        .fallback(Relay::new())
        .parallelism(0)
        .exec_backend(backend)
        .build();
    let cfg = DecoderConfig::gpt_mini();
    assert!(cfg.layers >= 4, "smoke decoder must be at least 4 layers");

    let compile_start = Instant::now();
    let fused_steps = assert_step_bit_identity(&engine, &cfg);
    println!(
        "fused decode step: {} fused kernels per step, bit-identical to the reference lane on both backends",
        fused_steps
    );

    // Width-1: one session decoding alone; launches never widen.
    let serial = serving(
        &engine,
        &cfg,
        BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_cap: 64,
        },
    );
    // Width-4: four sessions stepping in lockstep through the queue.
    let batched = serving(
        &engine,
        &cfg,
        BatchPolicy {
            max_batch: WIDTH,
            max_wait: Duration::from_millis(100),
            queue_cap: 256,
        },
    );
    println!(
        "compiled {} plans in {:.1} s wall",
        2 * 2 * BUCKETS.len(),
        compile_start.elapsed().as_secs_f64()
    );

    // ---- Width-1 serial decode ----------------------------------------
    let (prompt, rows) = token_rows(&cfg, 1);
    let decode_start = Instant::now();
    let mut session = serial.open(RunOptions::seeded(SEED));
    session.prefill(&prompt).expect("prefill");
    let mut serial_logits = Vec::with_capacity(rows.len());
    for row in &rows {
        serial_logits.push(session.step(row).expect("step").data);
    }
    let serial_wall = decode_start.elapsed().as_secs_f64();
    assert_eq!(session.pos(), PROMPT + STEPS);
    assert_eq!(
        session.capacity(),
        BUCKETS[1],
        "decoding past bucket 0 must migrate the KV cache"
    );
    drop(session);
    println!("\n[width-1] prefill {PROMPT} + {STEPS} steps in {serial_wall:.2} s wall");
    let serial_stats = serial.runtime().stats();
    let (serial_tokens, serial_virtual, _, serial_plans) = step_summary(&serial_stats);
    assert_eq!(serial_tokens, STEPS);
    let serial_per_token = serial_virtual / serial_tokens as f64;

    // ---- Width-4 lockstep decode --------------------------------------
    let batch_start = Instant::now();
    let barrier = Arc::new(Barrier::new(WIDTH));
    let lane0_logits = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WIDTH)
            .map(|lane| {
                let serving = batched.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    // Lane 0 replays the serial token stream; other lanes
                    // decode their own streams so scatter bugs can't hide.
                    let (prompt, rows) = token_rows(&cfg, 1 + 9 * lane as u64);
                    let mut session = serving.open(RunOptions::seeded(SEED));
                    session.prefill(&prompt).expect("prefill");
                    let mut logits = Vec::with_capacity(rows.len());
                    for row in &rows {
                        barrier.wait();
                        logits.push(session.step(row).expect("step").data);
                    }
                    logits
                })
            })
            .collect();
        let mut lanes: Vec<Vec<Vec<f32>>> = handles
            .into_iter()
            .map(|h| h.join().expect("decode lane"))
            .collect();
        lanes.swap_remove(0)
    });
    let batched_wall = batch_start.elapsed().as_secs_f64();
    println!(
        "\n[width-{WIDTH}] {} lockstep sessions x {STEPS} steps in {batched_wall:.2} s wall",
        WIDTH
    );
    let batched_stats = batched.runtime().stats();
    let (batched_tokens, batched_virtual, _, batched_plans) = step_summary(&batched_stats);
    assert_eq!(batched_tokens, WIDTH as u64 * STEPS);
    let batched_per_token = batched_virtual / batched_tokens as f64;

    // The coalesced path is bit-identical to serial decode...
    assert_eq!(
        lane0_logits, serial_logits,
        "coalesced decode must match width-1 decode bit for bit"
    );
    // ...actually coalesced...
    let widened: u64 = batched_stats
        .batch_sizes
        .iter()
        .filter(|(w, _)| *w > 1)
        .map(|(_, n)| n)
        .sum();
    println!("  batch widths: {:?}", batched_stats.batch_sizes);
    assert!(widened > 0, "lockstep decode steps must coalesce");
    // ...and cheaper per token on the virtual clock.
    println!(
        "\nper-token virtual time: width-1 {:.2} us, width-{WIDTH} {:.2} us ({:.2}x)",
        serial_per_token * 1e6,
        batched_per_token * 1e6,
        serial_per_token / batched_per_token,
    );
    assert!(
        batched_per_token < serial_per_token,
        "width-{WIDTH} decode must spend less virtual time per token \
         ({batched_per_token:.3e} !< {serial_per_token:.3e})"
    );

    let tokens_per_s_wall = (PROMPT + STEPS) as f64 / serial_wall;
    let tokens_per_s_virtual = serial_tokens as f64 / serial_virtual;
    println!(
        "\nwidth-1 decode: {tokens_per_s_wall:.0} tokens/s wall (prefill amortized), \
         {tokens_per_s_virtual:.0} tokens/s virtual"
    );

    let config_report = serde_json::json!({
        "layers": cfg.layers,
        "hidden": cfg.hidden,
        "heads": cfg.heads,
        "kv_heads": cfg.kv_heads,
        "buckets": BUCKETS.to_vec(),
        "prompt": PROMPT,
        "steps": STEPS,
    });
    let serial_report = serde_json::json!({
        "wall_seconds": serial_wall,
        "tokens_per_s_wall": tokens_per_s_wall,
        "tokens_per_s_virtual": tokens_per_s_virtual,
        "per_token_virtual_s": serial_per_token,
        "plans": serial_plans,
    });
    let batched_report = serde_json::json!({
        "width": WIDTH,
        "wall_seconds": batched_wall,
        "per_token_virtual_s": batched_per_token,
        "widened_launches": widened,
        "batch_sizes": batched_stats
            .batch_sizes
            .iter()
            .map(|&(w, n)| vec![w as u64, n])
            .collect::<Vec<_>>(),
        "plans": batched_plans,
    });
    mcfuser_bench::write_json(
        "decode_smoke",
        &serde_json::json!({
            "backend": backend.to_string(),
            "config": config_report,
            "fused_steps_per_decode": fused_steps,
            "serial": serial_report,
            "batched": batched_report,
            "virtual_speedup_per_token": serial_per_token / batched_per_token,
        }),
    );
    for s in [serial, batched] {
        s.runtime().shutdown().expect("caches flush cleanly");
    }
    println!("OK — decode_smoke invariants hold.");
}
