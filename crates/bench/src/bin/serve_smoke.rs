//! Serving-throughput smoke test: compile two models through one
//! `FusionEngine` session, freeze them into `ExecutablePlan`s, and push
//! the same 48-request workload through a `ModelRuntime` twice — once
//! request-at-a-time via [`ModelRuntime::infer`], once through the
//! continuous-batching admission queue via [`ModelRuntime::submit`].
//!
//! Prints wall-clock and virtual-clock throughput for both modes plus
//! p50/p95 per-request latency (virtual device clock, including
//! queueing delay in batched mode), and asserts the invariants CI
//! cares about: nonzero tuning-cache reuse at compile time, every
//! request served and counted, bit-identical outputs per
//! `(model, seed)` in both modes, a non-degenerate batched latency
//! distribution (p50 < p95), and at least 2x virtual-clock throughput
//! from coalescing same-plan requests into widened fused launches.
//!
//! The reference runtime that produces the expected outputs is pinned
//! to the interpreter oracle ([`ExecBackend::Interpreter`]), while the
//! serial and batched runtimes run whatever `MCFUSER_EXEC_BACKEND`
//! selects (vectorized by default) — so every output equality assert
//! doubles as a cross-backend bit-identity check. A final in-process
//! shootout times the same request mix on both backends explicitly and
//! asserts the vectorized kernels deliver at least 3x the wall-clock
//! request rate of the interpreter.
//!
//! ```sh
//! cargo run --release -p mcfuser-bench --bin serve_smoke
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use mcfuser_baselines::Relay;
use mcfuser_core::{
    BatchPolicy, BatchedPlan, FusionEngine, InputSet, ModelRuntime, RunOptions, RuntimeStats,
};
use mcfuser_ir::GraphBuilder;
use mcfuser_sim::{DType, DeviceSpec, ExecBackend, HostTensor};
use mcfuser_workloads::{bert_graph, BertConfig};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 6;
/// The models the 48-request workload serves. Both are dominated by
/// fused kernels, so widened launches cover most of each request —
/// the regime continuous batching is built for. (`bert-mini` is
/// compiled and registered too, but stays out of the throughput
/// comparison: most of its steps fall back to per-request reference
/// evaluation, which batching passes through serially by design.)
const MODELS: [&str; 2] = ["attn", "mlp"];

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 29) as f32 - 14.0) / 29.0)
            .collect(),
    )
}

/// Drive the 48-request workload through one runtime and return the
/// wall seconds it took. The first four waves are aligned
/// (`model = r % 2`, `seed = r % 4`) so all eight threads hit the same
/// `(model, seed)` pair — the coalescing opportunity the batched mode
/// is supposed to exploit. The final wave per model splits 4/4 across
/// two seeds: the two half-width batches serialize on the model's
/// virtual frontier, so one of them queues behind the other — real
/// queueing delay that must surface in the p95 latency tail.
fn run_workload(
    runtime: &Arc<ModelRuntime>,
    inputs: &[InputSet],
    expected: &[Vec<Vec<f32>>],
    batched: bool,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = runtime.clone();
            scope.spawn(move || {
                for r in 0..REQUESTS_PER_THREAD {
                    let m = r % MODELS.len();
                    let s = if r < 4 {
                        (r % 4) as u64
                    } else {
                        (t % 2) as u64
                    };
                    let opts = RunOptions::seeded(s);
                    let out = if batched {
                        runtime.submit(MODELS[m], inputs[m].clone(), opts)
                    } else {
                        runtime.infer(MODELS[m], &inputs[m], opts)
                    }
                    .expect("request served");
                    assert_eq!(
                        out.primary().data,
                        expected[m][s as usize],
                        "non-deterministic output under concurrency"
                    );
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Per-mode summary: wall throughput, virtual-clock throughput
/// (requests per virtual device second actually occupied), and the
/// per-plan latency report. Panics on the per-mode invariants.
fn summarize(mode: &str, stats: &RuntimeStats, wall: f64, issued: u64) -> serde_json::Value {
    assert_eq!(stats.requests, issued, "every {mode} request counted");
    assert_eq!(stats.failed, 0, "no {mode} request failed");
    assert_eq!(stats.queue_depth, 0, "the {mode} queue drained");
    let virtual_busy: f64 = stats.plans.iter().map(|p| p.virtual_busy).sum();
    let virtual_rps = issued as f64 / virtual_busy;
    println!(
        "\n[{mode}] {issued} requests in {wall:.2} s wall ({:.0} req/s wall, {:.0} req/s virtual)",
        issued as f64 / wall,
        virtual_rps,
    );
    let mut plans = Vec::new();
    for p in &stats.plans {
        println!(
            "  {:>9}: {} requests, p50 {:.1} us, p95 {:.1} us, {:.2} MB moved, busy {:.1} us, \
             {} fused / {} reference steps ({} elementwise), {:.2}/{:.2} MB per request, \
             wall p50 {:.1} us, wall p95 {:.1} us",
            p.model,
            p.requests,
            p.p50_latency * 1e6,
            p.p95_latency * 1e6,
            p.bytes_moved / 1e6,
            p.virtual_busy * 1e6,
            p.fused_steps,
            p.reference_steps,
            p.reference_elementwise,
            p.fused_bytes_per_request / 1e6,
            p.reference_bytes_per_request / 1e6,
            p.wall_p50_latency * 1e6,
            p.wall_p95_latency * 1e6,
        );
        assert!(p.p95_latency >= p.p50_latency && p.p50_latency > 0.0);
        assert!(
            p.wall_p95_latency >= p.wall_p50_latency && p.wall_p50_latency > 0.0,
            "wall-clock reservoir must be populated for {}",
            p.model
        );
        plans.push(serde_json::json!({
            "model": p.model,
            "requests": p.requests,
            "p50_latency_s": p.p50_latency,
            "p95_latency_s": p.p95_latency,
            "wall_p50_latency_s": p.wall_p50_latency,
            "wall_p95_latency_s": p.wall_p95_latency,
            "wall_busy_s": p.wall_busy,
            "bytes_moved": p.bytes_moved,
            "virtual_busy_s": p.virtual_busy,
            "fused_steps": p.fused_steps,
            "reference_steps": p.reference_steps,
            "reference_elementwise": p.reference_elementwise,
            "fused_bytes_per_request": p.fused_bytes_per_request,
            "reference_bytes_per_request": p.reference_bytes_per_request,
        }));
    }
    serde_json::json!({
        "wall_seconds": wall,
        "req_per_s_wall": issued as f64 / wall,
        "req_per_s_virtual": virtual_rps,
        "virtual_busy_s": virtual_busy,
        "batch_sizes": stats
            .batch_sizes
            .iter()
            .map(|&(w, n)| vec![w as u64, n])
            .collect::<Vec<_>>(),
        "rejected": stats.rejected,
        "expired": stats.expired,
        "plans": plans,
    })
}

/// Time the same request mix on both execution backends explicitly
/// (per-request [`RunOptions::with_backend`] overrides, so the
/// engine-level default is irrelevant here) and return the wall
/// seconds `(interpreter, vectorized)`. Every output is also checked
/// against the interpreter-oracle expected values, so this doubles as
/// one more bit-identity sweep. Per (backend, model) only the fastest
/// `ROUNDS / 2` of the `ROUNDS` timed rounds count: scheduling noise
/// on a shared host is strictly additive, so dropping the slow half
/// symmetrically on both backends keeps the reported ratio close to
/// the noise-free one.
fn shootout(
    runtime: &Arc<ModelRuntime>,
    inputs: &[InputSet],
    expected: &[Vec<Vec<f32>>],
) -> (f64, f64) {
    const ROUNDS: usize = 8;
    let mut walls = [0.0f64; 2];
    let mut model_walls = [[0.0f64; MODELS.len()]; 2];
    for (bi, backend) in [ExecBackend::Interpreter, ExecBackend::Vectorized]
        .into_iter()
        .enumerate()
    {
        for (m, set) in MODELS.iter().zip(inputs) {
            // Warm caches (weights, arenas) outside the timed region.
            runtime
                .infer(m, set, RunOptions::seeded(0).with_backend(backend))
                .expect("shootout warm-up");
        }
        let mut round_walls = [[0.0f64; MODELS.len()]; ROUNDS];
        for round_wall in round_walls.iter_mut() {
            for s in 0..4u64 {
                for (mi, (m, set)) in MODELS.iter().zip(inputs).enumerate() {
                    let start = Instant::now();
                    let out = runtime
                        .infer(m, set, RunOptions::seeded(s).with_backend(backend))
                        .expect("shootout request");
                    round_wall[mi] += start.elapsed().as_secs_f64();
                    assert_eq!(
                        out.primary().data,
                        expected[mi][s as usize],
                        "backend {backend} diverged from the interpreter oracle"
                    );
                }
            }
        }
        for mi in 0..MODELS.len() {
            let mut rounds: Vec<f64> = round_walls.iter().map(|r| r[mi]).collect();
            rounds.sort_by(|a, b| a.total_cmp(b));
            model_walls[bi][mi] = rounds[..ROUNDS / 2].iter().sum();
        }
        walls[bi] = model_walls[bi].iter().sum();
    }
    for (mi, m) in MODELS.iter().enumerate() {
        println!(
            "  shootout {:>9}: interpreter {:.1} ms, vectorized {:.1} ms ({:.2}x)",
            m,
            model_walls[0][mi] * 1e3,
            model_walls[1][mi] * 1e3,
            model_walls[0][mi] / model_walls[1][mi],
        );
    }
    (walls[0], walls[1])
}

fn main() {
    let device = DeviceSpec::a100();
    let backend = ExecBackend::from_env().unwrap_or_default();
    println!("serving backend: {backend} (reference oracle stays on the interpreter)");
    let engine = FusionEngine::builder(device)
        .fallback(Relay::new())
        .parallelism(0)
        .exec_backend(backend)
        .build();

    // Model 1: a 2-layer mini BERT — its identical layers force
    // tuning-cache reuse inside one compile.
    let bert = bert_graph(
        "bert-mini",
        &BertConfig {
            layers: 2,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    // Model 2: a self-attention block (activation-only fused chain).
    let attn = {
        let mut gb = GraphBuilder::new("attn", DType::F16);
        let q = gb.input("q", vec![2, 64, 32]);
        let k = gb.input("k", vec![2, 64, 32]);
        let v = gb.input("v", vec![2, 64, 32]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
        let o = gb.batch_matmul("pv", p, v, false);
        let ln = gb.layer_norm("ln", o);
        gb.finish(vec![ln])
    };
    // Model 3: a small MLP (weight-bearing fused chain).
    let mlp = {
        let mut gb = GraphBuilder::new("mlp", DType::F16);
        let x = gb.input("x", vec![128, 64]);
        let y = gb.linear("fc1", x, 128, false);
        let z = gb.linear("fc2", y, 64, false);
        gb.finish(vec![z])
    };

    // One runtime per serving mode plus a reference runtime that only
    // produces the expected outputs, all sharing the same frozen plans.
    let compile_start = Instant::now();
    let reference = Arc::new(ModelRuntime::new());
    let serial = Arc::new(ModelRuntime::new());
    let batched = Arc::new(ModelRuntime::with_batch_policy(BatchPolicy {
        max_batch: THREADS,
        max_wait: Duration::from_millis(100),
        queue_cap: 256,
    }));
    let mut reused_chains = 0usize;
    for graph in [&bert, &attn, &mlp] {
        let model = engine.compile(graph).expect("compiles");
        // Identical chains (BERT's two layers) tune once and are fanned
        // back out flagged as reuse.
        reused_chains += model.chains.iter().filter(|c| c.cache_hit).count();
        let plan = Arc::new(model.plan(graph).expect("plan freezes"));
        // The reference runtime serves an interpreter-pinned twin of
        // each plan: its outputs are the oracle every serial/batched
        // (vectorized by default) result is bit-compared against.
        let oracle = Arc::new((*plan).clone().with_backend(ExecBackend::Interpreter));
        let probe = BatchedPlan::new(plan.clone());
        let (span4, _) = probe.batch_span(4);
        let breakdown = plan.step_breakdown();
        println!(
            "compiled {:>9}: {} steps, {} fused kernels, {} elementwise reference steps, \
             peak live {}/{} nodes, {:.1} us/request ({:.1} us per request at width 4)",
            graph.name,
            plan.steps().len(),
            plan.fused_kernels(),
            breakdown.reference_elementwise,
            plan.buffer_plan().peak_live(),
            plan.buffer_plan().total_nodes(),
            plan.virtual_time_per_request() * 1e6,
            span4 / 4.0 * 1e6,
        );
        reference.register_arc(graph.name.clone(), oracle);
        for rt in [&serial, &batched] {
            rt.register_arc(graph.name.clone(), plan.clone());
        }
    }
    if let Some(cache) = engine.cache_handle() {
        for rt in [&reference, &serial, &batched] {
            rt.attach_cache(cache.clone());
        }
    }
    // A recompile (rolling restart of a serving replica) is pure cache.
    let recompiled = engine.compile(&bert).expect("recompiles");
    reused_chains += recompiled.chains.iter().filter(|c| c.cache_hit).count();
    let stats = engine.stats();
    println!(
        "compile wall time : {:.1} s ({} reused chains, cache hits {}, misses {})",
        compile_start.elapsed().as_secs_f64(),
        reused_chains,
        stats.cache_hits,
        stats.cache_misses,
    );
    assert!(
        reused_chains > 0 && stats.cache_hits > 0,
        "identical BERT layers / recompiles must reuse the tuning cache"
    );

    // Per-model inputs and serial reference outputs per seed.
    let seeds: Vec<u64> = (0..4).collect();
    let inputs: Vec<InputSet> = MODELS
        .iter()
        .map(|m| {
            let plan = serial.plan(m).expect("registered");
            let mut set = InputSet::new();
            for (i, b) in plan.inputs().iter().enumerate() {
                set.insert(b.name.clone(), ramp(&b.shape, i as u64));
            }
            set
        })
        .collect();
    let expected: Vec<Vec<Vec<f32>>> = MODELS
        .iter()
        .zip(&inputs)
        .map(|(m, set)| {
            seeds
                .iter()
                .map(|&s| {
                    reference
                        .infer(m, set, RunOptions::seeded(s))
                        .expect("reference request")
                        .primary()
                        .data
                        .clone()
                })
                .collect()
        })
        .collect();

    // The same smoke load twice: THREADS x REQUESTS_PER_THREAD
    // interleaved requests, request-at-a-time then coalesced.
    let issued = (THREADS * REQUESTS_PER_THREAD) as u64;
    let serial_wall = run_workload(&serial, &inputs, &expected, false);
    let batched_wall = run_workload(&batched, &inputs, &expected, true);

    let serial_stats = serial.stats();
    let batched_stats = batched.stats();
    let serial_report = summarize("serial", &serial_stats, serial_wall, issued);
    let batched_report = summarize("batched", &batched_stats, batched_wall, issued);

    // Batched mode must have actually coalesced (some launch wider
    // than 1) and its queueing delay must show up in the latency tail.
    let widened: u64 = batched_stats
        .batch_sizes
        .iter()
        .filter(|(w, _)| *w > 1)
        .map(|(_, n)| n)
        .sum();
    let launches: u64 = batched_stats.batch_sizes.iter().map(|(_, n)| n).sum();
    println!(
        "  batch widths: {:?} ({widened}/{launches} launches widened)",
        batched_stats.batch_sizes
    );
    assert!(widened > 0, "the wave-aligned load must coalesce");
    assert!(
        batched_stats
            .plans
            .iter()
            .any(|p| p.p95_latency > p.p50_latency),
        "queueing delay must produce a non-degenerate latency spread"
    );

    // The acceptance bar: the same workload, >= 2x the virtual-clock
    // throughput from amortizing weight traffic and launch overhead.
    let speedup = batched_report["req_per_s_virtual"].as_f64().unwrap()
        / serial_report["req_per_s_virtual"].as_f64().unwrap();
    println!("\nvirtual-clock speedup from batching: {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "continuous batching must at least double virtual throughput, got {speedup:.2}x"
    );

    // Backend shootout: the same request mix on each backend, timed on
    // the host clock. The vectorized blocked kernels must deliver at
    // least 3x the interpreter's wall-clock request rate.
    // The walls cover the fastest 4 of 8 rounds (x 4 seeds x MODELS)
    // per backend inside `shootout`.
    let shootout_requests = (4 * 4 * MODELS.len()) as f64;
    let (interp_wall, vec_wall) = shootout(&serial, &inputs, &expected);
    let wall_speedup = interp_wall / vec_wall;
    println!(
        "\nbackend shootout: interpreter {:.0} req/s, vectorized {:.0} req/s ({wall_speedup:.2}x wall speedup)",
        shootout_requests / interp_wall,
        shootout_requests / vec_wall,
    );
    assert!(
        wall_speedup >= 3.0,
        "vectorized backend must serve at least 3x the interpreter's wall request rate, got {wall_speedup:.2}x"
    );

    let shootout_report = serde_json::json!({
        "interpreter_wall_seconds": interp_wall,
        "vectorized_wall_seconds": vec_wall,
        "interpreter_req_per_s": shootout_requests / interp_wall,
        "vectorized_req_per_s": shootout_requests / vec_wall,
        "wall_speedup": wall_speedup,
    });
    mcfuser_bench::write_json(
        "serve_smoke",
        &serde_json::json!({
            "threads": THREADS,
            "requests": issued,
            "backend": backend.to_string(),
            "cache_hits": engine.stats().cache_hits,
            "serial": serial_report,
            "batched": batched_report,
            "virtual_speedup": speedup,
            "shootout": shootout_report,
        }),
    );
    for rt in [reference, serial, batched] {
        rt.shutdown().expect("caches flush cleanly");
    }
    println!("OK — serve_smoke invariants hold.");
}
