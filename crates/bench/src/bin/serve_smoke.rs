//! Serving-throughput smoke test: compile two models through one
//! `FusionEngine` session, freeze them into `ExecutablePlan`s, and push
//! a batch of concurrent requests through a shared `ModelRuntime`.
//!
//! Prints requests/second (wall clock) and p50/p95 per-request latency
//! (virtual device clock), and asserts the invariants CI cares about:
//! nonzero tuning-cache reuse at compile time, every request served and
//! counted, and bit-identical outputs per `(model, seed)` under
//! concurrency.
//!
//! ```sh
//! cargo run --release -p mcfuser-bench --bin serve_smoke
//! ```

use std::sync::Arc;
use std::time::Instant;

use mcfuser_baselines::Relay;
use mcfuser_core::{FusionEngine, InputSet, ModelRuntime, RunOptions};
use mcfuser_ir::GraphBuilder;
use mcfuser_sim::{DType, DeviceSpec, HostTensor};
use mcfuser_workloads::{bert_graph, BertConfig};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 6;

fn ramp(shape: &[u64], phase: u64) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len)
            .map(|x| (((x + phase) % 29) as f32 - 14.0) / 29.0)
            .collect(),
    )
}

fn main() {
    let device = DeviceSpec::a100();
    let engine = FusionEngine::builder(device)
        .fallback(Relay::new())
        .parallelism(0)
        .build();

    // Model 1: a 2-layer mini BERT — its identical layers force
    // tuning-cache reuse inside one compile.
    let bert = bert_graph(
        "bert-mini",
        &BertConfig {
            layers: 2,
            hidden: 128,
            heads: 4,
            seq: 64,
            intermediate: 512,
        },
    );
    // Model 2: a small MLP.
    let mlp = {
        let mut gb = GraphBuilder::new("mlp", DType::F16);
        let x = gb.input("x", vec![128, 64]);
        let y = gb.linear("fc1", x, 128, false);
        let z = gb.linear("fc2", y, 64, false);
        gb.finish(vec![z])
    };

    let compile_start = Instant::now();
    let runtime = Arc::new(ModelRuntime::new());
    let mut reused_chains = 0usize;
    for graph in [&bert, &mlp] {
        let model = engine.compile(graph).expect("compiles");
        // Identical chains (BERT's two layers) tune once and are fanned
        // back out flagged as reuse.
        reused_chains += model.chains.iter().filter(|c| c.cache_hit).count();
        let plan = model.plan(graph).expect("plan freezes");
        println!(
            "compiled {:>9}: {} steps, {} fused kernels, peak live {}/{} nodes, {:.1} us/request",
            graph.name,
            plan.steps().len(),
            plan.fused_kernels(),
            plan.buffer_plan().peak_live(),
            plan.buffer_plan().total_nodes(),
            plan.virtual_time_per_request() * 1e6,
        );
        runtime.register(graph.name.clone(), plan);
    }
    if let Some(cache) = engine.cache_handle() {
        runtime.attach_cache(cache);
    }
    // A recompile (rolling restart of a serving replica) is pure cache.
    let recompiled = engine.compile(&bert).expect("recompiles");
    reused_chains += recompiled.chains.iter().filter(|c| c.cache_hit).count();
    let stats = engine.stats();
    println!(
        "compile wall time : {:.1} s ({} reused chains, cache hits {}, misses {})",
        compile_start.elapsed().as_secs_f64(),
        reused_chains,
        stats.cache_hits,
        stats.cache_misses,
    );
    assert!(
        reused_chains > 0 && stats.cache_hits > 0,
        "identical BERT layers / recompiles must reuse the tuning cache"
    );

    // Per-model inputs and serial reference outputs per seed.
    let models = ["bert-mini", "mlp"];
    let seeds: Vec<u64> = (0..4).collect();
    let inputs: Vec<InputSet> = models
        .iter()
        .map(|m| {
            let plan = runtime.plan(m).expect("registered");
            let mut set = InputSet::new();
            for (i, b) in plan.inputs().iter().enumerate() {
                set.insert(b.name.clone(), ramp(&b.shape, i as u64));
            }
            set
        })
        .collect();
    let expected: Vec<Vec<Vec<f32>>> = models
        .iter()
        .zip(&inputs)
        .map(|(m, set)| {
            seeds
                .iter()
                .map(|&s| {
                    runtime
                        .infer(m, set, RunOptions::seeded(s))
                        .expect("serial request")
                        .primary()
                        .data
                        .clone()
                })
                .collect()
        })
        .collect();
    let warmup = (models.len() * seeds.len()) as u64;

    // The smoke load: THREADS × REQUESTS_PER_THREAD interleaved requests.
    let serve_start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = runtime.clone();
            let inputs = &inputs;
            let seeds = &seeds;
            let expected = &expected;
            scope.spawn(move || {
                for r in 0..REQUESTS_PER_THREAD {
                    let m = (t + r) % models.len();
                    let s = (t * REQUESTS_PER_THREAD + r) % seeds.len();
                    let out = runtime
                        .infer(models[m], &inputs[m], RunOptions::seeded(seeds[s]))
                        .expect("request served");
                    assert_eq!(
                        out.primary().data,
                        expected[m][s],
                        "non-deterministic output under concurrency"
                    );
                }
            });
        }
    });
    let wall = serve_start.elapsed().as_secs_f64();
    let issued = (THREADS * REQUESTS_PER_THREAD) as u64;

    let stats = runtime.stats();
    assert_eq!(stats.requests, warmup + issued, "every request counted");
    assert_eq!(stats.failed, 0);
    println!(
        "\nserved {issued} concurrent requests in {:.2} s wall ({:.0} req/s)",
        wall,
        issued as f64 / wall
    );
    let mut report = Vec::new();
    for p in &stats.plans {
        println!(
            "  {:>9}: {} requests, p50 {:.1} us, p95 {:.1} us, {:.2} MB moved",
            p.model,
            p.requests,
            p.p50_latency * 1e6,
            p.p95_latency * 1e6,
            p.bytes_moved / 1e6,
        );
        assert!(p.p95_latency >= p.p50_latency && p.p50_latency > 0.0);
        report.push(serde_json::json!({
            "model": p.model,
            "requests": p.requests,
            "p50_latency_s": p.p50_latency,
            "p95_latency_s": p.p95_latency,
            "bytes_moved": p.bytes_moved,
        }));
    }
    mcfuser_bench::write_json(
        "serve_smoke",
        &serde_json::json!({
            "threads": THREADS,
            "requests": issued,
            "wall_seconds": wall,
            "req_per_s": issued as f64 / wall,
            "cache_hits": engine.stats().cache_hits,
            "plans": report,
        }),
    );
    runtime.shutdown().expect("caches flush cleanly");
    println!("OK — serve_smoke invariants hold.");
}
