//! Ablation study — which of MCFuser's design choices buys what
//! (extends the paper's §VI-E "Effectiveness of the System Design").
//!
//! Variants, each differing from full MCFuser in exactly one mechanism:
//!
//! * `full`        — the complete system;
//! * `-flat`       — deep tilings only (Chimera's space restriction);
//! * `-deadloop`   — no §III-B extent-1 DAG elimination (Chimera's
//!                   memory optimization level);
//! * `-compute`    — data-movement-only objective (drop Eq. 4);
//! * `-alpha`      — no parallelism slowdown factor (drop Eq. 5);
//! * `-model`      — random ranking instead of the analytical model
//!                   (measures what the model itself contributes);
//! * `-rule4`      — no shared-memory pruning (Rule 4 off) — shows the
//!                   tuning-cost impact of measuring unlaunchable
//!                   candidates.
//!
//! Reports fused-kernel quality (vs. full MCFuser) and virtual tuning
//! time per variant, averaged over a workload mix.
//!
//! Usage: `ablation [--fast]`

use mcfuser_bench::{fast_mode, fmt_time, geomean, write_json, TextTable};
use mcfuser_core::{heuristic_search, prune, ModelOptions, PrunedSpace, SearchParams, SearchSpace};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::{DeviceSpec, TuningClock};
use mcfuser_tile::enumerate_deep;
use mcfuser_workloads::{attention_workload, gemm_chain_workload};

/// One ablation variant: how to build the space and the search params.
struct Variant {
    name: &'static str,
    deep_only: bool,
    rule4: bool,
    params: SearchParams,
}

fn variants() -> Vec<Variant> {
    let base = SearchParams::default();
    vec![
        Variant {
            name: "full",
            deep_only: false,
            rule4: true,
            params: base.clone(),
        },
        Variant {
            name: "-flat",
            deep_only: true,
            rule4: true,
            params: base.clone(),
        },
        Variant {
            name: "-deadloop",
            deep_only: false,
            rule4: true,
            params: SearchParams {
                dead_loop_elimination: false,
                model: ModelOptions {
                    dead_loop_elimination: false,
                    ..Default::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "-compute",
            deep_only: false,
            rule4: true,
            params: SearchParams {
                model: ModelOptions {
                    include_compute: false,
                    ..Default::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "-alpha",
            deep_only: false,
            rule4: true,
            params: SearchParams {
                model: ModelOptions {
                    include_alpha: false,
                    ..Default::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "-model",
            deep_only: false,
            rule4: true,
            // Random ranking: measure arbitrary candidates instead of the
            // analytical model's top picks.
            params: SearchParams {
                random_ranking: true,
                ..base.clone()
            },
        },
        Variant {
            name: "-rule4",
            deep_only: false,
            rule4: false,
            params: base,
        },
    ]
}

/// Build the (optionally restricted) pruned space for a variant.
fn space_for(chain: &ChainSpec, dev: &DeviceSpec, v: &Variant) -> PrunedSpace {
    let mut space = SearchSpace::generate(chain);
    if v.deep_only {
        space.exprs = enumerate_deep(chain);
    }
    let mut pruned = prune(chain, dev, &space);
    if !v.rule4 {
        // Re-materialize without the shared-memory filter: every rule-3
        // tile combination is admitted.
        let mut cands = Vec::new();
        let mut idx = vec![0usize; pruned.tile_domains.len()];
        'outer: loop {
            let tiles: Vec<u64> = idx
                .iter()
                .enumerate()
                .map(|(a, &i)| pruned.tile_domains[a][i])
                .collect();
            for e in &pruned.exprs {
                cands.push(mcfuser_tile::Candidate::new(e.clone(), tiles.clone()));
            }
            let mut a = 0;
            loop {
                if a == idx.len() {
                    break 'outer;
                }
                idx[a] += 1;
                if idx[a] < pruned.tile_domains[a].len() {
                    break;
                }
                idx[a] = 0;
                a += 1;
            }
            if cands.len() > 150_000 {
                break;
            }
        }
        pruned.candidates = cands;
    }
    pruned
}

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let dev = DeviceSpec::a100();
    let names: Vec<&str> = if fast_mode() {
        vec!["G1", "G4", "S2"]
    } else {
        vec!["G1", "G3", "G4", "G7", "G10", "S1", "S2", "S4", "S7"]
    };
    let chains: Vec<ChainSpec> = names
        .iter()
        .map(|n| {
            gemm_chain_workload(n)
                .or_else(|| attention_workload(n))
                .expect("known workload")
        })
        .collect();

    let vs = variants();
    let mut table = TextTable::new(&[
        "variant",
        "geomean slowdown vs full",
        "avg tuning",
        "avg measured",
        "notes",
    ]);
    let mut json_rows = Vec::new();

    // Reference: full MCFuser per chain.
    let full_times: Vec<f64> = chains
        .iter()
        .map(|c| {
            let clock = TuningClock::new();
            let sp = space_for(c, &dev, &vs[0]);
            heuristic_search(c, &dev, &sp, &vs[0].params, &clock)
                .map(|o| o.best_time)
                .unwrap_or(f64::INFINITY)
        })
        .collect();

    for v in &vs {
        let mut ratios = Vec::new();
        let mut tunings = Vec::new();
        let mut measured = Vec::new();
        for (c, &full_t) in chains.iter().zip(&full_times) {
            let clock = TuningClock::new();
            let sp = space_for(c, &dev, v);
            match heuristic_search(c, &dev, &sp, &v.params, &clock) {
                Some(o) => {
                    ratios.push(o.best_time / full_t);
                    tunings.push(clock.virtual_seconds());
                    measured.push(o.measured as f64);
                }
                None => {
                    ratios.push(f64::INFINITY);
                }
            }
        }
        let slow = geomean(&ratios);
        let tune = tunings.iter().sum::<f64>() / tunings.len().max(1) as f64;
        let meas = measured.iter().sum::<f64>() / measured.len().max(1) as f64;
        let note = match v.name {
            "full" => "baseline",
            "-flat" => "Chimera space restriction",
            "-deadloop" => "Fig. 5(b) optimization off",
            "-compute" => "Chimera objective",
            "-alpha" => "Eq. 5 off",
            "-model" => "degenerate ranking",
            "-rule4" => "measures unlaunchable candidates",
            _ => "",
        };
        table.row(vec![
            v.name.into(),
            format!("{slow:.3}x"),
            fmt_time(tune),
            format!("{meas:.0}"),
            note.into(),
        ]);
        json_rows.push(serde_json::json!({
            "variant": v.name,
            "geomean_slowdown": slow,
            "avg_tuning_s": tune,
            "avg_measured": meas,
        }));
    }

    println!(
        "Ablation — contribution of each design choice ({} workloads on {})\n",
        chains.len(),
        dev.name
    );
    println!("{}", table.render());
    println!(
        "Reading: slowdown > 1 means the ablated variant ships worse kernels;\n\
         higher tuning time at equal quality means the mechanism saves search cost."
    );
    write_json(
        "ablation",
        &serde_json::json!({ "workloads": names, "rows": json_rows }),
    );
}
