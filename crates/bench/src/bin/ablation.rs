//! Ablation study — which of MCFuser's design choices buys what
//! (extends the paper's §VI-E "Effectiveness of the System Design").
//!
//! Variants, each differing from full MCFuser in exactly one mechanism:
//!
//! * `full` — the complete system;
//! * `-flat` — deep tilings only (Chimera's space restriction);
//! * `-deadloop` — no §III-B extent-1 DAG elimination (Chimera's
//!   memory optimization level);
//! * `-compute` — data-movement-only objective (drop Eq. 4);
//! * `-alpha` — no parallelism slowdown factor (drop Eq. 5);
//! * `-model` — random ranking instead of the analytical model
//!   (measures what the model itself contributes);
//! * `-rule4` — no shared-memory pruning (Rule 4 off) — shows the
//!   tuning-cost impact of measuring unlaunchable candidates.
//!
//! Each variant is one `FusionEngine` session configured through the
//! builder's `SearchParams` + `SpacePolicy` knobs; chains are tuned in
//! parallel via `tune_many` (results are deterministic regardless of
//! the parallelism degree).
//!
//! Reports fused-kernel quality (vs. full MCFuser) and virtual tuning
//! time per variant, averaged over a workload mix.
//!
//! Usage: `ablation [--fast]`

use mcfuser_bench::{fast_mode, fmt_time, geomean, write_json, TextTable};
use mcfuser_core::{CachePolicy, FusionEngine, ModelOptions, SearchParams, SpacePolicy};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_workloads::{attention_workload, gemm_chain_workload};

/// One ablation variant: search parameters + space policy.
struct Variant {
    name: &'static str,
    policy: SpacePolicy,
    params: SearchParams,
}

fn variants() -> Vec<Variant> {
    let base = SearchParams::default();
    let full_space = SpacePolicy::default();
    vec![
        Variant {
            name: "full",
            policy: full_space,
            params: base.clone(),
        },
        Variant {
            name: "-flat",
            policy: SpacePolicy {
                deep_tiling_only: true,
                ..full_space
            },
            params: base.clone(),
        },
        Variant {
            name: "-deadloop",
            policy: full_space,
            params: SearchParams {
                dead_loop_elimination: false,
                model: ModelOptions {
                    dead_loop_elimination: false,
                    ..Default::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "-compute",
            policy: full_space,
            params: SearchParams {
                model: ModelOptions {
                    include_compute: false,
                    ..Default::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "-alpha",
            policy: full_space,
            params: SearchParams {
                model: ModelOptions {
                    include_alpha: false,
                    ..Default::default()
                },
                ..base.clone()
            },
        },
        Variant {
            name: "-model",
            policy: full_space,
            // Random ranking: measure arbitrary candidates instead of the
            // analytical model's top picks.
            params: SearchParams {
                random_ranking: true,
                ..base.clone()
            },
        },
        Variant {
            name: "-rule4",
            policy: SpacePolicy {
                shared_memory_pruning: false,
                ..full_space
            },
            params: base,
        },
    ]
}

/// One engine session per variant; tuning every chain costs fresh.
fn engine_for(v: &Variant, dev: &DeviceSpec) -> FusionEngine {
    FusionEngine::builder(dev.clone())
        .search_params(v.params.clone())
        .space_policy(v.policy)
        .cache(CachePolicy::Disabled)
        .parallelism(0)
        .build()
}

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let dev = DeviceSpec::a100();
    let names: Vec<&str> = if fast_mode() {
        vec!["G1", "G4", "S2"]
    } else {
        vec!["G1", "G3", "G4", "G7", "G10", "S1", "S2", "S4", "S7"]
    };
    let chains: Vec<ChainSpec> = names
        .iter()
        .map(|n| {
            gemm_chain_workload(n)
                .or_else(|| attention_workload(n))
                .expect("known workload")
        })
        .collect();

    let vs = variants();
    let mut table = TextTable::new(&[
        "variant",
        "geomean slowdown vs full",
        "avg tuning",
        "avg measured",
        "notes",
    ]);
    let mut json_rows = Vec::new();

    // Reference: full MCFuser per chain.
    let full_times: Vec<f64> = engine_for(&vs[0], &dev)
        .tune_many(&chains)
        .into_iter()
        .map(|r| r.map(|t| t.profile.time).unwrap_or(f64::INFINITY))
        .collect();

    for v in &vs {
        let engine = engine_for(v, &dev);
        let mut ratios = Vec::new();
        let mut tunings = Vec::new();
        let mut measured = Vec::new();
        for (result, &full_t) in engine.tune_many(&chains).into_iter().zip(&full_times) {
            match result {
                Ok(t) => {
                    ratios.push(t.profile.time / full_t);
                    tunings.push(t.tuning.virtual_seconds);
                    measured.push(t.measured as f64);
                }
                Err(_) => {
                    ratios.push(f64::INFINITY);
                }
            }
        }
        let slow = geomean(&ratios);
        let tune = tunings.iter().sum::<f64>() / tunings.len().max(1) as f64;
        let meas = measured.iter().sum::<f64>() / measured.len().max(1) as f64;
        let note = match v.name {
            "full" => "baseline",
            "-flat" => "Chimera space restriction",
            "-deadloop" => "Fig. 5(b) optimization off",
            "-compute" => "Chimera objective",
            "-alpha" => "Eq. 5 off",
            "-model" => "degenerate ranking",
            "-rule4" => "measures unlaunchable candidates",
            _ => "",
        };
        table.row(vec![
            v.name.into(),
            format!("{slow:.3}x"),
            fmt_time(tune),
            format!("{meas:.0}"),
            note.into(),
        ]);
        json_rows.push(serde_json::json!({
            "variant": v.name,
            "geomean_slowdown": slow,
            "avg_tuning_s": tune,
            "avg_measured": meas,
        }));
    }

    println!(
        "Ablation — contribution of each design choice ({} workloads on {})\n",
        chains.len(),
        dev.name
    );
    println!("{}", table.render());
    println!(
        "Reading: slowdown > 1 means the ablated variant ships worse kernels;\n\
         higher tuning time at equal quality means the mechanism saves search cost."
    );
    write_json(
        "ablation",
        &serde_json::json!({ "workloads": names, "rows": json_rows }),
    );
}
