//! Fig. 10 — Eq. 1's shared-memory estimate vs. the shared memory the
//! lowering actually allocates, across scheduled candidates from the
//! Fig. 8 experiments.
//!
//! The plane splits into four quadrants at `y = Shm_max` (actual
//! executability) and `x = 1.2 × Shm_max` (the Rule-4 pruning line):
//!
//! * I  — kept and executable (correct keep),
//! * II — kept but unlaunchable (missed prune, caught at PTX lowering),
//! * III — pruned and unlaunchable (correct prune),
//! * IV — pruned but would have run (false prune).
//!
//! The paper reports I+III > 90 %, II ≈ 8.2 %, IV ≈ 1.2 %.

use rand::prelude::*;

use mcfuser_bench::{fast_mode, write_json, TextTable};
use mcfuser_core::{prune, SearchSpace};
use mcfuser_sim::DeviceSpec;
use mcfuser_tile::{estimate_shmem_bytes, lower, LoweringOptions};
use mcfuser_workloads::{attention_workload, gemm_chain_workload};

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let dev = DeviceSpec::a100();
    let shm_max = dev.smem_per_block as f64;
    let per_workload = if fast_mode() { 120 } else { 400 };
    let mut rng = StdRng::seed_from_u64(0x000F_1610);

    let workloads: Vec<_> = ["G1", "G2", "G3", "G4"]
        .iter()
        .filter_map(|n| gemm_chain_workload(n))
        .chain(attention_workload("S2"))
        .collect();

    let (mut q1, mut q2, mut q3, mut q4) = (0u32, 0u32, 0u32, 0u32);
    let mut points = Vec::new();
    for chain in &workloads {
        let space = SearchSpace::generate(chain);
        // Rules 1–3 applied; Rule 4 deliberately NOT, so the sample spans
        // the pruning boundary.
        let pruned = prune(chain, &dev, &space);
        for _ in 0..per_workload {
            let cand = pruned.sample_rule3(&mut rng);
            let est = estimate_shmem_bytes(chain, &cand) as f64;
            let Ok(lk) = lower(chain, &cand, &LoweringOptions::for_device(&dev)) else {
                continue;
            };
            let actual = lk.smem_bytes as f64;
            let kept = est <= 1.2 * shm_max;
            let runs = actual <= shm_max;
            match (kept, runs) {
                (true, true) => q1 += 1,
                (true, false) => q2 += 1,
                (false, false) => q3 += 1,
                (false, true) => q4 += 1,
            }
            points.push(serde_json::json!({
                "workload": chain.name, "estimated": est, "actual": actual,
            }));
        }
    }
    let total = (q1 + q2 + q3 + q4).max(1) as f64;
    let pct = |q: u32| 100.0 * q as f64 / total;

    println!(
        "Fig. 10 — Eq. 1 estimate vs. lowered shared memory on {} \
         (Shm_max = {} KiB, prune line = 1.2x)\n",
        dev.name,
        dev.smem_per_block / 1024
    );
    let mut t = TextTable::new(&["quadrant", "meaning", "count", "%"]);
    t.row(vec![
        "I".into(),
        "kept & executable".into(),
        q1.to_string(),
        format!("{:.1}", pct(q1)),
    ]);
    t.row(vec![
        "II".into(),
        "kept, unlaunchable".into(),
        q2.to_string(),
        format!("{:.1}", pct(q2)),
    ]);
    t.row(vec![
        "III".into(),
        "pruned & unlaunchable".into(),
        q3.to_string(),
        format!("{:.1}", pct(q3)),
    ]);
    t.row(vec![
        "IV".into(),
        "pruned, would run".into(),
        q4.to_string(),
        format!("{:.1}", pct(q4)),
    ]);
    println!("{}", t.render());
    let acc = pct(q1) + pct(q3);
    println!("Estimation accuracy (I+III): {acc:.1}% (paper: >90%)");
    println!(
        "Pruned fraction (III+IV): {:.1}% (paper: ~40% of candidates removed by Rule 4)",
        pct(q3) + pct(q4)
    );

    write_json(
        "fig10_shmem",
        &serde_json::json!({
            "device": dev.name,
            "shm_max_bytes": dev.smem_per_block,
            "quadrants": serde_json::json!({ "I": q1, "II": q2, "III": q3, "IV": q4 }),
            "accuracy_pct": acc,
            "points": points,
        }),
    );
}
