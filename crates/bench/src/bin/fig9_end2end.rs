//! Fig. 9 — end-to-end BERT evaluation on the simulated A100.
//!
//! Five configurations, exactly the paper's bars:
//! Relay, BOLT, MCFuser+Relay, Ansor, MCFuser+Ansor — normalized to
//! Relay, with the MCFuser speedup factors annotated.
//!
//! Each MCFuser configuration is a fresh `FusionEngine` session (fresh
//! tuning cache), so tuning costs are comparable across bars.
//!
//! Usage: `fig9_end2end [--fast]` (fast trims models and Ansor trials).

use mcfuser_baselines::{Ansor, Bolt, Relay};
use mcfuser_bench::{fast_mode, fmt_time, unfused_graph_cost, write_json, TextTable};
use mcfuser_core::FusionEngine;
use mcfuser_ir::Graph;
use mcfuser_sim::DeviceSpec;
use mcfuser_workloads::{bert_base, bert_large, bert_small};

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let fast = fast_mode();
    let dev = DeviceSpec::a100();
    let seq = 512;
    let models: Vec<Graph> = if fast {
        vec![bert_small(seq)]
    } else {
        vec![bert_small(seq), bert_base(seq), bert_large(seq)]
    };
    let ansor_trials = if fast { 60 } else { 1000 };

    let mut table = TextTable::new(&[
        "model",
        "Relay",
        "BOLT",
        "MCFuser+Relay",
        "Ansor",
        "MCFuser+Ansor",
        "MCF+Relay vs Relay",
        "MCF+Relay vs Ansor",
        "MCF+Ansor vs Ansor",
    ]);
    let mut stitch_table = TextTable::new(&[
        "model",
        "fused kernels",
        "elementwise ref steps",
        "unstitched MB/req",
        "stitched MB/req",
        "traffic saved",
        "unstitched time",
        "stitched time",
        "time saved",
    ]);
    let mut json_rows = Vec::new();

    for graph in &models {
        // Each configuration gets fresh backends (fresh tuning caches).
        let relay = Relay::new();
        let bolt = Bolt::new();
        let ansor = Ansor::with_trials(ansor_trials);
        let (t_relay, tune_relay) = unfused_graph_cost(graph, &dev, &relay);
        let (t_bolt, tune_bolt) = unfused_graph_cost(graph, &dev, &bolt);
        let (t_ansor, tune_ansor) = unfused_graph_cost(graph, &dev, &ansor);

        let mcf_relay = FusionEngine::builder(dev.clone())
            .fallback(Relay::new())
            .build()
            .compile(graph)
            .expect("compiles");
        let mcf_ansor = FusionEngine::builder(dev.clone())
            .fallback(Ansor::with_trials(ansor_trials))
            .build()
            .compile(graph)
            .expect("compiles");

        // Prologue/epilogue stitching: freeze the stitched plan and an
        // unstitched baseline (same chains, glue on the interpreter) and
        // compare step structure and per-request traffic.
        let stitched_plan = mcf_relay.plan(graph).expect("plan freezes");
        let unstitched_plan = FusionEngine::builder(dev.clone())
            .fallback(Relay::new())
            .stitching(false)
            .build()
            .compile_plan(graph)
            .expect("unstitched plan freezes");
        let sb = stitched_plan.step_breakdown();
        let ub = unstitched_plan.step_breakdown();
        if graph.name == "Bert-Small" {
            // The paper-narrative acceptance bar: every encoder layer is
            // exactly two fused kernels (attention + stitched FFN) with
            // zero elementwise glue left on the reference interpreter.
            assert_eq!(
                stitched_plan.fused_kernels(),
                8,
                "Bert-Small: 2 fused kernels per layer"
            );
            assert_eq!(
                sb.reference_elementwise, 0,
                "Bert-Small: no elementwise Reference steps"
            );
            assert_eq!(mcf_relay.stitch_demotions, 0, "no degraded stitches");
            assert!(
                stitched_plan.bytes_per_request() < unstitched_plan.bytes_per_request(),
                "stitching must save per-request traffic"
            );
            assert!(
                stitched_plan.virtual_time_per_request()
                    < unstitched_plan.virtual_time_per_request(),
                "stitching must save per-request virtual time"
            );
        }
        stitch_table.row(vec![
            graph.name.clone(),
            format!("{}", stitched_plan.fused_kernels()),
            format!(
                "{} -> {}",
                ub.reference_elementwise, sb.reference_elementwise
            ),
            format!("{:.1}", unstitched_plan.bytes_per_request() / 1e6),
            format!("{:.1}", stitched_plan.bytes_per_request() / 1e6),
            format!(
                "{:.1}%",
                (1.0 - stitched_plan.bytes_per_request() / unstitched_plan.bytes_per_request())
                    * 100.0
            ),
            fmt_time(unstitched_plan.virtual_time_per_request()),
            fmt_time(stitched_plan.virtual_time_per_request()),
            format!(
                "{:.1}%",
                (1.0 - stitched_plan.virtual_time_per_request()
                    / unstitched_plan.virtual_time_per_request())
                    * 100.0
            ),
        ]);

        let norm = |t: f64| t_relay / t;
        table.row(vec![
            graph.name.clone(),
            format!("1.00 ({})", fmt_time(t_relay)),
            format!("{:.2}", norm(t_bolt)),
            format!("{:.2}", norm(mcf_relay.total_time)),
            format!("{:.2}", norm(t_ansor)),
            format!("{:.2}", norm(mcf_ansor.total_time)),
            format!("{:.2}x", t_relay / mcf_relay.total_time),
            format!("{:.2}x", t_ansor / mcf_relay.total_time),
            format!("{:.2}x", t_ansor / mcf_ansor.total_time),
        ]);
        let stitched_json = serde_json::json!({
            "fused_steps": sb.fused_steps,
            "reference_steps": sb.reference_steps,
            "reference_elementwise": sb.reference_elementwise,
            "fused_bytes": sb.fused_bytes,
            "reference_bytes": sb.reference_bytes,
            "bytes_per_request": stitched_plan.bytes_per_request(),
            "virtual_time_s": stitched_plan.virtual_time_per_request(),
        });
        let unstitched_json = serde_json::json!({
            "fused_steps": ub.fused_steps,
            "reference_steps": ub.reference_steps,
            "reference_elementwise": ub.reference_elementwise,
            "fused_bytes": ub.fused_bytes,
            "reference_bytes": ub.reference_bytes,
            "bytes_per_request": unstitched_plan.bytes_per_request(),
            "virtual_time_s": unstitched_plan.virtual_time_per_request(),
        });
        let stitching = serde_json::json!({
            "stitch_demotions": mcf_relay.stitch_demotions,
            "stitched": stitched_json,
            "unstitched": unstitched_json,
        });
        let tuning = serde_json::json!({
            "relay_s": tune_relay,
            "bolt_s": tune_bolt,
            "mcfuser_relay_s": mcf_relay.tuning_seconds,
            "ansor_s": tune_ansor,
            "mcfuser_ansor_s": mcf_ansor.tuning_seconds,
        });
        json_rows.push(serde_json::json!({
            "model": graph.name,
            "relay_s": t_relay,
            "bolt_s": t_bolt,
            "mcfuser_relay_s": mcf_relay.total_time,
            "ansor_s": t_ansor,
            "mcfuser_ansor_s": mcf_ansor.total_time,
            "chains_fused": mcf_relay.chains.len(),
            "chain_time_s": mcf_relay.chain_time,
            "tuning": tuning,
            "stitching": stitching,
        }));
    }

    println!(
        "Fig. 9 — end-to-end BERT (seq {seq}) on {} — normalized to Relay\n",
        dev.name
    );
    println!("{}", table.render());
    println!(
        "Paper shape: MCFuser+Relay ≈ 1.45x over Relay, ≈ 1.33x over Ansor;\n\
         MCFuser+Ansor ≈ 1.3-1.5x over Ansor alone."
    );
    println!("\nPrologue/epilogue stitching (stitched vs unstitched plan):\n");
    println!("{}", stitch_table.render());
    write_json(
        "fig9_end2end",
        &serde_json::json!({ "fast": fast, "rows": json_rows }),
    );
}
