//! Fig. 8 — sub-graph performance of batch GEMM chains (Table II) and
//! self-attention modules (Table III) across all backends, normalized to
//! PyTorch, on the simulated A100 and RTX 3080.
//!
//! Usage: `fig8_subgraph [--suite gemm|attention|all] [--device a100|rtx3080|all] [--fast]`

use mcfuser_baselines::{Ansor, Backend, Bolt, Chimera, FlashAttention, McFuserBackend, PyTorch};
use mcfuser_bench::{device_by_name, fast_mode, fmt_time, geomean, write_json, TextTable};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_workloads::{attention_suite, gemm_chain_suite};

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run_suite(
    suite_name: &str,
    chains: &[ChainSpec],
    dev: &DeviceSpec,
    fast: bool,
) -> serde_json::Value {
    let pytorch = PyTorch;
    let ansor = if fast {
        Ansor::with_trials(60)
    } else {
        Ansor::new()
    };
    let bolt = Bolt::new();
    let flash = FlashAttention;
    let chimera = Chimera;
    let mcfuser = McFuserBackend::new();
    let with_flash = suite_name == "attention";

    let mut headers = vec!["workload", "PyTorch", "Ansor", "BOLT"];
    if with_flash {
        headers.push("FlashAttn");
    }
    headers.extend(["MCF-Chimera", "MCFuser", "best sched"]);
    let mut table = TextTable::new(&headers);

    let mut speedups: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut rows_json = Vec::new();

    for chain in chains {
        let base = pytorch.run_chain(chain, dev).expect("pytorch always runs");
        let mut cells = vec![
            chain.name.clone(),
            format!("1.00 ({})", fmt_time(base.time)),
        ];
        let mut row_json = serde_json::json!({
            "workload": chain.name,
            "pytorch_s": base.time,
        });
        let mut note = String::new();
        let backends: Vec<(&str, Result<mcfuser_baselines::ChainRun, _>)> = {
            let mut v: Vec<(&str, Result<mcfuser_baselines::ChainRun, _>)> = vec![
                ("Ansor", ansor.run_chain(chain, dev)),
                ("BOLT", bolt.run_chain(chain, dev)),
            ];
            if with_flash {
                v.push(("FlashAttention", flash.run_chain(chain, dev)));
            }
            v.push(("MCFuser-Chimera", chimera.run_chain(chain, dev)));
            v.push(("MCFuser", mcfuser.run_chain(chain, dev)));
            v
        };
        for (name, res) in backends {
            match res {
                Ok(run) => {
                    let speedup = base.time / run.time;
                    cells.push(format!("{speedup:.2}"));
                    row_json[name] = serde_json::json!({
                        "time_s": run.time,
                        "speedup_vs_pytorch": speedup,
                        "fused": run.fused,
                        "tuning_s": run.tuning_seconds,
                    });
                    if name == "MCFuser" {
                        note = run.note.clone();
                    }
                    match speedups.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, v)) => v.push(speedup),
                        None => speedups.push((name, vec![speedup])),
                    }
                }
                Err(e) => {
                    cells.push("-".into());
                    row_json[name] = serde_json::json!({ "unsupported": e.reason });
                }
            }
        }
        cells.push(note);
        table.row(cells);
        rows_json.push(row_json);
    }

    // Geometric-mean speedups (the paper's "avg" bars).
    let mut avg = vec!["avg".to_string(), "1.00".to_string()];
    let order: Vec<&str> = if with_flash {
        vec![
            "Ansor",
            "BOLT",
            "FlashAttention",
            "MCFuser-Chimera",
            "MCFuser",
        ]
    } else {
        vec!["Ansor", "BOLT", "MCFuser-Chimera", "MCFuser"]
    };
    let mut avg_json = serde_json::Map::new();
    for name in &order {
        match speedups.iter().find(|(n, _)| n == name) {
            Some((_, v)) if !v.is_empty() => {
                let g = geomean(v);
                avg.push(format!("{g:.2}"));
                avg_json.insert(name.to_string(), serde_json::json!(g));
            }
            _ => avg.push("-".into()),
        }
    }
    avg.push(String::new());
    table.row(avg);

    println!(
        "Fig. 8 — {} suite on {} (speedup over PyTorch; higher is better)\n",
        suite_name, dev.name
    );
    println!("{}", table.render());

    serde_json::json!({
        "suite": suite_name,
        "device": dev.name,
        "rows": rows_json,
        "geomean_speedups": avg_json,
    })
}

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let fast = fast_mode();
    let suite = arg_value("--suite").unwrap_or_else(|| "all".into());
    let device = arg_value("--device").unwrap_or_else(|| "all".into());

    let devices: Vec<DeviceSpec> = match device.as_str() {
        "all" => vec![DeviceSpec::a100(), DeviceSpec::rtx3080()],
        d => vec![device_by_name(d).expect("unknown device")],
    };
    let mut suites: Vec<(&str, Vec<ChainSpec>)> = Vec::new();
    if suite == "gemm" || suite == "all" {
        let mut v = gemm_chain_suite();
        if fast {
            v.truncate(4);
        }
        suites.push(("gemm", v));
    }
    if suite == "attention" || suite == "all" {
        let mut v = attention_suite();
        if fast {
            v.truncate(3);
        }
        suites.push(("attention", v));
    }

    let mut all = Vec::new();
    for dev in &devices {
        for (name, chains) in &suites {
            all.push(run_suite(name, chains, dev, fast));
        }
    }
    write_json(
        "fig8_subgraph",
        &serde_json::json!({ "fast": fast, "panels": all }),
    );
}
