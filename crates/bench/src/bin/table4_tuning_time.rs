//! Table IV — tuning times for sub-graph modules and end-to-end models
//! on the virtual tuning clock.
//!
//! Sub-graph half: average per-chain tuning seconds of BOLT, Ansor,
//! MCFuser-Chimera and MCFuser over the Table II / Table III suites.
//! End-to-end half: Relay, BOLT, MCFuser+Relay, Ansor, MCFuser+Ansor on
//! the three BERT models.
//!
//! Usage: `table4_tuning_time [--fast]`

use mcfuser_baselines::{Ansor, Backend, Bolt, Chimera, McFuserBackend, Relay};
use mcfuser_bench::{fast_mode, fmt_time, unfused_graph_cost, write_json, TextTable};
use mcfuser_core::FusionEngine;
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_workloads::{attention_suite, bert_base, bert_large, bert_small, gemm_chain_suite};

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn subgraph_half(dev: &DeviceSpec, fast: bool) -> serde_json::Value {
    let ansor = if fast {
        Ansor::with_trials(60)
    } else {
        Ansor::new()
    };
    let bolt = Bolt::new();
    let chimera = Chimera;
    let mcfuser = McFuserBackend::new();

    let mut suites: Vec<(&str, Vec<ChainSpec>)> = vec![
        ("GEMM Chain", gemm_chain_suite()),
        ("Self Attention", attention_suite()),
    ];
    if fast {
        for (_, v) in suites.iter_mut() {
            v.truncate(3);
        }
    }

    let mut t = TextTable::new(&[
        "Sub Graph",
        "BOLT",
        "Ansor",
        "MCFuser-Chimera",
        "MCFuser",
        "speedup vs BOLT/Ansor",
    ]);
    let mut json = Vec::new();
    for (name, chains) in &suites {
        let mut per: Vec<(&str, Vec<f64>)> = vec![
            ("BOLT", vec![]),
            ("Ansor", vec![]),
            ("Chimera", vec![]),
            ("MCFuser", vec![]),
        ];
        for chain in chains {
            // Fresh caches per chain: tuning each sub-graph independently.
            let ansor_fresh = if fast {
                Ansor::with_trials(60)
            } else {
                Ansor::new()
            };
            if let Ok(r) = bolt.run_chain(chain, dev) {
                per[0].1.push(r.tuning_seconds);
            }
            if let Ok(r) = ansor_fresh.run_chain(chain, dev) {
                per[1].1.push(r.tuning_seconds);
            }
            if let Ok(r) = chimera.run_chain(chain, dev) {
                per[2].1.push(r.tuning_seconds);
            }
            if let Ok(r) = mcfuser.run_chain(chain, dev) {
                per[3].1.push(r.tuning_seconds);
            }
            let _ = ansor;
        }
        let bolt_m = mean(&per[0].1);
        let ansor_m = mean(&per[1].1);
        let chim_m = mean(&per[2].1);
        let ours_m = mean(&per[3].1);
        let bolt_speedup: String = if bolt_m.is_finite() {
            format!("{:.1}x", bolt_m / ours_m)
        } else {
            "-".into()
        };
        let speedups = format!("{} / {:.0}x", bolt_speedup, ansor_m / ours_m);
        t.row(vec![
            name.to_string(),
            if per[0].1.is_empty() {
                "-".into()
            } else {
                fmt_time(bolt_m)
            },
            fmt_time(ansor_m),
            fmt_time(chim_m),
            fmt_time(ours_m),
            speedups,
        ]);
        json.push(serde_json::json!({
            "suite": name,
            "bolt_s": bolt_m,
            "ansor_s": ansor_m,
            "chimera_s": chim_m,
            "mcfuser_s": ours_m,
        }));
    }
    println!(
        "Table IV (sub-graphs, per-chain averages) on {}\n",
        dev.name
    );
    println!("{}", t.render());
    println!("Paper: BOLT 88s, Ansor 4895s, Chimera 29s, MCFuser 35s (GEMM chains);");
    println!("       Ansor 2897s, Chimera 32s, MCFuser 39s (self-attention).\n");
    serde_json::json!(json)
}

fn end2end_half(dev: &DeviceSpec, fast: bool) -> serde_json::Value {
    let models = if fast {
        vec![bert_small(512)]
    } else {
        vec![bert_small(512), bert_base(512), bert_large(512)]
    };
    let trials = if fast { 60 } else { 1000 };
    let mut t = TextTable::new(&[
        "model",
        "Relay",
        "BOLT",
        "MCFuser+Relay",
        "Ansor",
        "MCFuser+Ansor",
    ]);
    let mut json = Vec::new();
    for graph in &models {
        let (_, tune_relay) = unfused_graph_cost(graph, dev, &Relay::new());
        let (_, tune_bolt) = unfused_graph_cost(graph, dev, &Bolt::new());
        let (_, tune_ansor) = unfused_graph_cost(graph, dev, &Ansor::with_trials(trials));
        // Fresh engine sessions per configuration: fresh tuning caches,
        // comparable costs.
        let mcf_relay = FusionEngine::builder(dev.clone())
            .fallback(Relay::new())
            .build()
            .compile(graph)
            .unwrap();
        let mcf_ansor = FusionEngine::builder(dev.clone())
            .fallback(Ansor::with_trials(trials))
            .build()
            .compile(graph)
            .unwrap();
        t.row(vec![
            graph.name.clone(),
            fmt_time(tune_relay),
            fmt_time(tune_bolt),
            format!(
                "{} ({:.2}x)",
                fmt_time(mcf_relay.tuning_seconds),
                tune_bolt / mcf_relay.tuning_seconds
            ),
            fmt_time(tune_ansor),
            format!(
                "{} ({:.2}x)",
                fmt_time(mcf_ansor.tuning_seconds),
                tune_ansor / mcf_ansor.tuning_seconds
            ),
        ]);
        json.push(serde_json::json!({
            "model": graph.name,
            "relay_s": tune_relay,
            "bolt_s": tune_bolt,
            "mcfuser_relay_s": mcf_relay.tuning_seconds,
            "ansor_s": tune_ansor,
            "mcfuser_ansor_s": mcf_ansor.tuning_seconds,
        }));
    }
    println!("Table IV (end-to-end tuning) on {}\n", dev.name);
    println!("{}", t.render());
    println!("Paper: Relay 30-186s, BOLT 94-383s, MCFuser+Relay 81-243s,");
    println!("       Ansor ~4h, MCFuser+Ansor ~2.8h.");
    serde_json::json!(json)
}

fn main() {
    mcfuser_sim::assert_codegen_ok();
    let fast = fast_mode();
    let dev = DeviceSpec::a100();
    let sub = subgraph_half(&dev, fast);
    let e2e = end2end_half(&dev, fast);
    write_json(
        "table4_tuning_time",
        &serde_json::json!({ "fast": fast, "subgraph": sub, "end_to_end": e2e }),
    );
}
