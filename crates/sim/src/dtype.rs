//! Element data types for simulated device buffers.
//!
//! The functional interpreter always computes in `f32` (mirroring
//! tensor-core FP16-multiply / FP32-accumulate pipelines); the data type
//! only affects *storage* — i.e. how many bytes a tile occupies in global
//! or shared memory and therefore how much traffic a kernel generates.

use serde::{Deserialize, Serialize};

/// Storage element type of a tensor buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// IEEE 754 half precision — the tensor-core native input type.
    #[default]
    F16,
    /// bfloat16 — same byte width as `F16`, different dynamic range.
    Bf16,
    /// IEEE 754 single precision.
    F32,
}

impl DType {
    /// Width of one element in bytes.
    #[inline]
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F16 | DType::Bf16 => 2,
            DType::F32 => 4,
        }
    }

    /// Whether tensor cores accept this type as an input operand.
    #[inline]
    pub const fn tensor_core_native(self) -> bool {
        matches!(self, DType::F16 | DType::Bf16)
    }

    /// Round a value to the representable precision of the type.
    ///
    /// Used by the functional interpreter when a value transits storage at
    /// this precision, so numerics of fused and unfused pipelines agree on
    /// what a round-trip through global memory does.
    #[inline]
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            DType::F32 => v,
            DType::F16 => {
                // Emulate f16 by truncating the mantissa to 10 bits.
                truncate_mantissa(v, 13)
            }
            DType::Bf16 => truncate_mantissa(v, 16),
        }
    }
}

/// Zero the low `bits` mantissa bits of an `f32`.
#[inline]
fn truncate_mantissa(v: f32, bits: u32) -> f32 {
    if !v.is_finite() {
        return v;
    }
    let raw = v.to_bits();
    let mask = !((1u32 << bits) - 1);
    f32::from_bits(raw & mask)
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::F32 => "f32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
    }

    #[test]
    fn tensor_core_nativeness() {
        assert!(DType::F16.tensor_core_native());
        assert!(DType::Bf16.tensor_core_native());
        assert!(!DType::F32.tensor_core_native());
    }

    #[test]
    fn quantize_f32_is_identity() {
        for v in [0.0f32, 1.5, -3.75, 1e30, -1e-30] {
            assert_eq!(DType::F32.quantize(v), v);
        }
    }

    #[test]
    fn quantize_f16_rounds_small_increments() {
        // 1.0 + 2^-13 is not representable in f16 (10-bit mantissa).
        let v = 1.0f32 + 2f32.powi(-13);
        assert_eq!(DType::F16.quantize(v), 1.0);
        // Values exactly representable survive.
        assert_eq!(DType::F16.quantize(1.5), 1.5);
        assert_eq!(DType::F16.quantize(-0.25), -0.25);
    }

    #[test]
    fn quantize_preserves_non_finite() {
        assert!(DType::F16.quantize(f32::NAN).is_nan());
        assert_eq!(DType::F16.quantize(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn quantize_error_is_bounded() {
        // Relative error of f16 truncation is below 2^-10.
        for i in 1..1000 {
            let v = i as f32 * 0.37;
            let q = DType::F16.quantize(v);
            assert!((v - q).abs() <= v.abs() * 2f32.powi(-10) + f32::EPSILON);
        }
    }
}
