//! Execution backends: the [`KernelExecutor`] trait and the vectorized
//! engine.
//!
//! The repo grew up around the functional interpreter in [`crate::exec`],
//! which runs every [`TileProgram`] element-at-a-time through per-element
//! `VarRef` decode, bounds checks, and dtype dispatch. That is the right
//! shape for an *oracle* — it is a direct transcription of the semantics —
//! but it made wall-clock serving interpreter-bound. This module puts a
//! second engine behind a common trait:
//!
//! * [`InterpreterExec`] — the unchanged interpreter, kept bit-for-bit as
//!   the correctness oracle (`ExecBackend::Interpreter`);
//! * [`VectorizedExec`] — blocked, chunked-`f32`-lane kernels
//!   (`ExecBackend::Vectorized`, the default): contiguous-innermost row
//!   slices are resolved **once per tile** and moved with
//!   `copy_from_slice` (a single `memcpy` per row instead of per-element
//!   decode), GEMM tiles run register-blocked raw-pointer loops, and the
//!   fused prologue/epilogue statements reuse per-call scratch instead of
//!   allocating per statement. Widened (batched) launches hit the same
//!   row-slice paths — a batch slot is just a leading-dim offset resolved
//!   into the row base once.
//!
//! Every kernel records its [`NestClass`] at lower time
//! ([`crate::kernel::ProgramBuilder::finish`]), so the vectorized engine
//! dispatches its per-class setup in O(1) without re-walking the body:
//! streaming nests provision no reduction/pipeline scratch, fused
//! pipelines pre-size the normalization scratch once per launch.
//!
//! **Bit-identity contract:** for every program and storage, both backends
//! produce byte-identical results. The vectorized kernels restructure
//! *memory access*, never floating-point evaluation order: per-element
//! operation sequences (including `+ 0.0` on out-of-bounds reads, the
//! `a == 0.0` GEMM skip, and sequential column-order reductions) are
//! preserved exactly. The property is enforced by proptest in
//! `tests/exec_backends.rs`.
//!
//! **Safety argument.** Every `unsafe` block below is a raw-pointer walk
//! whose extent is a slice length established immediately above it
//! (`// SAFETY:` comments state the local bound). Those slice lengths
//! are not ad hoc: row slices are carved from tile geometry — smem
//! `rows × cols` against declared buffer shapes — that the static
//! verifier ([`crate::verify`]) proves in-bounds for every block of the
//! launch grid before a program reaches an executor (every served
//! program passes `verify_program`; widened launches additionally pass
//! `verify_widened`). The crate-level
//! `#![deny(clippy::undocumented_unsafe_blocks)]` keeps the per-block
//! arguments from rotting.

use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::exec::{
    self, max_loop_handle, tile_origin, BufferArena, ExecError, HostTensor, Smem, TensorStorage,
};
use crate::kernel::{BlockStmt, NestClass, SmemId, TileProgram};

/// Which engine executes lowered kernels.
///
/// Parsed from strings (`"interpreter"` / `"vectorized"`, e.g. the
/// `MCFUSER_EXEC_BACKEND` environment knob the bench bins honor) and
/// serializable so run configurations can be recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecBackend {
    /// The element-at-a-time functional interpreter ([`crate::exec`]) —
    /// the correctness oracle.
    Interpreter,
    /// Blocked row-slice/raw-pointer kernels, bit-identical to the
    /// interpreter (the default).
    #[default]
    Vectorized,
}

impl ExecBackend {
    /// The executor implementing this backend.
    pub fn executor(self) -> &'static dyn KernelExecutor {
        match self {
            ExecBackend::Interpreter => &InterpreterExec,
            ExecBackend::Vectorized => &VectorizedExec,
        }
    }

    /// Read the `MCFUSER_EXEC_BACKEND` environment variable
    /// (`"interpreter"` or `"vectorized"`), if set and well-formed.
    pub fn from_env() -> Option<ExecBackend> {
        std::env::var("MCFUSER_EXEC_BACKEND").ok()?.parse().ok()
    }
}

impl std::str::FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interpreter" | "oracle" | "interp" => Ok(ExecBackend::Interpreter),
            "vectorized" | "vector" | "vec" => Ok(ExecBackend::Vectorized),
            other => Err(format!(
                "unknown exec backend {other:?} (expected \"interpreter\" or \"vectorized\")"
            )),
        }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecBackend::Interpreter => "interpreter",
            ExecBackend::Vectorized => "vectorized",
        })
    }
}

/// An engine that can run [`TileProgram`]s against host storage.
///
/// Implementations must be semantically identical: same outputs, same
/// errors, bit-for-bit. They may differ arbitrarily in speed.
pub trait KernelExecutor: Send + Sync {
    /// Short display name (`"interpreter"` / `"vectorized"`).
    fn name(&self) -> &'static str;

    /// Execute `p`, drawing shared-memory (and scratch) buffers from
    /// `arena`. Inputs must be staged; outputs/temps are written in place.
    fn execute_with_arena(
        &self,
        p: &TileProgram,
        storage: &mut TensorStorage,
        arena: &mut BufferArena,
    ) -> Result<(), ExecError>;

    /// [`KernelExecutor::execute_with_arena`] with a throwaway arena.
    fn execute(&self, p: &TileProgram, storage: &mut TensorStorage) -> Result<(), ExecError> {
        let mut arena = BufferArena::new();
        self.execute_with_arena(p, storage, &mut arena)
    }
}

/// The functional interpreter as a [`KernelExecutor`] — the oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpreterExec;

impl KernelExecutor for InterpreterExec {
    fn name(&self) -> &'static str {
        "interpreter"
    }

    fn execute_with_arena(
        &self,
        p: &TileProgram,
        storage: &mut TensorStorage,
        arena: &mut BufferArena,
    ) -> Result<(), ExecError> {
        exec::execute_with_arena(p, storage, arena)
    }
}

/// The vectorized backend: blocked row-slice kernels, bit-identical to
/// the interpreter (see the module docs for the contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorizedExec;

impl KernelExecutor for VectorizedExec {
    fn name(&self) -> &'static str {
        "vectorized"
    }

    fn execute_with_arena(
        &self,
        p: &TileProgram,
        storage: &mut TensorStorage,
        arena: &mut BufferArena,
    ) -> Result<(), ExecError> {
        p.validate()?;
        if storage.tensors.len() != p.buffers.len() {
            return Err(ExecError::StorageMismatch(format!(
                "{} tensors for {} buffers",
                storage.tensors.len(),
                p.buffers.len()
            )));
        }
        for (t, d) in storage.tensors.iter().zip(&p.buffers) {
            if t.shape != d.shape {
                return Err(ExecError::StorageMismatch(format!(
                    "buffer {} declared {:?} but storage has {:?}",
                    d.name, d.shape, t.shape
                )));
            }
        }

        // Per-buffer strides resolved once per launch (the interpreter
        // re-derives them per Load/Store/RawView).
        let strides: Vec<Vec<u64>> = storage.tensors.iter().map(|t| t.strides()).collect();
        let mut scratch = Scratch::for_class(p, p.nest_class());

        let mut smem = Smem::for_program_in(p, arena);
        let grid = if p.grid.is_empty() {
            vec![1]
        } else {
            p.grid.clone()
        };
        let nblocks: u64 = grid.iter().product();
        let mut block_idx = vec![0u64; grid.len()];
        let max_handle = max_loop_handle(&p.body) + 1;
        let mut env = vec![0u64; max_handle];

        for flat in 0..nblocks {
            let mut rem = flat;
            for i in (0..grid.len()).rev() {
                block_idx[i] = rem % grid[i];
                rem /= grid[i];
            }
            run_stmts_vec(
                p,
                &p.body,
                &block_idx,
                &mut env,
                &mut smem,
                storage,
                &strides,
                &mut scratch,
            );
        }
        smem.recycle(arena);
        Ok(())
    }
}

/// Per-launch scratch the fused-pipeline statements reuse across blocks
/// (the interpreter allocates these per statement execution).
#[derive(Default)]
struct Scratch {
    alphas: Vec<f32>,
    col: Vec<f32>,
    means: Vec<f32>,
    rstds: Vec<f32>,
    gvals: Vec<f32>,
    bvals: Vec<f32>,
}

impl Scratch {
    /// Provision scratch according to the nest class recorded at lower
    /// time — the O(1) dispatch the classification buys: streaming and
    /// plain reduction nests allocate nothing here.
    fn for_class(p: &TileProgram, class: NestClass) -> Scratch {
        let mut s = Scratch::default();
        if matches!(class, NestClass::FusedPipeline | NestClass::Unknown) {
            let max_rows = p.smem.iter().map(|d| d.rows).max().unwrap_or(0) as usize;
            let max_cols = p.smem.iter().map(|d| d.cols).max().unwrap_or(0) as usize;
            s.alphas.reserve(max_rows);
            s.col.reserve(max_cols.max(max_rows));
            s.means.reserve(max_rows);
            s.rstds.reserve(max_rows);
            s.gvals.reserve(max_cols);
            s.bvals.reserve(max_cols);
        }
        s
    }
}

/// `dst[i] = v` through log2(len) `memmove`s instead of a per-element
/// loop (the workspace builds at opt-level 0, where `slice::fill` on
/// `f32` pays per-element iterator overhead).
fn fill_f32(dst: &mut [f32], v: f32) {
    if dst.is_empty() {
        return;
    }
    dst[0] = v;
    let mut n = 1usize;
    while n < dst.len() {
        let m = n.min(dst.len() - n);
        dst.copy_within(0..m, n);
        n += m;
    }
}

/// Quantize `src` into `dst` with the dtype dispatch hoisted out of the
/// element loop. For `F32` this is a straight `memcpy`.
fn quantize_row(dt: DType, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    match dt {
        DType::F32 => dst.copy_from_slice(src),
        dt => {
            // SAFETY: equal lengths asserted above; pointers from the
            // slices themselves. Callers hand in row slices carved by
            // `load_tile_vec`/`store_tile_vec` from tile geometry the
            // static verifier proved in-bounds (clipped extents are
            // pre-shrunk to `in_cols` before slicing).
            unsafe {
                let mut sp = src.as_ptr();
                let mut dp = dst.as_mut_ptr();
                for _ in 0..src.len() {
                    *dp = dt.quantize(*sp);
                    sp = sp.add(1);
                    dp = dp.add(1);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_stmts_vec(
    p: &TileProgram,
    stmts: &[BlockStmt],
    block_idx: &[u64],
    env: &mut Vec<u64>,
    smem: &mut Smem,
    storage: &mut TensorStorage,
    strides: &[Vec<u64>],
    scratch: &mut Scratch,
) {
    for s in stmts {
        match s {
            BlockStmt::Loop {
                handle,
                extent,
                body,
            } => {
                for i in 0..*extent {
                    env[handle.0] = i;
                    run_stmts_vec(p, body, block_idx, env, smem, storage, strides, scratch);
                }
                env[handle.0] = 0;
            }
            BlockStmt::Load { src, dst } => {
                let origin = tile_origin(src, block_idx, env);
                let (rows, cols) = (smem.rows[dst.0], smem.cols[dst.0]);
                let dt = p.smem[dst.0].dtype;
                load_tile_vec(
                    &storage.tensors[src.buf.0],
                    &strides[src.buf.0],
                    &origin,
                    rows,
                    cols,
                    dt,
                    &mut smem.bufs[dst.0],
                );
            }
            BlockStmt::Store { dst, src } => {
                let origin = tile_origin(dst, block_idx, env);
                let (rows, cols) = (smem.rows[src.0], smem.cols[src.0]);
                let dt = p.buffers[dst.buf.0].dtype;
                store_tile_vec(
                    &smem.bufs[src.0],
                    rows,
                    cols,
                    dt,
                    &mut storage.tensors[dst.buf.0],
                    &strides[dst.buf.0],
                    &origin,
                );
            }
            BlockStmt::Fill { dst, value } => fill_f32(&mut smem.bufs[dst.0], *value),
            BlockStmt::Gemm {
                a,
                b,
                acc,
                b_transposed,
                acc_col,
            } => gemm_tiles_vec(smem, *a, *b, *acc, *b_transposed, *acc_col as usize),
            BlockStmt::OnlineSoftmax {
                scores,
                row_max,
                row_sum,
                rescale,
                scale,
            } => online_softmax_vec(smem, *scores, *row_max, *row_sum, rescale, *scale, scratch),
            BlockStmt::RowDiv { target, denom } => {
                let cols = smem.cols[target.0] as usize;
                let rows = smem.rows[target.0] as usize;
                let dcols = smem.cols[denom.0] as usize;
                scratch.col.clear();
                scratch
                    .col
                    .extend((0..rows).map(|r| smem.bufs[denom.0][r * dcols]));
                let t = &mut smem.bufs[target.0];
                for (r, &d) in scratch.col.iter().enumerate() {
                    if d != 0.0 {
                        // SAFETY: row r of a rows×cols tile.
                        unsafe {
                            let mut tp = t.as_mut_ptr().add(r * cols);
                            for _ in 0..cols {
                                *tp /= d;
                                tp = tp.add(1);
                            }
                        }
                    }
                }
            }
            BlockStmt::Relu { target } => {
                let buf = &mut smem.bufs[target.0];
                // SAFETY: in-bounds pointer walk over the whole buffer.
                unsafe {
                    let mut vp = buf.as_mut_ptr();
                    for _ in 0..buf.len() {
                        *vp = (*vp).max(0.0);
                        vp = vp.add(1);
                    }
                }
            }
            BlockStmt::Gelu { target } => {
                let buf = &mut smem.bufs[target.0];
                // SAFETY: in-bounds pointer walk over the whole buffer.
                unsafe {
                    let mut vp = buf.as_mut_ptr();
                    for _ in 0..buf.len() {
                        *vp = exec::gelu(*vp);
                        vp = vp.add(1);
                    }
                }
            }
            BlockStmt::AddTile { target, other } => {
                let (t, o) = (target.0, other.0);
                if t == o {
                    let buf = &mut smem.bufs[t];
                    // SAFETY: in-bounds pointer walk over the whole buffer.
                    unsafe {
                        let mut vp = buf.as_mut_ptr();
                        for _ in 0..buf.len() {
                            *vp += *vp;
                            vp = vp.add(1);
                        }
                    }
                } else {
                    let (lo, hi) = smem.bufs.split_at_mut(t.max(o));
                    let (dst, src) = if t < o {
                        (&mut lo[t], &hi[0])
                    } else {
                        (&mut hi[0], &lo[o])
                    };
                    lanes::add_assign(dst, src);
                }
            }
            BlockStmt::Scale { target, factor } => {
                let buf = &mut smem.bufs[target.0];
                // SAFETY: in-bounds pointer walk over the whole buffer.
                unsafe {
                    let mut vp = buf.as_mut_ptr();
                    for _ in 0..buf.len() {
                        *vp *= factor;
                        vp = vp.add(1);
                    }
                }
            }
            BlockStmt::Exp { target } => {
                let buf = &mut smem.bufs[target.0];
                // SAFETY: in-bounds pointer walk over the whole buffer.
                unsafe {
                    let mut vp = buf.as_mut_ptr();
                    for _ in 0..buf.len() {
                        *vp = (*vp).exp();
                        vp = vp.add(1);
                    }
                }
            }
            BlockStmt::AddBias { target, bias } => {
                let cols = smem.cols[target.0] as usize;
                let rows = smem.rows[target.0] as usize;
                scratch.col.clear();
                scratch.col.extend_from_slice(&smem.bufs[bias.0][..cols]);
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    lanes::add_assign(&mut t[r * cols..(r + 1) * cols], &scratch.col);
                }
            }
            BlockStmt::Quantize { target, dtype } => {
                let buf = &mut smem.bufs[target.0];
                // SAFETY: in-bounds pointer walk over the whole buffer.
                unsafe {
                    let mut vp = buf.as_mut_ptr();
                    for _ in 0..buf.len() {
                        *vp = dtype.quantize(*vp);
                        vp = vp.add(1);
                    }
                }
            }
            BlockStmt::RowNormStats {
                a,
                residual,
                rows,
                cols,
                mean,
                rstd,
                eps,
            } => {
                let a_origin = tile_origin(a, block_idx, env);
                let av = StridedView::new(&storage.tensors[a.buf.0], &strides[a.buf.0], &a_origin);
                let resv = residual.as_ref().map(|racc| {
                    let o = tile_origin(racc, block_idx, env);
                    StridedView::new(&storage.tensors[racc.buf.0], &strides[racc.buf.0], &o)
                });
                let mcols = smem.cols[mean.0] as usize;
                let rcols = smem.cols[rstd.0] as usize;
                for r in 0..*rows {
                    let (m_val, s_val) = if av.row_in_bounds(r) {
                        row_norm_stats(&av, resv.as_ref(), r, *cols, *eps)
                    } else {
                        (0.0, 1.0)
                    };
                    smem.bufs[mean.0][r as usize * mcols] = m_val;
                    smem.bufs[rstd.0][r as usize * rcols] = s_val;
                }
            }
            BlockStmt::NormalizeTile {
                target,
                mean,
                rstd,
                gamma,
                beta,
                round,
            } => {
                let rows = smem.rows[target.0] as usize;
                let cols = smem.cols[target.0] as usize;
                let mcols = smem.cols[mean.0] as usize;
                let rcols = smem.cols[rstd.0] as usize;
                stage_row_stats(
                    scratch,
                    &smem.bufs[mean.0],
                    mcols,
                    &smem.bufs[rstd.0],
                    rcols,
                    rows,
                );
                stage_affine(scratch, smem, *gamma, *beta, cols);
                let round = *round;
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    let row = &mut t[r * cols..(r + 1) * cols];
                    let (m, s) = (scratch.means[r], scratch.rstds[r]);
                    let gv = (!scratch.gvals.is_empty()).then_some(scratch.gvals.as_slice());
                    let bv = (!scratch.bvals.is_empty()).then_some(scratch.bvals.as_slice());
                    // SAFETY: row/gv/bv all have length `cols`.
                    unsafe {
                        let mut vp = row.as_mut_ptr();
                        for c in 0..cols {
                            let mut v = (*vp - m) * s;
                            if let Some(g) = gv {
                                v *= *g.as_ptr().add(c);
                            }
                            if let Some(b) = bv {
                                v += *b.as_ptr().add(c);
                            }
                            *vp = round.quantize(v);
                            vp = vp.add(1);
                        }
                    }
                }
            }
            BlockStmt::AddGlobal { target, src } => {
                let origin = tile_origin(src, block_idx, env);
                let view =
                    StridedView::new(&storage.tensors[src.buf.0], &strides[src.buf.0], &origin);
                let rows = smem.rows[target.0] as usize;
                let cols = smem.cols[target.0] as usize;
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    let trow = &mut t[r * cols..(r + 1) * cols];
                    if let Some(srow) = view.row_slice(r as u64, cols) {
                        lanes::add_assign(trow, srow);
                    } else {
                        // Clipped row: the interpreter still performs the
                        // `+ 0.0` on every out-of-bounds element (it is
                        // not a no-op for `-0.0`), so mirror it exactly.
                        for (c, v) in trow.iter_mut().enumerate() {
                            *v += view.get(r as u64, c as u64);
                        }
                    }
                }
            }
            BlockStmt::AddRecomputedNorm {
                target,
                a,
                residual,
                mean,
                rstd,
                gamma,
                beta,
            } => {
                let a_origin = tile_origin(a, block_idx, env);
                let av = StridedView::new(&storage.tensors[a.buf.0], &strides[a.buf.0], &a_origin);
                let resv = residual.as_ref().map(|racc| {
                    let o = tile_origin(racc, block_idx, env);
                    StridedView::new(&storage.tensors[racc.buf.0], &strides[racc.buf.0], &o)
                });
                let rows = smem.rows[target.0] as usize;
                let cols = smem.cols[target.0] as usize;
                let mcols = smem.cols[mean.0] as usize;
                let rcols = smem.cols[rstd.0] as usize;
                stage_row_stats(
                    scratch,
                    &smem.bufs[mean.0],
                    mcols,
                    &smem.bufs[rstd.0],
                    rcols,
                    rows,
                );
                stage_affine(scratch, smem, *gamma, *beta, cols);
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    if !av.row_in_bounds(r as u64) {
                        continue;
                    }
                    let trow = &mut t[r * cols..(r + 1) * cols];
                    let (m, s) = (scratch.means[r], scratch.rstds[r]);
                    let gv = (!scratch.gvals.is_empty()).then_some(scratch.gvals.as_slice());
                    let bv = (!scratch.bvals.is_empty()).then_some(scratch.bvals.as_slice());
                    let arow = av.row_slice(r as u64, cols);
                    let rrow = match &resv {
                        // None here means clipped — take the slow path.
                        Some(rv) => rv.row_slice(r as u64, cols).map(Some),
                        None => Some(None),
                    };
                    match (arow, rrow) {
                        (Some(arow), Some(rrow)) => {
                            // SAFETY: every slice has length `cols`.
                            unsafe {
                                let mut vp = trow.as_mut_ptr();
                                let mut ap = arow.as_ptr();
                                let mut rp = rrow.map(|s| s.as_ptr());
                                for c in 0..cols {
                                    let mut v = *ap;
                                    if let Some(rpv) = rp {
                                        v += *rpv;
                                        rp = Some(rpv.add(1));
                                    }
                                    let mut n = (v - m) * s;
                                    if let Some(g) = gv {
                                        n *= *g.as_ptr().add(c);
                                    }
                                    if let Some(b) = bv {
                                        n += *b.as_ptr().add(c);
                                    }
                                    *vp += n;
                                    vp = vp.add(1);
                                    ap = ap.add(1);
                                }
                            }
                        }
                        _ => {
                            // Column-clipped tile: per-element reads with
                            // zero padding, identical to the interpreter.
                            for c in 0..cols {
                                let mut v = av.get(r as u64, c as u64);
                                if let Some(rv) = &resv {
                                    v += rv.get(r as u64, c as u64);
                                }
                                let mut n = (v - m) * s;
                                if let Some(g) = gv {
                                    n *= g[c];
                                }
                                if let Some(b) = bv {
                                    n += b[c];
                                }
                                trow[c] += n;
                            }
                        }
                    }
                }
            }
            BlockStmt::LayerNormTile {
                target,
                gamma,
                beta,
                eps,
            } => {
                let rows = smem.rows[target.0] as usize;
                let cols = smem.cols[target.0] as usize;
                stage_affine(scratch, smem, *gamma, *beta, cols);
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    let row = &mut t[r * cols..(r + 1) * cols];
                    let mean = lanes::sum(row) / cols as f32;
                    let var = lanes::centered_sq_sum(row, mean) / cols as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    let gv = (!scratch.gvals.is_empty()).then_some(scratch.gvals.as_slice());
                    let bv = (!scratch.bvals.is_empty()).then_some(scratch.bvals.as_slice());
                    // SAFETY: row/gv/bv all have length `cols`.
                    unsafe {
                        let mut vp = row.as_mut_ptr();
                        for c in 0..cols {
                            let mut n = (*vp - mean) * inv;
                            if let Some(g) = gv {
                                n *= *g.as_ptr().add(c);
                            }
                            if let Some(b) = bv {
                                n += *b.as_ptr().add(c);
                            }
                            *vp = n;
                            vp = vp.add(1);
                        }
                    }
                }
            }
        }
    }
}

/// Copy the per-row mean/rstd columns into scratch (split-borrow helper).
fn stage_row_stats(
    scratch: &mut Scratch,
    mean_buf: &[f32],
    mcols: usize,
    rstd_buf: &[f32],
    rcols: usize,
    rows: usize,
) {
    scratch.means.clear();
    scratch.means.extend((0..rows).map(|r| mean_buf[r * mcols]));
    scratch.rstds.clear();
    scratch.rstds.extend((0..rows).map(|r| rstd_buf[r * rcols]));
}

/// Copy optional gamma/beta rows into scratch; empty scratch = absent.
fn stage_affine(
    scratch: &mut Scratch,
    smem: &Smem,
    gamma: Option<SmemId>,
    beta: Option<SmemId>,
    cols: usize,
) {
    scratch.gvals.clear();
    if let Some(g) = gamma {
        scratch.gvals.extend_from_slice(&smem.bufs[g.0][..cols]);
    }
    scratch.bvals.clear();
    if let Some(b) = beta {
        scratch.bvals.extend_from_slice(&smem.bufs[b.0][..cols]);
    }
}

/// Sequential column-order mean/rstd of one full row — the fast path of
/// `RowNormStats`, summation order identical to the interpreter's.
fn row_norm_stats(
    av: &StridedView,
    resv: Option<&StridedView>,
    r: u64,
    cols: u64,
    eps: f32,
) -> (f32, f32) {
    let cols_us = cols as usize;
    let arow = av.row_slice(r, cols_us);
    let rrow = match resv {
        Some(rv) => rv.row_slice(r, cols_us).map(Some),
        None => Some(None),
    };
    if let (Some(arow), Some(rrow)) = (arow, rrow) {
        let sum = match rrow {
            Some(rrow) => lanes::paired_sum(arow, rrow),
            None => lanes::sum(arow),
        };
        let mean_v = sum / cols as f32;
        let var = match rrow {
            Some(rrow) => lanes::paired_centered_sq_sum(arow, rrow, mean_v),
            None => lanes::centered_sq_sum(arow, mean_v),
        };
        (mean_v, 1.0 / (var / cols as f32 + eps).sqrt())
    } else {
        // Column-clipped row: per-element with zero padding, exactly the
        // interpreter's sequence.
        let mut sum = 0.0f32;
        for c in 0..cols {
            let mut v = av.get(r, c);
            if let Some(rv) = resv {
                v += rv.get(r, c);
            }
            sum += v;
        }
        let mean_v = sum / cols as f32;
        let mut var = 0.0f32;
        for c in 0..cols {
            let mut v = av.get(r, c);
            if let Some(rv) = resv {
                v += rv.get(r, c);
            }
            let d = v - mean_v;
            var += d * d;
        }
        (mean_v, 1.0 / (var / cols as f32 + eps).sqrt())
    }
}

/// An unquantized window into the trailing two dims of a global tensor —
/// the vectorized analogue of the interpreter's `RawView`, built from
/// per-launch strides (no allocation) and able to hand out whole
/// in-bounds rows as slices.
struct StridedView<'a> {
    data: &'a [f32],
    base: u64,
    ro: u64,
    co: u64,
    rdim: u64,
    cdim: u64,
    rstride: u64,
    in_bounds: bool,
}

impl<'a> StridedView<'a> {
    fn new(src: &'a HostTensor, strides: &[u64], origin: &[u64]) -> Self {
        let rank = src.shape.len();
        debug_assert!(rank >= 2, "StridedView needs a matrix-shaped tensor");
        let lead = rank - 2;
        let mut base = 0u64;
        let mut in_bounds = true;
        for d in 0..lead {
            if origin[d] >= src.shape[d] {
                in_bounds = false;
            }
            base += origin[d] * strides[d];
        }
        StridedView {
            data: &src.data,
            base,
            ro: origin[rank - 2],
            co: origin[rank - 1],
            rdim: src.shape[rank - 2],
            cdim: src.shape[rank - 1],
            rstride: strides[rank - 2],
            in_bounds,
        }
    }

    fn row_in_bounds(&self, r: u64) -> bool {
        self.in_bounds && self.ro + r < self.rdim
    }

    /// The whole `cols`-wide row as a contiguous slice, when fully in
    /// bounds; `None` when any element would be clipped.
    fn row_slice(&self, r: u64, cols: usize) -> Option<&'a [f32]> {
        if !self.row_in_bounds(r) || self.co + cols as u64 > self.cdim {
            return None;
        }
        let start = (self.base + (self.ro + r) * self.rstride + self.co) as usize;
        Some(&self.data[start..start + cols])
    }

    fn get(&self, r: u64, c: u64) -> f32 {
        let (gr, gc) = (self.ro + r, self.co + c);
        if !self.in_bounds || gr >= self.rdim || gc >= self.cdim {
            return 0.0;
        }
        self.data[(self.base + gr * self.rstride + gc) as usize]
    }
}

/// Vectorized tile load: leading dims resolve to one base offset, each
/// in-bounds row moves as a slice (one `memcpy` for `f32`), clipped and
/// out-of-bounds regions zero-fill in bulk. Semantics identical to the
/// interpreter's `load_tile`.
fn load_tile_vec(
    src: &HostTensor,
    strides: &[u64],
    origin: &[u64],
    rows: u64,
    cols: u64,
    dt: DType,
    dst: &mut [f32],
) {
    let rank = src.shape.len();
    let tiled_dims = rank.min(2);
    let lead = rank - tiled_dims;
    let mut base = 0u64;
    let mut in_bounds = true;
    for d in 0..lead {
        if origin[d] >= src.shape[d] {
            in_bounds = false;
        }
        base += origin[d] * strides[d];
    }
    if !in_bounds {
        fill_f32(dst, 0.0);
        return;
    }
    let cols_us = cols as usize;
    if tiled_dims == 1 {
        // Rank-1: build row 0, then replicate it (`copy_within` row
        // memcpys, as the interpreter does).
        let o = origin[rank - 1];
        let dim = src.shape[rank - 1];
        let in_cols = dim.saturating_sub(o).min(cols) as usize;
        let start = (base + o) as usize;
        quantize_row(dt, &src.data[start..start + in_cols], &mut dst[..in_cols]);
        fill_f32(&mut dst[in_cols..cols_us], 0.0);
        for r in 1..rows {
            let lo = (r * cols) as usize;
            dst.copy_within(0..cols_us, lo);
        }
        return;
    }
    let (ro, co) = (origin[rank - 2], origin[rank - 1]);
    let (rdim, cdim) = (src.shape[rank - 2], src.shape[rank - 1]);
    let rstride = strides[rank - 2];
    let in_cols = cdim.saturating_sub(co).min(cols) as usize;
    for r in 0..rows {
        let gr = ro + r;
        let out_row = (r * cols) as usize;
        if gr >= rdim {
            fill_f32(&mut dst[out_row..out_row + cols_us], 0.0);
            continue;
        }
        let row_base = (base + gr * rstride + co) as usize;
        quantize_row(
            dt,
            &src.data[row_base..row_base + in_cols],
            &mut dst[out_row..out_row + in_cols],
        );
        fill_f32(&mut dst[out_row + in_cols..out_row + cols_us], 0.0);
    }
}

/// Vectorized tile store: clipped rows/columns resolved once, each row
/// written as a slice. Semantics identical to the interpreter's
/// `store_tile` (slot-strided widened stores are just a leading-dim
/// offset folded into `base`).
fn store_tile_vec(
    src: &[f32],
    rows: u64,
    cols: u64,
    dt: DType,
    dst: &mut HostTensor,
    strides: &[u64],
    origin: &[u64],
) {
    let rank = dst.shape.len();
    let tiled_dims = rank.min(2);
    let lead = rank - tiled_dims;
    let mut base = 0u64;
    for d in 0..lead {
        if origin[d] >= dst.shape[d] {
            return;
        }
        base += origin[d] * strides[d];
    }
    if tiled_dims == 1 {
        let o = origin[rank - 1];
        let dim = dst.shape[rank - 1];
        let in_cols = dim.saturating_sub(o).min(cols) as usize;
        let start = (base + o) as usize;
        quantize_row(dt, &src[..in_cols], &mut dst.data[start..start + in_cols]);
        return;
    }
    let (ro, co) = (origin[rank - 2], origin[rank - 1]);
    let (rdim, cdim) = (dst.shape[rank - 2], dst.shape[rank - 1]);
    let rstride = strides[rank - 2];
    let in_cols = cdim.saturating_sub(co).min(cols) as usize;
    for r in 0..rows {
        let gr = ro + r;
        if gr >= rdim {
            break;
        }
        let row_base = (base + gr * rstride + co) as usize;
        quantize_row(
            dt,
            &src[(r * cols) as usize..(r * cols) as usize + in_cols],
            &mut dst.data[row_base..row_base + in_cols],
        );
    }
}

/// Register-blocked tile GEMM, bit-identical to the interpreter: each
/// `acc[i, j]` receives its additions in the same sequential `k` order,
/// only the loop around them is blocked for locality.
fn gemm_tiles_vec(
    smem: &mut Smem,
    a: SmemId,
    b: SmemId,
    acc: SmemId,
    b_transposed: bool,
    acc_col: usize,
) {
    let (m, k) = (smem.rows[a.0] as usize, smem.cols[a.0] as usize);
    let n = if b_transposed {
        smem.rows[b.0] as usize
    } else {
        smem.cols[b.0] as usize
    };
    let stride = smem.cols[acc.0] as usize;
    debug_assert_eq!(smem.rows[acc.0] as usize, m);
    debug_assert!(acc_col + n <= stride);
    if a.0 == acc.0 || b.0 == acc.0 {
        let av = smem.bufs[a.0].clone();
        let bv = smem.bufs[b.0].clone();
        let accv = &mut smem.bufs[acc.0];
        gemm_inner_vec(&av, &bv, accv, m, n, k, b_transposed, stride, acc_col);
        return;
    }
    let (av, bv, accv) = {
        let bufs = &mut smem.bufs;
        let a_ptr = bufs[a.0].as_ptr();
        let b_ptr = bufs[b.0].as_ptr();
        let a_len = bufs[a.0].len();
        let b_len = bufs[b.0].len();
        let acc_slice: *mut [f32] = bufs[acc.0].as_mut_slice();
        // SAFETY: a, b, acc are distinct vector allocations (checked
        // above), so the immutable views of `a`/`b` cannot alias `acc`.
        unsafe {
            (
                std::slice::from_raw_parts(a_ptr, a_len),
                std::slice::from_raw_parts(b_ptr, b_len),
                &mut *acc_slice,
            )
        }
    };
    gemm_inner_vec(av, bv, accv, m, n, k, b_transposed, stride, acc_col);
}

#[allow(clippy::too_many_arguments)]
fn gemm_inner_vec(
    a: &[f32],
    b: &[f32],
    acc: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    b_transposed: bool,
    stride: usize,
    acc_col: usize,
) {
    if b_transposed {
        // b is n×k: per (i, j) a sequential-k dot product, register-blocked
        // 4 columns at a time (independent accumulators, identical per-dot
        // order).
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut acc[i * stride + acc_col..i * stride + acc_col + n];
            let mut j = 0;
            while j + 4 <= n {
                // SAFETY: rows j..j+4 of the n×k `b` tile; k elements each.
                unsafe {
                    let ap = arow.as_ptr();
                    let b0 = b.as_ptr().add(j * k);
                    let b1 = b.as_ptr().add((j + 1) * k);
                    let b2 = b.as_ptr().add((j + 2) * k);
                    let b3 = b.as_ptr().add((j + 3) * k);
                    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    for kk in 0..k {
                        let av = *ap.add(kk);
                        s0 += av * *b0.add(kk);
                        s1 += av * *b1.add(kk);
                        s2 += av * *b2.add(kk);
                        s3 += av * *b3.add(kk);
                    }
                    crow[j] += s0;
                    crow[j + 1] += s1;
                    crow[j + 2] += s2;
                    crow[j + 3] += s3;
                }
                j += 4;
            }
            while j < n {
                let brow = &b[j * k..(j + 1) * k];
                let s = lanes::dot(arow, brow);
                crow[j] += s;
                j += 1;
            }
        }
    } else {
        // b is k×n; i-k-j with the interpreter's zero skip, the inner axpy
        // as an unrolled pointer loop.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut acc[i * stride + acc_col..i * stride + acc_col + n];
            for (kk, &aval) in arow.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                lanes::axpy(crow, &b[kk * n..(kk + 1) * n], aval);
            }
        }
    }
}

/// Streaming softmax with reused scratch and row-slice pointer loops —
/// sequential column order preserved per row.
fn online_softmax_vec(
    smem: &mut Smem,
    scores: SmemId,
    row_max: SmemId,
    row_sum: SmemId,
    rescale: &[SmemId],
    scale: f32,
    scratch: &mut Scratch,
) {
    let rows = smem.rows[scores.0] as usize;
    let cols = smem.cols[scores.0] as usize;
    scratch.alphas.clear();
    scratch.alphas.resize(rows, 1.0);
    {
        let max_cols = smem.cols[row_max.0] as usize;
        let sum_cols = smem.cols[row_sum.0] as usize;
        for r in 0..rows {
            let m_old = smem.bufs[row_max.0][r * max_cols];
            let srow = &mut smem.bufs[scores.0][r * cols..(r + 1) * cols];
            let mut m_tile = f32::NEG_INFINITY;
            // SAFETY: in-bounds pointer walks over one `cols`-wide row.
            unsafe {
                let mut sp = srow.as_ptr();
                for _ in 0..cols {
                    m_tile = m_tile.max(scale * *sp);
                    sp = sp.add(1);
                }
            }
            let m_new = m_old.max(m_tile);
            let alpha = if m_old == f32::NEG_INFINITY {
                0.0
            } else {
                (m_old - m_new).exp()
            };
            let mut tile_sum = 0.0f32;
            // SAFETY: in-bounds pointer walk over the same row.
            unsafe {
                let mut sp = srow.as_mut_ptr();
                for _ in 0..cols {
                    let p = (scale * *sp - m_new).exp();
                    *sp = p;
                    tile_sum += p;
                    sp = sp.add(1);
                }
            }
            let s_old = smem.bufs[row_sum.0][r * sum_cols];
            smem.bufs[row_sum.0][r * sum_cols] = s_old * alpha + tile_sum;
            smem.bufs[row_max.0][r * max_cols] = m_new;
            scratch.alphas[r] = alpha;
        }
    }
    for id in rescale {
        let c = smem.cols[id.0] as usize;
        let rrows = smem.rows[id.0] as usize;
        let buf = &mut smem.bufs[id.0];
        for (r, &alpha) in scratch.alphas.iter().enumerate().take(rrows) {
            if alpha != 1.0 {
                // SAFETY: row r of an rrows×c tile.
                unsafe {
                    let mut vp = buf.as_mut_ptr().add(r * c);
                    for _ in 0..c {
                        *vp *= alpha;
                        vp = vp.add(1);
                    }
                }
            }
        }
    }
}

/// Chunked `f32`-lane primitives shared by the vectorized backend and the
/// CPU reference path in `mcfuser-ir` (which owns the element-wise steps
/// fusion leaves behind). Every helper preserves sequential per-element
/// evaluation order, so swapping them in is bit-neutral; they exist
/// because the workspace builds at opt-level 0, where checked indexing
/// and iterator adapters pay heavy per-element call overhead.
///
/// Each helper bounds its pointer walk by the *minimum* of its operand
/// slice lengths, so the `unsafe` blocks are locally sound for any
/// input. That the slices line up at all (row extents agree across
/// operands) is the bounds-proved-row-slice invariant the static
/// verifier ([`crate::verify`]) establishes per program before
/// execution.
pub mod lanes {
    /// `dst[i] += a * b[i]` — the GEMM axpy row update, unrolled by 4.
    pub fn axpy(dst: &mut [f32], b: &[f32], a: f32) {
        let n = dst.len().min(b.len());
        // SAFETY: j < n <= len of both slices on every access.
        unsafe {
            let cp = dst.as_mut_ptr();
            let bp = b.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                *cp.add(j) += a * *bp.add(j);
                *cp.add(j + 1) += a * *bp.add(j + 1);
                *cp.add(j + 2) += a * *bp.add(j + 2);
                *cp.add(j + 3) += a * *bp.add(j + 3);
                j += 4;
            }
            while j < n {
                *cp.add(j) += a * *bp.add(j);
                j += 1;
            }
        }
    }

    /// Sequential dot product `Σ a[i] * b[i]` (single accumulator — the
    /// order the references and the interpreter's transposed GEMM use).
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut s = 0.0f32;
        // SAFETY: j < n <= len of both slices. The unroll keeps one
        // accumulator updated in index order — no reassociation.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                s += *ap.add(j) * *bp.add(j);
                s += *ap.add(j + 1) * *bp.add(j + 1);
                s += *ap.add(j + 2) * *bp.add(j + 2);
                s += *ap.add(j + 3) * *bp.add(j + 3);
                j += 4;
            }
            while j < n {
                s += *ap.add(j) * *bp.add(j);
                j += 1;
            }
        }
        s
    }

    /// `dst[i] += src[i]`.
    pub fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len().min(src.len());
        // SAFETY: j < n <= len of both slices.
        unsafe {
            let dp = dst.as_mut_ptr();
            let sp = src.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                *dp.add(j) += *sp.add(j);
                *dp.add(j + 1) += *sp.add(j + 1);
                *dp.add(j + 2) += *sp.add(j + 2);
                *dp.add(j + 3) += *sp.add(j + 3);
                j += 4;
            }
            while j < n {
                *dp.add(j) += *sp.add(j);
                j += 1;
            }
        }
    }

    /// Sequential sum (fold from `0.0` in index order).
    pub fn sum(a: &[f32]) -> f32 {
        let n = a.len();
        let mut s = 0.0f32;
        // SAFETY: j < n; single accumulator in index order.
        unsafe {
            let ap = a.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                s += *ap.add(j);
                s += *ap.add(j + 1);
                s += *ap.add(j + 2);
                s += *ap.add(j + 3);
                j += 4;
            }
            while j < n {
                s += *ap.add(j);
                j += 1;
            }
        }
        s
    }

    /// Sequential `Σ (a[i] + b[i])` — the prologue-stitch residual sum.
    pub fn paired_sum(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut s = 0.0f32;
        // SAFETY: j < n <= len of both slices; index order preserved.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                s += *ap.add(j) + *bp.add(j);
                s += *ap.add(j + 1) + *bp.add(j + 1);
                s += *ap.add(j + 2) + *bp.add(j + 2);
                s += *ap.add(j + 3) + *bp.add(j + 3);
                j += 4;
            }
            while j < n {
                s += *ap.add(j) + *bp.add(j);
                j += 1;
            }
        }
        s
    }

    /// Sequential `Σ (a[i] - mean)²`.
    pub fn centered_sq_sum(a: &[f32], mean: f32) -> f32 {
        let n = a.len();
        let mut s = 0.0f32;
        // SAFETY: j < n; single accumulator in index order.
        unsafe {
            let ap = a.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                let d0 = *ap.add(j) - mean;
                s += d0 * d0;
                let d1 = *ap.add(j + 1) - mean;
                s += d1 * d1;
                let d2 = *ap.add(j + 2) - mean;
                s += d2 * d2;
                let d3 = *ap.add(j + 3) - mean;
                s += d3 * d3;
                j += 4;
            }
            while j < n {
                let d = *ap.add(j) - mean;
                s += d * d;
                j += 1;
            }
        }
        s
    }

    /// Sequential `Σ ((a[i] + b[i]) - mean)²`.
    pub fn paired_centered_sq_sum(a: &[f32], b: &[f32], mean: f32) -> f32 {
        let n = a.len().min(b.len());
        let mut s = 0.0f32;
        // SAFETY: j < n <= len of both slices; index order preserved.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                let d0 = (*ap.add(j) + *bp.add(j)) - mean;
                s += d0 * d0;
                let d1 = (*ap.add(j + 1) + *bp.add(j + 1)) - mean;
                s += d1 * d1;
                let d2 = (*ap.add(j + 2) + *bp.add(j + 2)) - mean;
                s += d2 * d2;
                let d3 = (*ap.add(j + 3) + *bp.add(j + 3)) - mean;
                s += d3 * d3;
                j += 4;
            }
            while j < n {
                let d = (*ap.add(j) + *bp.add(j)) - mean;
                s += d * d;
                j += 1;
            }
        }
        s
    }

    /// `out[i] = a[i] + b[i]` into a fresh vector.
    pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
        let n = a.len().min(b.len());
        let mut out = vec![0.0f32; n];
        // SAFETY: j < n <= len of every slice.
        unsafe {
            let op = out.as_mut_ptr();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                *op.add(j) = *ap.add(j) + *bp.add(j);
                *op.add(j + 1) = *ap.add(j + 1) + *bp.add(j + 1);
                *op.add(j + 2) = *ap.add(j + 2) + *bp.add(j + 2);
                *op.add(j + 3) = *ap.add(j + 3) + *bp.add(j + 3);
                j += 4;
            }
            while j < n {
                *op.add(j) = *ap.add(j) + *bp.add(j);
                j += 1;
            }
        }
        out
    }

    /// `out[i] = max(a[i], 0.0)` into a fresh vector.
    pub fn relu(a: &[f32]) -> Vec<f32> {
        let n = a.len();
        let mut out = vec![0.0f32; n];
        // SAFETY: j < n == len of both buffers.
        unsafe {
            let op = out.as_mut_ptr();
            let ap = a.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                *op.add(j) = (*ap.add(j)).max(0.0);
                *op.add(j + 1) = (*ap.add(j + 1)).max(0.0);
                *op.add(j + 2) = (*ap.add(j + 2)).max(0.0);
                *op.add(j + 3) = (*ap.add(j + 3)).max(0.0);
                j += 4;
            }
            while j < n {
                *op.add(j) = (*ap.add(j)).max(0.0);
                j += 1;
            }
        }
        out
    }

    /// `out[i] = a[i] * f` into a fresh vector.
    pub fn scale(a: &[f32], f: f32) -> Vec<f32> {
        let n = a.len();
        let mut out = vec![0.0f32; n];
        // SAFETY: j < n == len of both buffers.
        unsafe {
            let op = out.as_mut_ptr();
            let ap = a.as_ptr();
            let mut j = 0;
            while j + 4 <= n {
                *op.add(j) = *ap.add(j) * f;
                *op.add(j + 1) = *ap.add(j + 1) * f;
                *op.add(j + 2) = *ap.add(j + 2) * f;
                *op.add(j + 3) = *ap.add(j + 3) * f;
                j += 4;
            }
            while j < n {
                *op.add(j) = *ap.add(j) * f;
                j += 1;
            }
        }
        out
    }

    /// `out[i] = gelu(a[i])` into a fresh vector (tanh approximation —
    /// delegates to [`crate::exec::gelu`], the single source of truth).
    pub fn gelu(a: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; a.len()];
        // SAFETY: in-bounds walk.
        unsafe {
            let op = out.as_mut_ptr();
            let ap = a.as_ptr();
            for i in 0..a.len() {
                *op.add(i) = crate::exec::gelu(*ap.add(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BufferRole, ProgramBuilder, TileAccess, TileIndex, VarRef};

    #[test]
    fn backend_parsing_and_default() {
        assert_eq!(ExecBackend::default(), ExecBackend::Vectorized);
        assert_eq!(
            "interpreter".parse::<ExecBackend>().unwrap(),
            ExecBackend::Interpreter
        );
        assert_eq!(
            "VEC".parse::<ExecBackend>().unwrap(),
            ExecBackend::Vectorized
        );
        assert!("triton".parse::<ExecBackend>().is_err());
        assert_eq!(ExecBackend::Interpreter.to_string(), "interpreter");
    }

    #[test]
    fn fill_f32_matches_slice_fill() {
        for len in [0usize, 1, 2, 3, 7, 64, 129] {
            let mut a = vec![5.0f32; len];
            let mut b = vec![5.0f32; len];
            fill_f32(&mut a, -1.25);
            b.fill(-1.25);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn lanes_preserve_sequential_order() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.731).sin() * 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 1.17).cos() * 2.0).collect();
        let mut s_ref = 0.0f32;
        for i in 0..37 {
            s_ref += a[i] * b[i];
        }
        assert_eq!(lanes::dot(&a, &b), s_ref);
        assert_eq!(lanes::sum(&a), a.iter().sum::<f32>());
        let mut axpy_ref = b.clone();
        for i in 0..37 {
            axpy_ref[i] += 0.37 * a[i];
        }
        let mut axpy_got = b.clone();
        lanes::axpy(&mut axpy_got, &a, 0.37);
        assert_eq!(axpy_got, axpy_ref);
    }

    /// A clipped-edge matmul (dims not divisible by tiles) must be
    /// byte-identical across backends — the module's core contract, in
    /// miniature (the broad proptest lives in `tests/exec_backends.rs`).
    #[test]
    fn vectorized_matches_interpreter_on_clipped_matmul() {
        let (m, n, k) = (50u64, 34u64, 21u64);
        let (tm, tn, tk) = (16u64, 16u64, 16u64);
        let mut bld = ProgramBuilder::new("mm", DType::F32);
        let a_buf = bld.buffer("A", vec![m, k], DType::F16, BufferRole::Input);
        let b_buf = bld.buffer("B", vec![k, n], DType::F32, BufferRole::Input);
        let c_buf = bld.buffer("C", vec![m, n], DType::F16, BufferRole::Output);
        let sa = bld.smem("sA", tm, tk, DType::F16);
        let sb = bld.smem("sB", tk, tn, DType::F32);
        let sc = bld.smem("sC", tm, tn, DType::F32);
        let gm = bld.grid_dim(crate::kernel::ceil_div(m, tm));
        let gn = bld.grid_dim(crate::kernel::ceil_div(n, tn));
        let kl = bld.fresh_loop();
        let body = vec![
            BlockStmt::Fill {
                dst: sc,
                value: 0.0,
            },
            BlockStmt::Loop {
                handle: kl,
                extent: crate::kernel::ceil_div(k, tk),
                body: vec![
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: a_buf,
                            indices: vec![
                                TileIndex { var: gm, tile: tm },
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: tk,
                                },
                            ],
                        },
                        dst: sa,
                    },
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: b_buf,
                            indices: vec![
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: tk,
                                },
                                TileIndex { var: gn, tile: tn },
                            ],
                        },
                        dst: sb,
                    },
                    BlockStmt::Gemm {
                        a: sa,
                        b: sb,
                        acc: sc,
                        b_transposed: false,
                        acc_col: 0,
                    },
                ],
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: c_buf,
                    indices: vec![
                        TileIndex { var: gm, tile: tm },
                        TileIndex { var: gn, tile: tn },
                    ],
                },
                src: sc,
            },
        ];
        let p = bld.finish(body);
        assert_eq!(p.nest_class, NestClass::Reduction);
        let mut st_i = TensorStorage::for_program(&p);
        for (bi, t) in st_i.tensors.iter_mut().enumerate().take(2) {
            for (i, v) in t.data.iter_mut().enumerate() {
                *v = (((i * 7 + bi * 13) % 29) as f32 - 14.0) / 7.0;
            }
        }
        let mut st_v = st_i.clone();
        InterpreterExec.execute(&p, &mut st_i).unwrap();
        VectorizedExec.execute(&p, &mut st_v).unwrap();
        let (a, b) = (&st_i.tensors[2].data, &st_v.tensors[2].data);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
