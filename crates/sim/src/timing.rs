//! Microarchitectural timing model — the simulator's "measurement".
//!
//! This is the substitute for running a compiled kernel on real silicon.
//! It is deliberately *richer* than MCFuser's analytical model (Eqs. 2–5 of
//! the paper): it accounts for L2 caching of re-read tiles, tensor-core
//! utilization as a function of tile shape, double-buffering overlap, wave
//! quantization and per-SM bandwidth caps. The gap between this model and
//! the coarse analytical one is what produces the imperfect-but-useful
//! correlations of the paper's Fig. 11.
//!
//! The model is a throughput/latency roofline evaluated per wave:
//!
//! ```text
//! t_kernel = launch + Σ_waves max(t_compute, t_dram, t_l2, t_smem)
//! ```
//!
//! with per-wave resources scaled by how many SMs the wave actually
//! occupies — which is precisely the effect the paper's slowdown factor
//! α = (N_block + N_SM)/N_block approximates.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::kernel::{BlockStmt, BufId, TileProgram};
use crate::noise::noise_factor;

/// Which resource a kernel saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Tensor-core / ALU throughput limited.
    Compute,
    /// DRAM bandwidth limited.
    Dram,
    /// L2 bandwidth limited.
    L2,
    /// Shared-memory bandwidth limited.
    Smem,
    /// Too few blocks to fill the machine: serial block latency dominates.
    Latency,
}

/// Detailed measurement of one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelProfile {
    /// End-to-end kernel time in seconds (including launch overhead).
    pub time: f64,
    /// Total floating-point operations.
    pub flops: f64,
    /// Total global-memory bytes requested by the program.
    pub gmem_bytes: f64,
    /// Bytes actually served by DRAM (after L2 filtering).
    pub dram_bytes: f64,
    /// Bytes served by L2 hits.
    pub l2_bytes: f64,
    /// Shared-memory traffic (loads into + operand reads out of smem).
    pub smem_traffic_bytes: f64,
    /// Physical shared memory per block (padding + double buffers).
    pub smem_bytes_per_block: u64,
    /// Launch-grid size.
    pub blocks: u64,
    /// Blocks resident on the device at once.
    pub concurrent_blocks: u32,
    /// Number of waves.
    pub waves: u64,
    /// Dominant resource.
    pub bound: Bound,
    /// Whether load/compute overlap (double buffering) was in effect.
    pub pipelined: bool,
    /// Arithmetic intensity actually achieved (FLOP per DRAM byte).
    pub flops_per_dram_byte: f64,
    /// Achieved arithmetic throughput, FLOP/s.
    pub achieved_flops: f64,
}

/// Options controlling a measurement.
#[derive(Debug, Clone, Default)]
pub struct MeasureOpts {
    /// Buffers assumed resident in L2 from a previous kernel in the same
    /// sequence (their first read hits L2 instead of DRAM). Used by the
    /// unfused baselines to model producer→consumer reuse across launches.
    pub l2_resident: Vec<BufId>,
}

/// Tensor-core (or FMA-pipe) utilization as a function of tile shape.
///
/// Small tiles cannot fill the MMA pipeline: a 16×16×16 tile reaches only
/// ~18 % of peak while 128×128×32 is treated as saturating. The functional
/// form `t/(t+c)` per dimension is a standard pipeline-fill model.
pub fn mma_efficiency(tm: u64, tn: u64, tk: u64) -> f64 {
    #[inline]
    fn f(t: f64, c: f64) -> f64 {
        t / (t + c)
    }
    let raw = f(tm as f64, 24.0) * f(tn as f64, 24.0) * f(tk as f64, 12.0);
    let norm = f(128.0, 24.0) * f(128.0, 24.0) * f(32.0, 12.0);
    // Very large accumulator tiles spill registers: mild penalty.
    let spill = if tm * tn > 128 * 256 { 0.88 } else { 1.0 };
    (raw / norm).min(1.0) * spill
}

/// Per-block statistics collected by walking the program.
#[derive(Debug, Default, Clone)]
struct BlockStats {
    /// Global bytes loaded per block, per buffer.
    load_bytes: FxHashMap<BufId, f64>,
    /// Global bytes stored per block, per buffer.
    store_bytes: FxHashMap<BufId, f64>,
    /// (flops, efficiency) of each GEMM × its trip count.
    gemm_flops: Vec<(f64, f64)>,
    /// Element-wise / softmax FLOPs (run on the FP32 pipe).
    misc_flops: f64,
    /// Shared-memory bytes moved (tile fills + operand reads).
    smem_traffic: f64,
    /// Total loop iterations executed (instruction-issue overhead proxy).
    iterations: f64,
    /// Whether every load target is double buffered (enables overlap).
    all_loads_buffered: bool,
    any_load: bool,
}

fn walk(p: &TileProgram, stmts: &[BlockStmt], trips: f64, st: &mut BlockStats) {
    for s in stmts {
        match s {
            BlockStmt::Loop { extent, body, .. } => {
                st.iterations += trips * *extent as f64;
                walk(p, body, trips * *extent as f64, st);
            }
            BlockStmt::Load { src, dst } => {
                let d = &p.smem[dst.0];
                // Global traffic moves the buffer's *storage* precision;
                // the conversion to the tile's precision happens in
                // registers on the way into shared memory.
                let gmem =
                    (d.rows * d.cols * p.buffers[src.buf.0].dtype.size_bytes()) as f64 * trips;
                *st.load_bytes.entry(src.buf).or_default() += gmem;
                st.any_load = true;
                if d.streamed {
                    // Global->register stream: no smem staging, and the
                    // cp.async pipeline overlaps it like a buffered load.
                } else {
                    let bytes = (d.rows * d.cols * d.dtype.size_bytes()) as f64 * trips;
                    st.smem_traffic += bytes;
                    if !d.double_buffered {
                        st.all_loads_buffered = false;
                    }
                }
            }
            BlockStmt::Store { dst, src } => {
                let d = &p.smem[src.0];
                let bytes =
                    (d.rows * d.cols * p.buffers[dst.buf.0].dtype.size_bytes()) as f64 * trips;
                *st.store_bytes.entry(dst.buf).or_default() += bytes;
                st.smem_traffic += bytes;
            }
            BlockStmt::Gemm {
                a, b, b_transposed, ..
            } => {
                let (da, db) = (&p.smem[a.0], &p.smem[b.0]);
                let (m, k) = (da.rows, da.cols);
                // A chunked final stage writes a column slice of the
                // accumulator, so the MAC count follows the B tile.
                let n = if *b_transposed { db.rows } else { db.cols };
                let flops = 2.0 * (m * n * k) as f64 * trips;
                st.gemm_flops.push((flops, mma_efficiency(m, n, k)));
                // Operand reads from smem (accumulator lives in registers).
                // A streamed B panel is already in registers and costs no
                // smem bandwidth.
                let dt = p.dtype.size_bytes() as f64;
                let operands = if db.streamed {
                    (m * k) as f64
                } else {
                    (m * k) as f64 + (k * n) as f64
                };
                st.smem_traffic += operands * dt * trips * (1.0 + n as f64 / 256.0).min(2.0);
            }
            BlockStmt::OnlineSoftmax { scores, .. } => {
                let d = &p.smem[scores.0];
                st.misc_flops += 6.0 * (d.rows * d.cols) as f64 * trips;
            }
            BlockStmt::Gelu { target } => {
                // tanh + polynomial: markedly heavier than a ReLU.
                let d = &p.smem[target.0];
                st.misc_flops += 8.0 * (d.rows * d.cols) as f64 * trips;
            }
            BlockStmt::RowDiv { target, .. }
            | BlockStmt::Relu { target }
            | BlockStmt::Scale { target, .. }
            | BlockStmt::Exp { target }
            | BlockStmt::AddBias { target, .. }
            | BlockStmt::AddTile { target, .. } => {
                let d = &p.smem[target.0];
                st.misc_flops += (d.rows * d.cols) as f64 * trips;
            }
            BlockStmt::Fill { dst, .. } => {
                let d = &p.smem[dst.0];
                st.misc_flops += 0.25 * (d.rows * d.cols) as f64 * trips;
            }
            BlockStmt::Quantize { target, .. } => {
                let d = &p.smem[target.0];
                st.misc_flops += (d.rows * d.cols) as f64 * trips;
            }
            BlockStmt::RowNormStats {
                a,
                residual,
                rows,
                cols,
                ..
            } => {
                // Two raw passes over the full rows, straight from global
                // memory at each operand's storage precision (the stitched
                // prologue's extra traffic).
                let pass = |buf: BufId| (rows * cols * p.buffers[buf.0].dtype.size_bytes()) as f64;
                *st.load_bytes.entry(a.buf).or_default() += pass(a.buf) * trips * 2.0;
                if let Some(res) = residual {
                    *st.load_bytes.entry(res.buf).or_default() += pass(res.buf) * trips * 2.0;
                }
                st.misc_flops += 4.0 * (rows * cols) as f64 * trips;
            }
            BlockStmt::NormalizeTile { target, .. } => {
                let d = &p.smem[target.0];
                st.misc_flops += 4.0 * (d.rows * d.cols) as f64 * trips;
                st.smem_traffic += (d.rows * d.cols * 4) as f64 * trips;
            }
            BlockStmt::AddGlobal { target, src } => {
                let d = &p.smem[target.0];
                let bytes =
                    (d.rows * d.cols * p.buffers[src.buf.0].dtype.size_bytes()) as f64 * trips;
                *st.load_bytes.entry(src.buf).or_default() += bytes;
                st.misc_flops += (d.rows * d.cols) as f64 * trips;
            }
            BlockStmt::AddRecomputedNorm {
                target,
                a,
                residual,
                ..
            } => {
                let d = &p.smem[target.0];
                let tile = (d.rows * d.cols) as f64 * trips;
                *st.load_bytes.entry(a.buf).or_default() +=
                    tile * p.buffers[a.buf.0].dtype.size_bytes() as f64;
                if let Some(res) = residual {
                    *st.load_bytes.entry(res.buf).or_default() +=
                        tile * p.buffers[res.buf.0].dtype.size_bytes() as f64;
                }
                st.misc_flops += 5.0 * tile;
            }
            BlockStmt::LayerNormTile { target, .. } => {
                let d = &p.smem[target.0];
                st.misc_flops += 8.0 * (d.rows * d.cols) as f64 * trips;
                st.smem_traffic += (d.rows * d.cols * 4) as f64 * trips;
            }
        }
    }
}

/// Measure a kernel (deterministic; no noise).
pub fn measure(p: &TileProgram, dev: &DeviceSpec) -> KernelProfile {
    measure_opts(p, dev, &MeasureOpts::default())
}

/// Measure a kernel with measurement noise derived from `seed` — this is
/// what "running the candidate on hardware" returns to the tuners.
pub fn measure_noisy(p: &TileProgram, dev: &DeviceSpec, seed: u64) -> KernelProfile {
    let mut prof = measure(p, dev);
    prof.time *= noise_factor(seed, hash_program(p));
    prof
}

/// Stable hash of a program used to seed per-candidate noise.
pub fn hash_program(p: &TileProgram) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = rustc_hash::FxHasher::default();
    p.name.hash(&mut h);
    p.grid.hash(&mut h);
    for s in &p.smem {
        s.rows.hash(&mut h);
        s.cols.hash(&mut h);
        s.double_buffered.hash(&mut h);
    }
    h.finish()
}

/// Measure with explicit options (L2-residency hints for kernel sequences).
pub fn measure_opts(p: &TileProgram, dev: &DeviceSpec, opts: &MeasureOpts) -> KernelProfile {
    let mut st = BlockStats {
        all_loads_buffered: true,
        ..Default::default()
    };
    walk(p, &p.body, 1.0, &mut st);

    let blocks = p.num_blocks();
    let nb = blocks as f64;
    let smem_bytes = p.smem_bytes();
    let conc = dev.concurrent_blocks(smem_bytes);

    // ---- Global-memory traffic with L2 filtering -----------------------
    // Unique bytes of each buffer can be read from DRAM at most once; the
    // remainder are re-reads that hit L2 if the working set fits.
    let mut dram_bytes = 0.0;
    let mut l2_bytes = 0.0;
    let mut total_gmem = 0.0;
    let mut working_set = 0.0;
    for (&buf, &per_block) in &st.load_bytes {
        let total = per_block * nb;
        total_gmem += total;
        working_set += p.buffers[buf.0].bytes() as f64;
    }
    let l2_eff = 0.8 * dev.l2_bytes as f64;
    let miss = if working_set <= l2_eff {
        0.0
    } else {
        1.0 - l2_eff / working_set
    };
    // Blocks of a wave are dispatched in grid order and share slabs of the
    // operand tensors, so even a capacity-missing working set enjoys strong
    // wave-local reuse; discount the modeled misses accordingly.
    const WAVE_LOCALITY: f64 = 0.35;
    let miss = miss * WAVE_LOCALITY;
    for (&buf, &per_block) in &st.load_bytes {
        let total = per_block * nb;
        let unique = (p.buffers[buf.0].bytes() as f64).min(total);
        let rereads = total - unique;
        let resident = opts.l2_resident.contains(&buf) && working_set <= l2_eff;
        if resident {
            // Producer output still hot in L2: first read hits too.
            l2_bytes += total;
        } else {
            dram_bytes += unique + rereads * miss;
            l2_bytes += rereads * (1.0 - miss);
        }
    }
    for &per_block in st.store_bytes.values() {
        let total = per_block * nb;
        total_gmem += total;
        dram_bytes += total;
    }

    // Per-block FLOPs; totals are scaled by the block count below.
    let flops_block: f64 = st.gemm_flops.iter().map(|(f, _)| f).sum::<f64>() + st.misc_flops;
    let flops = flops_block * nb;

    // ---- Per-block compute time on an exclusive SM ----------------------
    let p_sm = dev.peak_flops(p.dtype) / dev.num_sms as f64;
    let p32_sm = dev.peak_fp32_flops / dev.num_sms as f64;
    let mut t_comp_block = 0.0;
    for (f, eff) in &st.gemm_flops {
        t_comp_block += f / (p_sm * eff.max(1e-3));
    }
    t_comp_block += st.misc_flops / p32_sm;
    // Loop/issue overhead: a few cycles of address arithmetic and barrier
    // per tile-loop iteration (penalizes very deep tiny-tile loops).
    t_comp_block += st.iterations * 3e-9;

    let pipelined = st.any_load && st.all_loads_buffered;

    // ---- Wave model ------------------------------------------------------
    let per_block_dram = dram_bytes / nb;
    let per_block_l2 = l2_bytes / nb;
    let per_block_smem = st.smem_traffic;

    // A single SM cannot saturate DRAM: cap how much bandwidth a given
    // number of active SMs can pull (~4× its proportional share).
    let per_sm_dram = dev.effective_bandwidth() * 4.0 / dev.num_sms as f64;
    let per_sm_l2 = dev.l2_bandwidth * 3.0 / dev.num_sms as f64;

    let wave_time = |wave_blocks: f64| -> (f64, Bound) {
        if wave_blocks <= 0.0 {
            return (0.0, Bound::Latency);
        }
        let sms = wave_blocks.min(dev.num_sms as f64);
        let blocks_per_sm = wave_blocks / sms;
        let t_comp = t_comp_block * blocks_per_sm;
        let dram_bw = dev.effective_bandwidth().min(sms * per_sm_dram);
        let l2_bw = dev.l2_bandwidth.min(sms * per_sm_l2);
        let t_dram = wave_blocks * per_block_dram / dram_bw;
        let t_l2 = wave_blocks * per_block_l2 / l2_bw;
        let t_smem = wave_blocks * per_block_smem / (sms * dev.smem_bandwidth_per_sm);
        let mem_bound = if t_dram >= t_l2 {
            Bound::Dram
        } else {
            Bound::L2
        };
        let t_total = if pipelined {
            t_comp.max(t_dram + t_l2).max(t_smem)
        } else {
            (t_comp + t_dram + t_l2).max(t_smem)
        };
        let bound = if t_total <= t_comp * 1.001 {
            Bound::Compute
        } else if t_total <= (t_dram + t_l2) * 1.001 {
            mem_bound
        } else if t_total <= t_smem * 1.001 {
            Bound::Smem
        } else {
            Bound::Compute
        };
        (t_total, bound)
    };

    let conc_f = conc as f64;
    let full_waves = (nb / conc_f).floor();
    let rem = nb - full_waves * conc_f;
    let waves = full_waves as u64 + u64::from(rem > 0.0);
    let (t_full, bound_full) = wave_time(conc_f);
    let (t_rem, bound_rem) = wave_time(rem);
    let mut body = full_waves * t_full + t_rem;
    let mut bound = if full_waves > 0.0 {
        bound_full
    } else {
        bound_rem
    };

    // Latency floor: a kernel can never beat one block's serial time.
    let single_block_floor = {
        let bw = per_sm_dram.min(dev.effective_bandwidth());
        let t_mem = per_block_dram / bw + per_block_l2 / per_sm_l2;
        if pipelined {
            t_comp_block.max(t_mem)
        } else {
            t_comp_block + t_mem
        }
    };
    if body < single_block_floor {
        body = single_block_floor;
        bound = Bound::Latency;
    }

    let time = dev.launch_overhead + body;
    KernelProfile {
        time,
        flops,
        gmem_bytes: total_gmem,
        dram_bytes,
        l2_bytes,
        smem_traffic_bytes: per_block_smem * nb,
        smem_bytes_per_block: smem_bytes,
        blocks,
        concurrent_blocks: conc,
        waves,
        bound,
        pipelined,
        flops_per_dram_byte: if dram_bytes > 0.0 {
            flops / dram_bytes
        } else {
            f64::INFINITY
        },
        achieved_flops: if time > 0.0 { flops / time } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::kernel::{BlockStmt, BufferRole, ProgramBuilder, TileAccess, TileIndex, VarRef};

    /// Grid-tiled matmul used throughout the timing tests.
    fn matmul_program(
        m: u64,
        n: u64,
        k: u64,
        tm: u64,
        tn: u64,
        tk: u64,
        double_buffer: bool,
    ) -> TileProgram {
        let mut b = ProgramBuilder::new("mm", DType::F16);
        let a_buf = b.buffer("A", vec![m, k], DType::F16, BufferRole::Input);
        let b_buf = b.buffer("B", vec![k, n], DType::F16, BufferRole::Input);
        let c_buf = b.buffer("C", vec![m, n], DType::F16, BufferRole::Output);
        let sa = b.smem_with("sA", tm, tk, DType::F16, 0, double_buffer);
        let sb = b.smem_with("sB", tk, tn, DType::F16, 0, double_buffer);
        let sc = b.smem("sC", tm, tn, DType::F32);
        let gm = b.grid_dim(crate::kernel::ceil_div(m, tm));
        let gn = b.grid_dim(crate::kernel::ceil_div(n, tn));
        let kl = b.fresh_loop();
        let body = vec![
            BlockStmt::Fill {
                dst: sc,
                value: 0.0,
            },
            BlockStmt::Loop {
                handle: kl,
                extent: crate::kernel::ceil_div(k, tk),
                body: vec![
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: a_buf,
                            indices: vec![
                                TileIndex { var: gm, tile: tm },
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: tk,
                                },
                            ],
                        },
                        dst: sa,
                    },
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: b_buf,
                            indices: vec![
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: tk,
                                },
                                TileIndex { var: gn, tile: tn },
                            ],
                        },
                        dst: sb,
                    },
                    BlockStmt::Gemm {
                        a: sa,
                        b: sb,
                        acc: sc,
                        b_transposed: false,
                        acc_col: 0,
                    },
                ],
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: c_buf,
                    indices: vec![
                        TileIndex { var: gm, tile: tm },
                        TileIndex { var: gn, tile: tn },
                    ],
                },
                src: sc,
            },
        ];
        b.finish(body)
    }

    #[test]
    fn large_square_gemm_is_near_peak() {
        // 4096³ f16 GEMM with good tiles should land within 2-5x of peak
        // tensor throughput on the A100 model (real cublas reaches ~85%).
        let p = matmul_program(4096, 4096, 4096, 128, 128, 32, true);
        let prof = measure(&p, &DeviceSpec::a100());
        let frac = prof.achieved_flops / DeviceSpec::a100().peak_tensor_flops;
        assert!(frac > 0.4, "achieved fraction {frac}");
        assert!(frac <= 1.0);
    }

    #[test]
    fn skinny_k_gemm_is_memory_bound() {
        // K=16: heavy output traffic, little compute.
        let p = matmul_program(4096, 4096, 16, 128, 128, 16, true);
        let prof = measure(&p, &DeviceSpec::a100());
        assert!(
            matches!(prof.bound, Bound::Dram | Bound::L2),
            "{:?}",
            prof.bound
        );
        let tf = prof.achieved_flops / 1e12;
        assert!(tf < 80.0, "throughput {tf} TFLOPS should be far below peak");
    }

    #[test]
    fn throughput_falls_as_k_shrinks() {
        // The Fig. 2 shape: constant M·N·K, decreasing K ⇒ lower TFLOPS.
        let dev = DeviceSpec::a100();
        let t1 =
            measure(&matmul_program(1024, 1024, 1024, 128, 128, 32, true), &dev).achieved_flops;
        let t2 = measure(&matmul_program(2048, 2048, 256, 128, 128, 32, true), &dev).achieved_flops;
        let t3 = measure(&matmul_program(4096, 4096, 64, 128, 128, 32, true), &dev).achieved_flops;
        assert!(t1 > t2, "{t1} {t2}");
        assert!(t2 > t3, "{t2} {t3}");
    }

    #[test]
    fn tiny_tiles_are_slower() {
        let dev = DeviceSpec::a100();
        let good = measure(&matmul_program(1024, 1024, 1024, 128, 128, 32, true), &dev);
        let bad = measure(&matmul_program(1024, 1024, 1024, 16, 16, 16, true), &dev);
        assert!(
            bad.time > 1.5 * good.time,
            "good {} bad {}",
            good.time,
            bad.time
        );
    }

    #[test]
    fn double_buffering_helps_memory_bound_kernels() {
        let dev = DeviceSpec::a100();
        let nodb = measure(&matmul_program(2048, 2048, 128, 64, 64, 32, false), &dev);
        let db = measure(&matmul_program(2048, 2048, 128, 64, 64, 32, true), &dev);
        assert!(db.time <= nodb.time);
        assert!(db.pipelined && !nodb.pipelined);
    }

    #[test]
    fn few_blocks_hit_latency_bound() {
        // One block cannot use the whole machine.
        let p = matmul_program(128, 128, 4096, 128, 128, 32, true);
        let prof = measure(&p, &DeviceSpec::a100());
        assert_eq!(prof.blocks, 1);
        // Far below peak because only one SM works.
        let frac = prof.achieved_flops / DeviceSpec::a100().peak_tensor_flops;
        assert!(frac < 0.05, "{frac}");
    }

    #[test]
    fn wave_quantization_visible() {
        let dev = DeviceSpec::a100();
        let p = matmul_program(4096, 4096, 512, 128, 128, 32, true);
        let prof = measure(&p, &dev);
        assert_eq!(prof.blocks, 32 * 32);
        assert!(prof.waves >= 1);
        assert!(prof.concurrent_blocks > 0);
    }

    #[test]
    fn l2_filters_rereads_of_small_buffers() {
        // 1024³: A and B (2 MiB each) fit L2, so DRAM traffic must be far
        // below total requested traffic.
        let p = matmul_program(1024, 1024, 1024, 128, 128, 32, true);
        let prof = measure(&p, &DeviceSpec::a100());
        assert!(
            prof.dram_bytes < 0.3 * prof.gmem_bytes,
            "dram {} vs gmem {}",
            prof.dram_bytes,
            prof.gmem_bytes
        );
    }

    #[test]
    fn l2_resident_hint_reduces_dram() {
        let p = matmul_program(512, 512, 512, 64, 64, 32, true);
        let dev = DeviceSpec::a100();
        let cold = measure(&p, &dev);
        let hot = measure_opts(
            &p,
            &dev,
            &MeasureOpts {
                l2_resident: vec![BufId(0)],
            },
        );
        assert!(hot.dram_bytes < cold.dram_bytes);
    }

    #[test]
    fn noise_is_small_and_deterministic() {
        let p = matmul_program(512, 512, 512, 64, 64, 32, true);
        let dev = DeviceSpec::a100();
        let base = measure(&p, &dev).time;
        let n1 = measure_noisy(&p, &dev, 42).time;
        let n2 = measure_noisy(&p, &dev, 42).time;
        assert_eq!(n1, n2);
        assert!((n1 / base - 1.0).abs() < 0.05);
    }

    #[test]
    fn mma_efficiency_monotone_and_bounded() {
        assert!(mma_efficiency(16, 16, 16) < mma_efficiency(64, 64, 32));
        assert!(mma_efficiency(64, 64, 32) < mma_efficiency(128, 128, 32));
        assert!(mma_efficiency(128, 128, 32) <= 1.0);
        assert!(mma_efficiency(256, 256, 64) <= 1.0);
        assert!(mma_efficiency(16, 16, 16) > 0.05);
    }

    #[test]
    fn rtx3080_slower_than_a100() {
        let p = matmul_program(2048, 2048, 2048, 128, 128, 32, true);
        let a = measure(&p, &DeviceSpec::a100()).time;
        let r = measure(&p, &DeviceSpec::rtx3080()).time;
        assert!(r > a, "a100 {a} rtx {r}");
    }
}
