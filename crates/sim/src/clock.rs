//! Virtual tuning clock — reproduces the paper's Table IV cost accounting.
//!
//! The dominant costs of auto-tuning on real systems are (a) compiling each
//! measured candidate, (b) running it enough times for a stable timing, and
//! (c) for ML-cost-model tuners like Ansor, retraining the model every
//! round. MCFuser is fast because its analytical model makes (a)+(b) rare
//! and (c) nonexistent. We charge each of these events to a virtual clock
//! with costs calibrated to the toolchains the paper used, so the *ratios*
//! of Table IV (e.g. 139× vs. Ansor) emerge from the same mechanism as on
//! real hardware, without hours of wall time.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Per-toolchain costs of tuning events, in (virtual) seconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostProfile {
    /// Compiling one candidate kernel.
    pub compile_seconds: f64,
    /// Fixed per-measurement overhead (device sync, data setup).
    pub measure_overhead_seconds: f64,
    /// Number of timed repetitions per measurement.
    pub measure_repeats: u32,
    /// Retraining the cost model once (0 for analytical models).
    pub train_seconds: f64,
}

impl CostProfile {
    /// Triton JIT path used by MCFuser (fast compiles, no training).
    pub fn triton() -> Self {
        CostProfile {
            compile_seconds: 1.6,
            measure_overhead_seconds: 0.25,
            measure_repeats: 100,
            train_seconds: 0.0,
        }
    }

    /// TVM/Ansor path: full CUDA codegen per candidate + XGBoost retrains
    /// (calibrated so 1000 trials land near the paper's ~4900 s, Table IV).
    pub fn ansor() -> Self {
        CostProfile {
            compile_seconds: 3.4,
            measure_overhead_seconds: 0.5,
            measure_repeats: 100,
            train_seconds: 16.0,
        }
    }

    /// BOLT: CUTLASS template instantiation (heavy C++ compiles — real
    /// CUTLASS kernels take several seconds each to build).
    pub fn cutlass() -> Self {
        CostProfile {
            compile_seconds: 7.0,
            measure_overhead_seconds: 0.3,
            measure_repeats: 100,
            train_seconds: 0.0,
        }
    }

    /// Relay: no per-shape tuning, just template lookup + one build.
    pub fn relay() -> Self {
        CostProfile {
            compile_seconds: 0.8,
            measure_overhead_seconds: 0.2,
            measure_repeats: 20,
            train_seconds: 0.0,
        }
    }
}

/// Counters of a finished tuning session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TuningReport {
    /// Accumulated virtual tuning time.
    pub virtual_seconds: f64,
    /// Candidate kernels compiled.
    pub compiles: u64,
    /// Hardware measurements performed.
    pub measurements: u64,
    /// Cost-model training rounds.
    pub train_rounds: u64,
    /// Analytical estimates issued (free).
    pub estimates: u64,
}

/// A thread-safe virtual clock (tuners measure candidates from Rayon
/// worker threads).
#[derive(Debug, Default)]
pub struct TuningClock {
    inner: Mutex<TuningReport>,
}

impl TuningClock {
    /// Create an empty clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one candidate compilation.
    pub fn charge_compile(&self, cost: &CostProfile) {
        let mut g = self.inner.lock();
        g.compiles += 1;
        g.virtual_seconds += cost.compile_seconds;
    }

    /// Charge one hardware measurement of a kernel with the given runtime.
    pub fn charge_measurement(&self, cost: &CostProfile, kernel_seconds: f64) {
        let mut g = self.inner.lock();
        g.measurements += 1;
        g.virtual_seconds +=
            cost.measure_overhead_seconds + cost.measure_repeats as f64 * kernel_seconds;
    }

    /// Charge one cost-model training round.
    pub fn charge_training(&self, cost: &CostProfile) {
        let mut g = self.inner.lock();
        g.train_rounds += 1;
        g.virtual_seconds += cost.train_seconds;
    }

    /// Record an analytical estimate (free, but counted).
    pub fn note_estimate(&self) {
        self.inner.lock().estimates += 1;
    }

    /// Charge an arbitrary fixed cost (e.g. graph-level passes).
    pub fn charge_fixed(&self, seconds: f64) {
        self.inner.lock().virtual_seconds += seconds;
    }

    /// Fold another session's counters into this clock (used by the
    /// engine layer, which tunes each chain on its own local clock and
    /// merges the results so parallel tuning stays deterministic).
    pub fn absorb(&self, other: &TuningReport) {
        let mut g = self.inner.lock();
        g.virtual_seconds += other.virtual_seconds;
        g.compiles += other.compiles;
        g.measurements += other.measurements;
        g.train_rounds += other.train_rounds;
        g.estimates += other.estimates;
    }

    /// Snapshot the counters.
    pub fn report(&self) -> TuningReport {
        self.inner.lock().clone()
    }

    /// Total virtual seconds so far.
    pub fn virtual_seconds(&self) -> f64 {
        self.inner.lock().virtual_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_cost_scales_with_kernel_time() {
        let clock = TuningClock::new();
        let cost = CostProfile::triton();
        clock.charge_measurement(&cost, 1e-3);
        let t1 = clock.virtual_seconds();
        clock.charge_measurement(&cost, 2e-3);
        let t2 = clock.virtual_seconds() - t1;
        assert!(t2 > t1 - cost.measure_overhead_seconds);
        assert!((t1 - (0.25 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn ansor_training_dominates_many_rounds() {
        let clock = TuningClock::new();
        let cost = CostProfile::ansor();
        for _ in 0..10 {
            clock.charge_training(&cost);
        }
        assert!((clock.virtual_seconds() - 160.0).abs() < 1e-9);
        assert_eq!(clock.report().train_rounds, 10);
    }

    #[test]
    fn estimates_are_free() {
        let clock = TuningClock::new();
        for _ in 0..1000 {
            clock.note_estimate();
        }
        assert_eq!(clock.virtual_seconds(), 0.0);
        assert_eq!(clock.report().estimates, 1000);
    }

    #[test]
    fn concurrent_charges_are_safe() {
        let clock = std::sync::Arc::new(TuningClock::new());
        let cost = CostProfile::triton();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = clock.clone();
                let cost = cost.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.charge_compile(&cost);
                    }
                });
            }
        });
        assert_eq!(clock.report().compiles, 800);
    }
}
