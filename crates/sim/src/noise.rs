//! Deterministic measurement jitter.
//!
//! Real kernel timings fluctuate a few percent between runs (clock
//! boosting, DVFS, scheduling). The tuning algorithms in the paper are
//! designed around this — e.g. Algorithm 1's convergence threshold ε exists
//! because two measurements of the same candidate differ. We reproduce the
//! effect *deterministically*: the jitter is a pure function of
//! `(seed, kernel identity)`, so experiments are reproducible bit-for-bit
//! while scatter plots still look like hardware data.

/// Relative noise amplitude (±3 %).
pub const NOISE_AMPLITUDE: f64 = 0.03;

/// SplitMix64 — a tiny, high-quality mixing function.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A multiplicative noise factor in `[1-A, 1+A]`, deterministic in its
/// inputs.
pub fn noise_factor(seed: u64, kernel_hash: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(kernel_hash));
    // Map to [0,1) with 53-bit precision.
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + NOISE_AMPLITUDE * (2.0 * u - 1.0)
}

/// A deterministic uniform sample in `[0,1)` (used for scatter dithering).
pub fn unit_sample(seed: u64, salt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(salt));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_in_range() {
        for s in 0..2000u64 {
            let f = noise_factor(s, s.wrapping_mul(7919));
            assert!((1.0 - NOISE_AMPLITUDE..=1.0 + NOISE_AMPLITUDE).contains(&f));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(noise_factor(1, 2), noise_factor(1, 2));
        assert_ne!(noise_factor(1, 2), noise_factor(1, 3));
    }

    #[test]
    fn mean_is_near_one() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| noise_factor(i, 0xDEAD_BEEF)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.002, "mean {mean}");
    }

    #[test]
    fn unit_sample_in_unit_interval() {
        for s in 0..100 {
            let u = unit_sample(s, 13);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
