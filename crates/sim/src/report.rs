//! Human-readable kernel reports — the `nsight`-style breakdown a
//! downstream user asks for when a fused kernel misbehaves.
//!
//! [`explain`] renders a [`TileProgram`]'s structure (grid, shared-memory
//! plan, per-block statement listing with trip counts) together with the
//! timing model's verdict: where the bytes go, which resource binds, how
//! many waves the grid needs.

use crate::device::DeviceSpec;
use crate::kernel::{BlockStmt, TileProgram};
use crate::timing::{measure, Bound};

/// Render the per-block statement tree with trip counts.
fn render_stmts(p: &TileProgram, stmts: &[BlockStmt], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            BlockStmt::Loop { extent, body, .. } => {
                out.push_str(&format!("{pad}for _ in 0..{extent}:\n"));
                render_stmts(p, body, indent + 1, out);
            }
            BlockStmt::Load { src, dst } => {
                let d = &p.smem[dst.0];
                out.push_str(&format!(
                    "{pad}{} {} <- {} tile {}x{} ({} B)\n",
                    if d.streamed { "stream" } else { "load" },
                    d.name,
                    p.buffers[src.buf.0].name,
                    d.rows,
                    d.cols,
                    d.rows * d.cols * d.dtype.size_bytes()
                ));
            }
            BlockStmt::Store { dst, src } => {
                let d = &p.smem[src.0];
                out.push_str(&format!(
                    "{pad}store {} -> {} tile {}x{}\n",
                    d.name, p.buffers[dst.buf.0].name, d.rows, d.cols
                ));
            }
            BlockStmt::Gemm {
                a,
                b,
                acc,
                b_transposed,
                acc_col,
            } => {
                let (da, db, dacc) = (&p.smem[a.0], &p.smem[b.0], &p.smem[acc.0]);
                let n = if *b_transposed { db.rows } else { db.cols };
                let at = if *acc_col > 0 {
                    format!(" @col {acc_col}")
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "{pad}mma {}{at} += {} x {}   [{}x{}x{}]\n",
                    dacc.name, da.name, db.name, da.rows, n, da.cols
                ));
            }
            BlockStmt::Fill { dst, value } => {
                out.push_str(&format!("{pad}fill {} = {value}\n", p.smem[dst.0].name));
            }
            BlockStmt::OnlineSoftmax { scores, .. } => {
                out.push_str(&format!(
                    "{pad}online-softmax over {}\n",
                    p.smem[scores.0].name
                ));
            }
            BlockStmt::RowDiv { target, .. } => {
                out.push_str(&format!("{pad}row-normalize {}\n", p.smem[target.0].name));
            }
            BlockStmt::Relu { target } => {
                out.push_str(&format!("{pad}relu {}\n", p.smem[target.0].name));
            }
            BlockStmt::Gelu { target } => {
                out.push_str(&format!("{pad}gelu {}\n", p.smem[target.0].name));
            }
            BlockStmt::AddTile { target, other } => {
                out.push_str(&format!(
                    "{pad}add {} += {}\n",
                    p.smem[target.0].name, p.smem[other.0].name
                ));
            }
            BlockStmt::Scale { target, factor } => {
                out.push_str(&format!(
                    "{pad}scale {} *= {factor}\n",
                    p.smem[target.0].name
                ));
            }
            BlockStmt::AddBias { target, .. } => {
                out.push_str(&format!("{pad}bias {}\n", p.smem[target.0].name));
            }
            BlockStmt::Exp { target } => {
                out.push_str(&format!("{pad}exp {}\n", p.smem[target.0].name));
            }
            BlockStmt::Quantize { target, dtype } => {
                out.push_str(&format!(
                    "{pad}quantize {} -> {:?}\n",
                    p.smem[target.0].name, dtype
                ));
            }
            BlockStmt::RowNormStats { a, rows, cols, .. } => {
                out.push_str(&format!(
                    "{pad}rownorm-stats over {} rows x {} cols of {}\n",
                    rows, cols, p.buffers[a.buf.0].name
                ));
            }
            BlockStmt::NormalizeTile { target, .. } => {
                out.push_str(&format!("{pad}normalize {}\n", p.smem[target.0].name));
            }
            BlockStmt::AddGlobal { target, src } => {
                out.push_str(&format!(
                    "{pad}add-global {} += {}\n",
                    p.smem[target.0].name, p.buffers[src.buf.0].name
                ));
            }
            BlockStmt::AddRecomputedNorm { target, a, .. } => {
                out.push_str(&format!(
                    "{pad}add-recomputed-norm {} += LN({})\n",
                    p.smem[target.0].name, p.buffers[a.buf.0].name
                ));
            }
            BlockStmt::LayerNormTile { target, .. } => {
                out.push_str(&format!("{pad}layernorm {}\n", p.smem[target.0].name));
            }
        }
    }
}

/// Produce a multi-line report of a kernel's structure and its modeled
/// performance on a device.
pub fn explain(p: &TileProgram, dev: &DeviceSpec) -> String {
    let prof = measure(p, dev);
    let mut out = String::new();
    out.push_str(&format!("kernel {}\n", p.name));
    out.push_str(&format!(
        "grid {:?} = {} blocks ({} concurrent, {} wave{})\n",
        p.grid,
        prof.blocks,
        prof.concurrent_blocks,
        prof.waves,
        if prof.waves == 1 { "" } else { "s" }
    ));
    out.push_str(&format!(
        "shared memory {} B / {} B per block{}\n",
        prof.smem_bytes_per_block,
        dev.smem_per_block,
        if prof.pipelined {
            " (double buffered)"
        } else {
            ""
        }
    ));
    out.push_str("per-block program:\n");
    render_stmts(p, &p.body, 1, &mut out);
    out.push_str(&format!(
        "traffic: {:.1} KiB requested, {:.1} KiB DRAM, {:.1} KiB L2\n",
        prof.gmem_bytes / 1024.0,
        prof.dram_bytes / 1024.0,
        prof.l2_bytes / 1024.0
    ));
    out.push_str(&format!(
        "compute: {:.2} MFLOP at {:.1} TFLOPS achieved\n",
        prof.flops / 1e6,
        prof.achieved_flops / 1e12
    ));
    let bound = match prof.bound {
        Bound::Compute => "compute",
        Bound::Dram => "DRAM bandwidth",
        Bound::L2 => "L2 bandwidth",
        Bound::Smem => "shared-memory bandwidth",
        Bound::Latency => "block latency (low occupancy)",
    };
    out.push_str(&format!(
        "time {:.2} us on {} — bound by {}\n",
        prof.time * 1e6,
        dev.name,
        bound
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::kernel::{BufferRole, ProgramBuilder, TileAccess, TileIndex, VarRef};

    fn demo_program() -> TileProgram {
        let mut b = ProgramBuilder::new("demo", DType::F16);
        let x = b.buffer("X", vec![128, 64], DType::F16, BufferRole::Input);
        let w = b.buffer("W", vec![64, 128], DType::F16, BufferRole::Input);
        let o = b.buffer("O", vec![128, 128], DType::F16, BufferRole::Output);
        let sx = b.smem("sX", 64, 32, DType::F16);
        let sw = b.smem("sW", 32, 64, DType::F16);
        let so = b.smem("sO", 64, 64, DType::F32);
        let gm = b.grid_dim(2);
        let gn = b.grid_dim(2);
        let kl = b.fresh_loop();
        let body = vec![
            BlockStmt::Fill {
                dst: so,
                value: 0.0,
            },
            BlockStmt::Loop {
                handle: kl,
                extent: 2,
                body: vec![
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: x,
                            indices: vec![
                                TileIndex { var: gm, tile: 64 },
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: 32,
                                },
                            ],
                        },
                        dst: sx,
                    },
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: w,
                            indices: vec![
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: 32,
                                },
                                TileIndex { var: gn, tile: 64 },
                            ],
                        },
                        dst: sw,
                    },
                    BlockStmt::Gemm {
                        a: sx,
                        b: sw,
                        acc: so,
                        b_transposed: false,
                        acc_col: 0,
                    },
                ],
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: o,
                    indices: vec![
                        TileIndex { var: gm, tile: 64 },
                        TileIndex { var: gn, tile: 64 },
                    ],
                },
                src: so,
            },
        ];
        b.finish(body)
    }

    #[test]
    fn explain_mentions_all_sections() {
        let p = demo_program();
        let s = explain(&p, &DeviceSpec::a100());
        for needle in [
            "kernel demo",
            "blocks",
            "shared memory",
            "per-block program:",
            "for _ in 0..2:",
            "load sX <- X",
            "mma sO += sX x sW",
            "store sO -> O",
            "traffic:",
            "compute:",
            "bound by",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn explain_is_deterministic() {
        let p = demo_program();
        let dev = DeviceSpec::a100();
        assert_eq!(explain(&p, &dev), explain(&p, &dev));
    }
}
