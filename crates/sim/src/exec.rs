//! Functional execution of [`TileProgram`]s.
//!
//! The interpreter runs a virtual kernel *for value*: every thread block is
//! executed tile-by-tile against host `f32` buffers, with loads/stores
//! quantizing through the declared storage precision. This is how the test
//! suite proves that a fused schedule found by MCFuser computes the same
//! function as the unfused reference — the property the real system gets
//! from Triton's code generator being correct.
//!
//! Blocks are executed sequentially in grid order. Grid dimensions bind
//! only spatial loops (each block writes a disjoint output region), so
//! sequential execution is observationally equivalent to any parallel
//! interleaving.

use rustc_hash::FxHashMap;

use crate::dtype::DType;
use crate::kernel::{BlockStmt, BufferRole, ProgramError, SmemId, TileAccess, TileProgram, VarRef};

/// A host-side tensor backing a global buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct HostTensor {
    /// Row-major shape.
    pub shape: Vec<u64>,
    /// Dense f32 payload.
    pub data: Vec<f32>,
}

impl HostTensor {
    /// Allocate a zero-filled tensor.
    pub fn zeros(shape: &[u64]) -> Self {
        let len = shape.iter().product::<u64>() as usize;
        HostTensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Build a tensor from explicit data (lengths must agree).
    pub fn from_vec(shape: &[u64], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<u64>() as usize,
            data.len(),
            "shape/data length mismatch"
        );
        HostTensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major strides.
    pub(crate) fn strides(&self) -> Vec<u64> {
        let mut s = vec![1u64; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.shape[i + 1];
        }
        s
    }

    /// Maximum absolute difference against another tensor.
    pub fn max_abs_diff(&self, other: &HostTensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Transpose the trailing two dimensions (batch-wise matrix
    /// transpose). Used when a chain consumes a tensor stored in the
    /// opposite layout (e.g. attention's `Kᵀ`).
    pub fn transpose_last2(&self) -> HostTensor {
        let rank = self.shape.len();
        assert!(rank >= 2, "need at least a matrix");
        let (r, c) = (self.shape[rank - 2] as usize, self.shape[rank - 1] as usize);
        let batch: usize = self.shape[..rank - 2].iter().product::<u64>() as usize;
        let mut shape = self.shape.clone();
        shape.swap(rank - 2, rank - 1);
        let mut data = vec![0.0f32; self.data.len()];
        for b in 0..batch {
            let base = b * r * c;
            // Walk each source row as one contiguous slice and scatter it
            // down a destination column with a raw-pointer stride walk —
            // one bounds check per row instead of per element (the
            // index-arithmetic version dominated oracle-path wall time).
            let src = &self.data[base..base + r * c];
            let dst = &mut data[base..base + r * c];
            for i in 0..r {
                let row = &src[i * c..(i + 1) * c];
                // SAFETY: j ranges over 0..c and i over 0..r, so
                // `j * r + i < r * c == dst.len()` for every write.
                unsafe {
                    let mut dp = dst.as_mut_ptr().add(i);
                    for &v in row {
                        *dp = v;
                        dp = dp.add(r);
                    }
                }
            }
        }
        HostTensor { shape, data }
    }

    /// Relative L2 error against a reference tensor.
    pub fn rel_l2_error(&self, reference: &HostTensor) -> f32 {
        assert_eq!(self.shape, reference.shape);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, r) in self.data.iter().zip(&reference.data) {
            num += ((a - r) as f64).powi(2);
            den += (*r as f64).powi(2);
        }
        if den == 0.0 {
            return num.sqrt() as f32;
        }
        (num / den).sqrt() as f32
    }
}

/// Storage for every global buffer of a program, indexed by `BufId`.
#[derive(Debug, Clone)]
pub struct TensorStorage {
    /// One tensor per program buffer, index-aligned with `BufId`.
    pub tensors: Vec<HostTensor>,
}

impl TensorStorage {
    /// Allocate storage matching a program's buffer declarations
    /// (all zero; fill inputs afterwards).
    pub fn for_program(p: &TileProgram) -> Self {
        TensorStorage {
            tensors: p
                .buffers
                .iter()
                .map(|b| HostTensor::zeros(&b.shape))
                .collect(),
        }
    }

    /// Like [`TensorStorage::for_program`], but backed by buffers drawn
    /// from a [`BufferArena`] — a serving loop that executes the same
    /// programs repeatedly recycles allocations instead of paying a heap
    /// round trip per request.
    ///
    /// Input-role buffers come back **unzeroed** (the caller must stage
    /// every element before executing — which the serving plan does);
    /// output/temp buffers are zeroed as usual.
    pub fn for_program_in(p: &TileProgram, arena: &mut BufferArena) -> Self {
        TensorStorage {
            tensors: p
                .buffers
                .iter()
                .map(|b| {
                    let len = b.shape.iter().product::<u64>() as usize;
                    let data = if b.role == BufferRole::Input {
                        arena.take_unzeroed(len)
                    } else {
                        arena.take(len)
                    };
                    HostTensor {
                        shape: b.shape.clone(),
                        data,
                    }
                })
                .collect(),
        }
    }

    /// Return every backing buffer to an arena for reuse. The inverse of
    /// [`TensorStorage::for_program_in`].
    pub fn recycle(self, arena: &mut BufferArena) {
        for t in self.tensors {
            arena.put(t.data);
        }
    }

    /// Stage `data` into buffer `buf` starting at element `offset` — the
    /// batched-serving staging primitive. A widened launch packs each
    /// request's tensor into its batch-slot range of the same input
    /// buffer, so staging is a straight `memcpy` into the arena-backed
    /// allocation at the slot offset (no intermediate per-request
    /// tensor). Errors if the slice does not fit the buffer.
    pub fn stage_at(&mut self, buf: usize, offset: usize, data: &[f32]) -> Result<(), ExecError> {
        let t = self
            .tensors
            .get_mut(buf)
            .ok_or_else(|| ExecError::StorageMismatch(format!("no buffer #{buf} to stage into")))?;
        let end = offset.saturating_add(data.len());
        if end > t.data.len() {
            return Err(ExecError::StorageMismatch(format!(
                "staging {} elements at offset {offset} overflows buffer #{buf} of {}",
                data.len(),
                t.data.len()
            )));
        }
        t.data[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Zero every output/temp buffer (so a storage can be re-used across
    /// kernel invocations without stale results).
    pub fn clear_outputs(&mut self, p: &TileProgram) {
        for (t, decl) in self.tensors.iter_mut().zip(&p.buffers) {
            if decl.role != BufferRole::Input {
                t.data.fill(0.0);
            }
        }
    }
}

/// A pool of reusable `f32` buffers keyed by length.
///
/// The functional interpreter allocates a shared-memory arena (and, via
/// [`TensorStorage::for_program_in`], the global buffers) per kernel
/// invocation; under a serving workload those allocations recur with the
/// same handful of sizes every request. An arena turns them into pops
/// from a free list. Buffers handed out by [`BufferArena::take`] are
/// always zeroed, so pooled and fresh execution are bit-identical.
#[derive(Debug, Default)]
pub struct BufferArena {
    free: FxHashMap<usize, Vec<Vec<f32>>>,
    reuses: u64,
    allocs: u64,
}

impl BufferArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of exactly `len` elements — recycled when one of
    /// that size is pooled, freshly allocated otherwise.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if let Some(mut v) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.reuses += 1;
            v.fill(0.0);
            v
        } else {
            self.allocs += 1;
            vec![0.0; len]
        }
    }

    /// Like [`BufferArena::take`] but without the zero fill — for
    /// buffers the caller overwrites in full before any read (e.g.
    /// fused-kernel input staging). Contents are unspecified.
    pub fn take_unzeroed(&mut self, len: usize) -> Vec<f32> {
        if let Some(v) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.reuses += 1;
            v
        } else {
            self.allocs += 1;
            vec![0.0; len]
        }
    }

    /// Return a buffer to the pool.
    pub fn put(&mut self, v: Vec<f32>) {
        if !v.is_empty() {
            self.free.entry(v.len()).or_default().push(v);
        }
    }

    /// Buffers served from the pool so far.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Buffers that had to be freshly allocated.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }
}

/// Execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// Program failed structural validation first.
    Invalid(ProgramError),
    /// Storage buffer count/shape does not match declarations.
    StorageMismatch(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Invalid(e) => write!(f, "invalid program: {e}"),
            ExecError::StorageMismatch(m) => write!(f, "storage mismatch: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ProgramError> for ExecError {
    fn from(e: ProgramError) -> Self {
        ExecError::Invalid(e)
    }
}

/// Per-block shared-memory arena (shared with the vectorized backend).
pub(crate) struct Smem {
    pub(crate) bufs: Vec<Vec<f32>>,
    pub(crate) rows: Vec<u64>,
    pub(crate) cols: Vec<u64>,
}

impl Smem {
    pub(crate) fn for_program_in(p: &TileProgram, arena: &mut BufferArena) -> Self {
        let mut bufs = Vec::with_capacity(p.smem.len());
        let mut rows = Vec::with_capacity(p.smem.len());
        let mut cols = Vec::with_capacity(p.smem.len());
        for d in &p.smem {
            bufs.push(arena.take(d.elems() as usize));
            rows.push(d.rows);
            cols.push(d.cols);
        }
        Smem { bufs, rows, cols }
    }

    pub(crate) fn recycle(self, arena: &mut BufferArena) {
        for b in self.bufs {
            arena.put(b);
        }
    }
}

/// Execute a program against `storage`. Inputs must be pre-filled; outputs
/// and temps are written in place.
pub fn execute(p: &TileProgram, storage: &mut TensorStorage) -> Result<(), ExecError> {
    let mut arena = BufferArena::new();
    execute_with_arena(p, storage, &mut arena)
}

/// Like [`execute`], but drawing the per-block shared-memory buffers from
/// a caller-provided [`BufferArena`] (and returning them afterwards) —
/// the entry point serving loops use to run the same kernels request
/// after request without per-request heap churn. Results are
/// bit-identical to [`execute`].
pub fn execute_with_arena(
    p: &TileProgram,
    storage: &mut TensorStorage,
    arena: &mut BufferArena,
) -> Result<(), ExecError> {
    p.validate()?;
    if storage.tensors.len() != p.buffers.len() {
        return Err(ExecError::StorageMismatch(format!(
            "{} tensors for {} buffers",
            storage.tensors.len(),
            p.buffers.len()
        )));
    }
    for (t, d) in storage.tensors.iter().zip(&p.buffers) {
        if t.shape != d.shape {
            return Err(ExecError::StorageMismatch(format!(
                "buffer {} declared {:?} but storage has {:?}",
                d.name, d.shape, t.shape
            )));
        }
    }

    let mut smem = Smem::for_program_in(p, arena);
    let grid = if p.grid.is_empty() {
        vec![1]
    } else {
        p.grid.clone()
    };
    let nblocks: u64 = grid.iter().product();
    let mut block_idx = vec![0u64; grid.len()];
    // Loop-variable environment: handles are small dense indices.
    let max_handle = max_loop_handle(&p.body) + 1;
    let mut env = vec![0u64; max_handle];

    for flat in 0..nblocks {
        // Decompose the flat block id into grid coordinates (row-major).
        let mut rem = flat;
        for i in (0..grid.len()).rev() {
            block_idx[i] = rem % grid[i];
            rem /= grid[i];
        }
        run_stmts(p, &p.body, &block_idx, &mut env, &mut smem, storage);
    }
    smem.recycle(arena);
    Ok(())
}

pub(crate) fn max_loop_handle(stmts: &[BlockStmt]) -> usize {
    let mut m = 0;
    for s in stmts {
        if let BlockStmt::Loop { handle, body, .. } = s {
            m = m.max(handle.0).max(max_loop_handle(body));
        }
    }
    m
}

pub(crate) fn resolve(var: VarRef, block_idx: &[u64], env: &[u64]) -> u64 {
    match var {
        VarRef::Grid(i) => block_idx[i],
        VarRef::Loop(h) => env[h.0],
        VarRef::Zero => 0,
        VarRef::Const(c) => c,
    }
}

/// Compute the global element origin of a tile access.
pub(crate) fn tile_origin(acc: &TileAccess, block_idx: &[u64], env: &[u64]) -> Vec<u64> {
    acc.indices
        .iter()
        .map(|ix| resolve(ix.var, block_idx, env) * ix.tile)
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_stmts(
    p: &TileProgram,
    stmts: &[BlockStmt],
    block_idx: &[u64],
    env: &mut Vec<u64>,
    smem: &mut Smem,
    storage: &mut TensorStorage,
) {
    for s in stmts {
        match s {
            BlockStmt::Loop {
                handle,
                extent,
                body,
            } => {
                for i in 0..*extent {
                    env[handle.0] = i;
                    run_stmts(p, body, block_idx, env, smem, storage);
                }
                env[handle.0] = 0;
            }
            BlockStmt::Load { src, dst } => {
                let origin = tile_origin(src, block_idx, env);
                let (rows, cols) = (smem.rows[dst.0], smem.cols[dst.0]);
                let dt = p.smem[dst.0].dtype;
                load_tile(
                    &storage.tensors[src.buf.0],
                    &origin,
                    rows,
                    cols,
                    dt,
                    &mut smem.bufs[dst.0],
                );
            }
            BlockStmt::Store { dst, src } => {
                let origin = tile_origin(dst, block_idx, env);
                let (rows, cols) = (smem.rows[src.0], smem.cols[src.0]);
                let dt = p.buffers[dst.buf.0].dtype;
                store_tile(
                    &smem.bufs[src.0],
                    rows,
                    cols,
                    dt,
                    &mut storage.tensors[dst.buf.0],
                    &origin,
                );
            }
            BlockStmt::Fill { dst, value } => smem.bufs[dst.0].fill(*value),
            BlockStmt::Gemm {
                a,
                b,
                acc,
                b_transposed,
                acc_col,
            } => {
                gemm_tiles(smem, *a, *b, *acc, *b_transposed, *acc_col as usize);
            }
            BlockStmt::OnlineSoftmax {
                scores,
                row_max,
                row_sum,
                rescale,
                scale,
            } => {
                online_softmax(smem, *scores, *row_max, *row_sum, rescale, *scale);
            }
            BlockStmt::RowDiv { target, denom } => {
                let cols = smem.cols[target.0] as usize;
                let rows = smem.rows[target.0] as usize;
                // Split-borrow via pointer copy of the denominator column.
                let denom_col: Vec<f32> = (0..rows)
                    .map(|r| smem.bufs[denom.0][r * smem.cols[denom.0] as usize])
                    .collect();
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    let d = denom_col[r];
                    if d != 0.0 {
                        for c in 0..cols {
                            t[r * cols + c] /= d;
                        }
                    }
                }
            }
            BlockStmt::Relu { target } => {
                for v in smem.bufs[target.0].iter_mut() {
                    *v = v.max(0.0);
                }
            }
            BlockStmt::Gelu { target } => {
                for v in smem.bufs[target.0].iter_mut() {
                    *v = gelu(*v);
                }
            }
            BlockStmt::AddTile { target, other } => {
                let (t, o) = (target.0, other.0);
                if t == o {
                    for v in smem.bufs[t].iter_mut() {
                        *v += *v;
                    }
                } else {
                    // Disjoint split borrow — no per-trip allocation.
                    let (lo, hi) = smem.bufs.split_at_mut(t.max(o));
                    let (dst, src) = if t < o {
                        (&mut lo[t], &hi[0])
                    } else {
                        (&mut hi[0], &lo[o])
                    };
                    for (v, s) in dst.iter_mut().zip(src.iter()) {
                        *v += s;
                    }
                }
            }
            BlockStmt::Scale { target, factor } => {
                for v in smem.bufs[target.0].iter_mut() {
                    *v *= factor;
                }
            }
            BlockStmt::Exp { target } => {
                for v in smem.bufs[target.0].iter_mut() {
                    *v = v.exp();
                }
            }
            BlockStmt::AddBias { target, bias } => {
                let cols = smem.cols[target.0] as usize;
                let rows = smem.rows[target.0] as usize;
                let bias_row: Vec<f32> = smem.bufs[bias.0][..cols].to_vec();
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    for c in 0..cols {
                        t[r * cols + c] += bias_row[c];
                    }
                }
            }
            BlockStmt::Quantize { target, dtype } => {
                for v in smem.bufs[target.0].iter_mut() {
                    *v = dtype.quantize(*v);
                }
            }
            BlockStmt::RowNormStats {
                a,
                residual,
                rows,
                cols,
                mean,
                rstd,
                eps,
            } => {
                let a_origin = tile_origin(a, block_idx, env);
                let av = RawView::new(&storage.tensors[a.buf.0], &a_origin);
                let resv = residual.as_ref().map(|racc| {
                    let o = tile_origin(racc, block_idx, env);
                    RawView::new(&storage.tensors[racc.buf.0], &o)
                });
                let mcols = smem.cols[mean.0] as usize;
                let rcols = smem.cols[rstd.0] as usize;
                for r in 0..*rows {
                    // Sequential row sums in column order so the stats match
                    // the graph reference's `row.iter().sum()` bit-for-bit.
                    let (m_val, s_val) = if av.row_in_bounds(r) {
                        let mut sum = 0.0f32;
                        for c in 0..*cols {
                            let mut v = av.get(r, c);
                            if let Some(rv) = &resv {
                                v += rv.get(r, c);
                            }
                            sum += v;
                        }
                        let mean_v = sum / *cols as f32;
                        let mut var = 0.0f32;
                        for c in 0..*cols {
                            let mut v = av.get(r, c);
                            if let Some(rv) = &resv {
                                v += rv.get(r, c);
                            }
                            let d = v - mean_v;
                            var += d * d;
                        }
                        (mean_v, 1.0 / (var / *cols as f32 + eps).sqrt())
                    } else {
                        (0.0, 1.0)
                    };
                    smem.bufs[mean.0][r as usize * mcols] = m_val;
                    smem.bufs[rstd.0][r as usize * rcols] = s_val;
                }
            }
            BlockStmt::NormalizeTile {
                target,
                mean,
                rstd,
                gamma,
                beta,
                round,
            } => {
                let rows = smem.rows[target.0] as usize;
                let cols = smem.cols[target.0] as usize;
                let mcols = smem.cols[mean.0] as usize;
                let rcols = smem.cols[rstd.0] as usize;
                let means: Vec<f32> = (0..rows).map(|r| smem.bufs[mean.0][r * mcols]).collect();
                let rstds: Vec<f32> = (0..rows).map(|r| smem.bufs[rstd.0][r * rcols]).collect();
                let gvals = gamma.map(|g| smem.bufs[g.0][..cols].to_vec());
                let bvals = beta.map(|b| smem.bufs[b.0][..cols].to_vec());
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    for c in 0..cols {
                        let mut v = (t[r * cols + c] - means[r]) * rstds[r];
                        if let Some(g) = &gvals {
                            v *= g[c];
                        }
                        if let Some(b) = &bvals {
                            v += b[c];
                        }
                        t[r * cols + c] = round.quantize(v);
                    }
                }
            }
            BlockStmt::AddGlobal { target, src } => {
                let origin = tile_origin(src, block_idx, env);
                let view = RawView::new(&storage.tensors[src.buf.0], &origin);
                let rows = smem.rows[target.0];
                let cols = smem.cols[target.0];
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    for c in 0..cols {
                        t[(r * cols + c) as usize] += view.get(r, c);
                    }
                }
            }
            BlockStmt::AddRecomputedNorm {
                target,
                a,
                residual,
                mean,
                rstd,
                gamma,
                beta,
            } => {
                let a_origin = tile_origin(a, block_idx, env);
                let av = RawView::new(&storage.tensors[a.buf.0], &a_origin);
                let resv = residual.as_ref().map(|racc| {
                    let o = tile_origin(racc, block_idx, env);
                    RawView::new(&storage.tensors[racc.buf.0], &o)
                });
                let rows = smem.rows[target.0] as usize;
                let cols = smem.cols[target.0] as usize;
                let mcols = smem.cols[mean.0] as usize;
                let rcols = smem.cols[rstd.0] as usize;
                let means: Vec<f32> = (0..rows).map(|r| smem.bufs[mean.0][r * mcols]).collect();
                let rstds: Vec<f32> = (0..rows).map(|r| smem.bufs[rstd.0][r * rcols]).collect();
                let gvals = gamma.map(|g| smem.bufs[g.0][..cols].to_vec());
                let bvals = beta.map(|b| smem.bufs[b.0][..cols].to_vec());
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    if !av.row_in_bounds(r as u64) {
                        continue;
                    }
                    for c in 0..cols {
                        let mut v = av.get(r as u64, c as u64);
                        if let Some(rv) = &resv {
                            v += rv.get(r as u64, c as u64);
                        }
                        let mut n = (v - means[r]) * rstds[r];
                        if let Some(g) = &gvals {
                            n *= g[c];
                        }
                        if let Some(b) = &bvals {
                            n += b[c];
                        }
                        t[r * cols + c] += n;
                    }
                }
            }
            BlockStmt::LayerNormTile {
                target,
                gamma,
                beta,
                eps,
            } => {
                let rows = smem.rows[target.0] as usize;
                let cols = smem.cols[target.0] as usize;
                let gvals = gamma.map(|g| smem.bufs[g.0][..cols].to_vec());
                let bvals = beta.map(|b| smem.bufs[b.0][..cols].to_vec());
                let t = &mut smem.bufs[target.0];
                for r in 0..rows {
                    let row = &mut t[r * cols..(r + 1) * cols];
                    let mean = row.iter().sum::<f32>() / cols as f32;
                    let var =
                        row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    for (c, v) in row.iter_mut().enumerate() {
                        let mut n = (*v - mean) * inv;
                        if let Some(g) = &gvals {
                            n *= g[c];
                        }
                        if let Some(b) = &bvals {
                            n += b[c];
                        }
                        *v = n;
                    }
                }
            }
        }
    }
}

/// An unquantized window into the trailing two dims of a global tensor,
/// positioned at a tile origin. The stitched prologue/epilogue statements
/// read activations raw (f32) so their numerics mirror the graph
/// reference exactly; out-of-bounds elements read as zero.
struct RawView<'a> {
    data: &'a [f32],
    base: u64,
    ro: u64,
    co: u64,
    rdim: u64,
    cdim: u64,
    rstride: u64,
    in_bounds: bool,
}

impl<'a> RawView<'a> {
    fn new(src: &'a HostTensor, origin: &[u64]) -> Self {
        let strides = src.strides();
        let rank = src.shape.len();
        debug_assert!(rank >= 2, "RawView needs a matrix-shaped tensor");
        let lead = rank - 2;
        let mut base = 0u64;
        let mut in_bounds = true;
        for d in 0..lead {
            if origin[d] >= src.shape[d] {
                in_bounds = false;
            }
            base += origin[d] * strides[d];
        }
        RawView {
            data: &src.data,
            base,
            ro: origin[rank - 2],
            co: origin[rank - 1],
            rdim: src.shape[rank - 2],
            cdim: src.shape[rank - 1],
            rstride: strides[rank - 2],
            in_bounds,
        }
    }

    fn row_in_bounds(&self, r: u64) -> bool {
        self.in_bounds && self.ro + r < self.rdim
    }

    fn get(&self, r: u64, c: u64) -> f32 {
        let (gr, gc) = (self.ro + r, self.co + c);
        if !self.in_bounds || gr >= self.rdim || gc >= self.cdim {
            return 0.0;
        }
        self.data[(self.base + gr * self.rstride + gc) as usize]
    }
}

/// tanh-approximation GELU (matches common framework implementations).
/// The single source of truth for the epilogue's numerics — the CPU
/// reference oracle in `mcfuser-ir` delegates here, so the interpreter
/// and the oracle can never drift apart.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((0.797_884_6 * (x + 0.044715 * x * x * x)) as f64).tanh() as f32)
}

/// Copy a (possibly clipped) `rows × cols` region at `origin` into a dense
/// tile, zero-padding out-of-bounds elements, quantizing to `dt`.
fn load_tile(src: &HostTensor, origin: &[u64], rows: u64, cols: u64, dt: DType, dst: &mut [f32]) {
    let strides = src.strides();
    let rank = src.shape.len();
    // Base offset from leading (slice-selecting) dims.
    let tiled_dims = rank.min(2);
    let lead = rank - tiled_dims;
    let mut base = 0u64;
    let mut in_bounds = true;
    for d in 0..lead {
        if origin[d] >= src.shape[d] {
            in_bounds = false;
        }
        base += origin[d] * strides[d];
    }
    if !in_bounds {
        dst.fill(0.0);
        return;
    }
    if tiled_dims == 1 {
        // Rank-1: a single row of `cols` elements; `rows` must be 1-like.
        let o = origin[rank - 1];
        for c in 0..cols {
            let idx = o + c;
            let v = if idx < src.shape[rank - 1] {
                src.data[(base + idx) as usize]
            } else {
                0.0
            };
            dst[c as usize] = dt.quantize(v);
        }
        for r in 1..rows {
            let (lo, hi) = ((r * cols) as usize, ((r + 1) * cols) as usize);
            dst.copy_within(0..cols as usize, lo);
            let _ = hi;
        }
        return;
    }
    let (ro, co) = (origin[rank - 2], origin[rank - 1]);
    let (rdim, cdim) = (src.shape[rank - 2], src.shape[rank - 1]);
    let rstride = strides[rank - 2];
    for r in 0..rows {
        let gr = ro + r;
        let out_row = (r * cols) as usize;
        if gr >= rdim {
            dst[out_row..out_row + cols as usize].fill(0.0);
            continue;
        }
        let row_base = base + gr * rstride;
        for c in 0..cols {
            let gc = co + c;
            let v = if gc < cdim {
                src.data[(row_base + gc) as usize]
            } else {
                0.0
            };
            dst[out_row + c as usize] = dt.quantize(v);
        }
    }
}

/// Write a dense tile back to global memory, clipping at tensor bounds and
/// quantizing to the destination precision.
fn store_tile(src: &[f32], rows: u64, cols: u64, dt: DType, dst: &mut HostTensor, origin: &[u64]) {
    let strides = dst.strides();
    let rank = dst.shape.len();
    let tiled_dims = rank.min(2);
    let lead = rank - tiled_dims;
    let mut base = 0u64;
    for d in 0..lead {
        if origin[d] >= dst.shape[d] {
            return;
        }
        base += origin[d] * strides[d];
    }
    if tiled_dims == 1 {
        let o = origin[rank - 1];
        for c in 0..cols {
            let idx = o + c;
            if idx < dst.shape[rank - 1] {
                dst.data[(base + idx) as usize] = dt.quantize(src[c as usize]);
            }
        }
        return;
    }
    let (ro, co) = (origin[rank - 2], origin[rank - 1]);
    let (rdim, cdim) = (dst.shape[rank - 2], dst.shape[rank - 1]);
    let rstride = strides[rank - 2];
    for r in 0..rows {
        let gr = ro + r;
        if gr >= rdim {
            break;
        }
        let row_base = base + gr * rstride;
        for c in 0..cols {
            let gc = co + c;
            if gc < cdim {
                dst.data[(row_base + gc) as usize] = dt.quantize(src[(r * cols + c) as usize]);
            }
        }
    }
}

/// `acc += a × b` on dense tiles (f32 accumulate, mirroring tensor cores).
/// `acc_col` offsets the written columns inside `acc` (chunked panels).
fn gemm_tiles(
    smem: &mut Smem,
    a: SmemId,
    b: SmemId,
    acc: SmemId,
    b_transposed: bool,
    acc_col: usize,
) {
    let (m, k) = (smem.rows[a.0] as usize, smem.cols[a.0] as usize);
    let n = if b_transposed {
        smem.rows[b.0] as usize
    } else {
        smem.cols[b.0] as usize
    };
    let stride = smem.cols[acc.0] as usize;
    debug_assert_eq!(smem.rows[acc.0] as usize, m);
    debug_assert!(acc_col + n <= stride);
    // Borrow juggling: copy nothing — index via raw splits.
    // a, b, acc are guaranteed distinct by lowering; fall back to clone if
    // aliased (never happens in practice, but keep the interpreter total).
    if a.0 == acc.0 || b.0 == acc.0 {
        let av = smem.bufs[a.0].clone();
        let bv = smem.bufs[b.0].clone();
        let accv = &mut smem.bufs[acc.0];
        gemm_inner(&av, &bv, accv, m, n, k, b_transposed, stride, acc_col);
        return;
    }
    let (av, bv, accv) = {
        // Safe disjoint borrows via split_at_mut over the arena.
        let bufs = &mut smem.bufs;
        let a_ptr = bufs[a.0].as_ptr();
        let b_ptr = bufs[b.0].as_ptr();
        let a_len = bufs[a.0].len();
        let b_len = bufs[b.0].len();
        let acc_slice: *mut [f32] = bufs[acc.0].as_mut_slice();
        // SAFETY: a, b, acc are distinct vector allocations (checked above),
        // so the immutable views of `a`/`b` cannot alias `acc`.
        unsafe {
            (
                std::slice::from_raw_parts(a_ptr, a_len),
                std::slice::from_raw_parts(b_ptr, b_len),
                &mut *acc_slice,
            )
        }
    };
    gemm_inner(av, bv, accv, m, n, k, b_transposed, stride, acc_col);
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn gemm_inner(
    a: &[f32],
    b: &[f32],
    acc: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    b_transposed: bool,
    stride: usize,
    acc_col: usize,
) {
    if b_transposed {
        // b is n×k.
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                let arow = &a[i * k..(i + 1) * k];
                let brow = &b[j * k..(j + 1) * k];
                for kk in 0..k {
                    s += arow[kk] * brow[kk];
                }
                acc[i * stride + acc_col + j] += s;
            }
        }
    } else {
        // b is k×n; loop order i-k-j for cache friendliness.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut acc[i * stride + acc_col..i * stride + acc_col + n];
            for (kk, &aval) in arow.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    crow[j] += aval * brow[j];
                }
            }
        }
    }
}

/// Streaming (FlashAttention-style) softmax update.
fn online_softmax(
    smem: &mut Smem,
    scores: SmemId,
    row_max: SmemId,
    row_sum: SmemId,
    rescale: &[SmemId],
    scale: f32,
) {
    let rows = smem.rows[scores.0] as usize;
    let cols = smem.cols[scores.0] as usize;
    let mut alphas = vec![1.0f32; rows];
    {
        // Per-row: new max, rescale factor, probability materialization.
        let max_cols = smem.cols[row_max.0] as usize;
        let sum_cols = smem.cols[row_sum.0] as usize;
        #[allow(clippy::needless_range_loop)]
        for r in 0..rows {
            let m_old = smem.bufs[row_max.0][r * max_cols];
            let mut m_tile = f32::NEG_INFINITY;
            for c in 0..cols {
                m_tile = m_tile.max(scale * smem.bufs[scores.0][r * cols + c]);
            }
            let m_new = m_old.max(m_tile);
            let alpha = if m_old == f32::NEG_INFINITY {
                0.0
            } else {
                (m_old - m_new).exp()
            };
            let mut tile_sum = 0.0f32;
            for c in 0..cols {
                let p = (scale * smem.bufs[scores.0][r * cols + c] - m_new).exp();
                smem.bufs[scores.0][r * cols + c] = p;
                tile_sum += p;
            }
            let s_old = smem.bufs[row_sum.0][r * sum_cols];
            smem.bufs[row_sum.0][r * sum_cols] = s_old * alpha + tile_sum;
            smem.bufs[row_max.0][r * max_cols] = m_new;
            alphas[r] = alpha;
        }
    }
    for id in rescale {
        let c = smem.cols[id.0] as usize;
        let rrows = smem.rows[id.0] as usize;
        let buf = &mut smem.bufs[id.0];
        for (r, &alpha) in alphas.iter().enumerate().take(rrows) {
            if alpha != 1.0 {
                for v in &mut buf[r * c..(r + 1) * c] {
                    *v *= alpha;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BlockStmt, BufferRole, ProgramBuilder, TileAccess, TileIndex};
    use rand::{Rng, SeedableRng};

    /// Naive reference matmul for oracle checks.
    fn ref_matmul(a: &HostTensor, b: &HostTensor) -> HostTensor {
        let (m, k) = (a.shape[0] as usize, a.shape[1] as usize);
        let n = b.shape[1] as usize;
        let mut out = HostTensor::zeros(&[m as u64, n as u64]);
        for i in 0..m {
            for kk in 0..k {
                let av = a.data[i * k + kk];
                for j in 0..n {
                    out.data[i * n + j] += av * b.data[kk * n + j];
                }
            }
        }
        out
    }

    fn rand_tensor(shape: &[u64], seed: u64) -> HostTensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let len = shape.iter().product::<u64>() as usize;
        HostTensor::from_vec(shape, (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    /// Build a tiled matmul kernel: grid over (m, n) tiles, loop over k.
    fn matmul_program(m: u64, n: u64, k: u64, tm: u64, tn: u64, tk: u64) -> TileProgram {
        let mut b = ProgramBuilder::new("mm", DType::F32);
        let a_buf = b.buffer("A", vec![m, k], DType::F32, BufferRole::Input);
        let b_buf = b.buffer("B", vec![k, n], DType::F32, BufferRole::Input);
        let c_buf = b.buffer("C", vec![m, n], DType::F32, BufferRole::Output);
        let sa = b.smem("sA", tm, tk, DType::F32);
        let sb = b.smem("sB", tk, tn, DType::F32);
        let sc = b.smem("sC", tm, tn, DType::F32);
        let gm = b.grid_dim(crate::kernel::ceil_div(m, tm));
        let gn = b.grid_dim(crate::kernel::ceil_div(n, tn));
        let kl = b.fresh_loop();
        let body = vec![
            BlockStmt::Fill {
                dst: sc,
                value: 0.0,
            },
            BlockStmt::Loop {
                handle: kl,
                extent: crate::kernel::ceil_div(k, tk),
                body: vec![
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: a_buf,
                            indices: vec![
                                TileIndex { var: gm, tile: tm },
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: tk,
                                },
                            ],
                        },
                        dst: sa,
                    },
                    BlockStmt::Load {
                        src: TileAccess {
                            buf: b_buf,
                            indices: vec![
                                TileIndex {
                                    var: VarRef::Loop(kl),
                                    tile: tk,
                                },
                                TileIndex { var: gn, tile: tn },
                            ],
                        },
                        dst: sb,
                    },
                    BlockStmt::Gemm {
                        a: sa,
                        b: sb,
                        acc: sc,
                        b_transposed: false,
                        acc_col: 0,
                    },
                ],
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: c_buf,
                    indices: vec![
                        TileIndex { var: gm, tile: tm },
                        TileIndex { var: gn, tile: tn },
                    ],
                },
                src: sc,
            },
        ];
        b.finish(body)
    }

    #[test]
    fn tiled_matmul_matches_reference() {
        let (m, n, k) = (64, 48, 32);
        let p = matmul_program(m, n, k, 16, 16, 16);
        let mut st = TensorStorage::for_program(&p);
        st.tensors[0] = rand_tensor(&[m, k], 1);
        st.tensors[1] = rand_tensor(&[k, n], 2);
        execute(&p, &mut st).unwrap();
        let expect = ref_matmul(&st.tensors[0], &st.tensors[1]);
        assert!(st.tensors[2].rel_l2_error(&expect) < 1e-5);
    }

    #[test]
    fn partial_tiles_are_zero_padded() {
        // Dimensions that do NOT divide evenly by the tile sizes.
        let (m, n, k) = (50, 34, 21);
        let p = matmul_program(m, n, k, 16, 16, 16);
        let mut st = TensorStorage::for_program(&p);
        st.tensors[0] = rand_tensor(&[m, k], 3);
        st.tensors[1] = rand_tensor(&[k, n], 4);
        execute(&p, &mut st).unwrap();
        let expect = ref_matmul(&st.tensors[0], &st.tensors[1]);
        assert!(st.tensors[2].rel_l2_error(&expect) < 1e-5);
    }

    #[test]
    fn f16_storage_quantizes_loads() {
        let (m, n, k) = (16, 16, 16);
        let mut p = matmul_program(m, n, k, 16, 16, 16);
        // Make the A tile f16 in shared memory.
        p.smem[0].dtype = DType::F16;
        let mut st = TensorStorage::for_program(&p);
        let mut a = HostTensor::zeros(&[m, k]);
        a.data[0] = 1.0 + 2f32.powi(-13); // not representable in f16
        st.tensors[0] = a;
        let mut bmat = HostTensor::zeros(&[k, n]);
        bmat.data[0] = 1.0; // B[0,0]
        st.tensors[1] = bmat;
        execute(&p, &mut st).unwrap();
        // C[0,0] = quantized(A[0,0]) * 1.0 = 1.0 exactly.
        assert_eq!(st.tensors[2].data[0], 1.0);
    }

    #[test]
    fn online_softmax_matches_two_pass() {
        // One row of 8 scores processed as two tiles of 4 must equal the
        // direct softmax.
        let rows = 2usize;
        let cols = 4usize;
        let mut smem = Smem {
            bufs: vec![
                vec![0.0; rows * cols],        // scores
                vec![f32::NEG_INFINITY; rows], // row max
                vec![0.0; rows],               // row sum
                vec![0.0; rows * 3],           // acc to rescale
            ],
            rows: vec![rows as u64, rows as u64, rows as u64, rows as u64],
            cols: vec![cols as u64, 1, 1, 3],
        };
        let all: Vec<f32> = (0..rows * 8)
            .map(|i| (i as f32 * 0.37).sin() * 3.0)
            .collect();
        let mut acc_contrib = vec![0.0f32; rows];
        for tile in 0..2 {
            for r in 0..rows {
                for c in 0..cols {
                    smem.bufs[0][r * cols + c] = all[r * 8 + tile * cols + c];
                }
            }
            online_softmax(
                &mut smem,
                SmemId(0),
                SmemId(1),
                SmemId(2),
                &[SmemId(3)],
                1.0,
            );
            // Accumulate "P @ ones" per row to test downstream consistency.
            #[allow(clippy::needless_range_loop)]
            for r in 0..rows {
                let alpha_applied: f32 = smem.bufs[0][r * cols..(r + 1) * cols].iter().sum();
                acc_contrib[r] += alpha_applied; // acc rescale tested via bufs[3]
            }
        }
        // After both tiles: row_sum must equal sum of exp(x - max) over all 8.
        for r in 0..rows {
            let row = &all[r * 8..(r + 1) * 8];
            let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let expect: f32 = row.iter().map(|v| (v - mx).exp()).sum();
            let got = smem.bufs[2][r];
            assert!((got - expect).abs() < 1e-4, "row {r}: {got} vs {expect}");
        }
    }

    #[test]
    fn arena_execution_is_bit_identical_and_recycles() {
        let (m, n, k) = (50, 34, 21);
        let p = matmul_program(m, n, k, 16, 16, 16);
        let a = rand_tensor(&[m, k], 5);
        let b = rand_tensor(&[k, n], 6);

        let mut plain = TensorStorage::for_program(&p);
        plain.tensors[0] = a.clone();
        plain.tensors[1] = b.clone();
        execute(&p, &mut plain).unwrap();

        let mut arena = BufferArena::new();
        let mut first = TensorStorage::for_program_in(&p, &mut arena);
        first.tensors[0] = a.clone();
        first.tensors[1] = b.clone();
        execute_with_arena(&p, &mut first, &mut arena).unwrap();
        assert_eq!(first.tensors[2].data, plain.tensors[2].data);
        first.recycle(&mut arena);
        assert_eq!(arena.reuses(), 0, "first request allocates everything");
        let after_first = arena.allocs();

        // The second identical request is served entirely from the pool.
        let mut second = TensorStorage::for_program_in(&p, &mut arena);
        second.tensors[0] = a;
        second.tensors[1] = b;
        execute_with_arena(&p, &mut second, &mut arena).unwrap();
        assert_eq!(second.tensors[2].data, plain.tensors[2].data);
        assert_eq!(arena.allocs(), after_first, "no fresh allocations");
        assert!(arena.reuses() > 0);
    }

    #[test]
    fn arena_buffers_come_back_zeroed() {
        let mut arena = BufferArena::new();
        let mut v = arena.take(4);
        v.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        arena.put(v);
        assert_eq!(arena.take(4), vec![0.0; 4]);
    }

    #[test]
    fn storage_mismatch_rejected() {
        let p = matmul_program(16, 16, 16, 16, 16, 16);
        let mut st = TensorStorage::for_program(&p);
        st.tensors.pop();
        assert!(matches!(
            execute(&p, &mut st),
            Err(ExecError::StorageMismatch(_))
        ));
    }

    #[test]
    fn clear_outputs_preserves_inputs() {
        let p = matmul_program(16, 16, 16, 16, 16, 16);
        let mut st = TensorStorage::for_program(&p);
        st.tensors[0].data[0] = 5.0;
        st.tensors[2].data[0] = 7.0;
        st.clear_outputs(&p);
        assert_eq!(st.tensors[0].data[0], 5.0);
        assert_eq!(st.tensors[2].data[0], 0.0);
    }

    #[test]
    fn rank3_batched_access() {
        // Batched copy kernel: out[b] = in[b] for 2 batches of 4x4, via a
        // grid dim selecting the batch.
        let mut b = ProgramBuilder::new("copy", DType::F32);
        let src = b.buffer("in", vec![2, 4, 4], DType::F32, BufferRole::Input);
        let dst = b.buffer("out", vec![2, 4, 4], DType::F32, BufferRole::Output);
        let tile = b.smem("t", 4, 4, DType::F32);
        let gb = b.grid_dim(2);
        let body = vec![
            BlockStmt::Load {
                src: TileAccess {
                    buf: src,
                    indices: vec![
                        TileIndex { var: gb, tile: 1 },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 4,
                        },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 4,
                        },
                    ],
                },
                dst: tile,
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: dst,
                    indices: vec![
                        TileIndex { var: gb, tile: 1 },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 4,
                        },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 4,
                        },
                    ],
                },
                src: tile,
            },
        ];
        let p = b.finish(body);
        let mut st = TensorStorage::for_program(&p);
        st.tensors[0] = rand_tensor(&[2, 4, 4], 9);
        execute(&p, &mut st).unwrap();
        assert_eq!(st.tensors[1].data, st.tensors[0].data);
    }

    #[test]
    fn gemm_b_transposed() {
        // C = A × Bᵀ with B stored n×k.
        let mut bld = ProgramBuilder::new("mmT", DType::F32);
        let a_buf = bld.buffer("A", vec![8, 4], DType::F32, BufferRole::Input);
        let b_buf = bld.buffer("B", vec![8, 4], DType::F32, BufferRole::Input);
        let c_buf = bld.buffer("C", vec![8, 8], DType::F32, BufferRole::Output);
        let sa = bld.smem("sA", 8, 4, DType::F32);
        let sb = bld.smem("sB", 8, 4, DType::F32);
        let sc = bld.smem("sC", 8, 8, DType::F32);
        let z = VarRef::Zero;
        let body = vec![
            BlockStmt::Fill {
                dst: sc,
                value: 0.0,
            },
            BlockStmt::Load {
                src: TileAccess {
                    buf: a_buf,
                    indices: vec![TileIndex { var: z, tile: 8 }, TileIndex { var: z, tile: 4 }],
                },
                dst: sa,
            },
            BlockStmt::Load {
                src: TileAccess {
                    buf: b_buf,
                    indices: vec![TileIndex { var: z, tile: 8 }, TileIndex { var: z, tile: 4 }],
                },
                dst: sb,
            },
            BlockStmt::Gemm {
                a: sa,
                b: sb,
                acc: sc,
                b_transposed: true,
                acc_col: 0,
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: c_buf,
                    indices: vec![TileIndex { var: z, tile: 8 }, TileIndex { var: z, tile: 8 }],
                },
                src: sc,
            },
        ];
        let p = bld.finish(body);
        let mut st = TensorStorage::for_program(&p);
        st.tensors[0] = rand_tensor(&[8, 4], 11);
        st.tensors[1] = rand_tensor(&[8, 4], 12);
        execute(&p, &mut st).unwrap();
        // Reference: C[i][j] = Σ_k A[i][k] * B[j][k].
        for i in 0..8 {
            for j in 0..8 {
                let mut s = 0.0;
                for kk in 0..4 {
                    s += st.tensors[0].data[i * 4 + kk] * st.tensors[1].data[j * 4 + kk];
                }
                let got = st.tensors[2].data[i * 8 + j];
                assert!((got - s).abs() < 1e-5);
            }
        }
    }
}
