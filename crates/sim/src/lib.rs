//! # mcfuser-sim — deterministic GPU substrate
//!
//! This crate is the hardware substitute for the MCFuser reproduction: a
//! simulated NVIDIA GPU with enough microarchitectural structure that the
//! paper's experiments are meaningful without silicon.
//!
//! It provides:
//!
//! * [`DeviceSpec`] — A100 / RTX 3080 device models (SMs, shared memory,
//!   DRAM & L2 bandwidth, tensor-core throughput, launch overhead);
//! * [`TileProgram`] — the virtual-kernel IR produced by MCFuser's
//!   lowering (the analogue of Triton-generated PTX);
//! * [`exec`] — a functional interpreter that runs kernels for value
//!   (used as a correctness oracle against CPU references);
//! * [`exec_vec`] — the vectorized execution backend behind the
//!   [`KernelExecutor`] trait: blocked row-slice kernels, bit-identical
//!   to the interpreter but built for wall-clock speed;
//! * [`timing`] — a wave/roofline timing model that "measures" kernels,
//!   including the second-order effects (L2, tensor-core fill, double
//!   buffering, wave quantization) the paper's coarse analytical model
//!   deliberately ignores;
//! * [`stream`] — pricing of memory-bound library kernels used by the
//!   unfused baselines;
//! * [`verify`] — the static verifier: symbolic bounds, init/def-use,
//!   and inter-block race analysis over lowered programs, run as a
//!   compile-time gate before any kernel is cached, widened, or served;
//! * [`clock`] — the virtual tuning clock behind Table IV;
//! * [`noise`] — deterministic measurement jitter.
//!
//! ## Example
//!
//! ```
//! use mcfuser_sim::{DeviceSpec, DType};
//!
//! let a100 = DeviceSpec::a100();
//! // The roofline ridge point for f16 tensor-core work:
//! let ridge = a100.ridge_flops_per_byte(DType::F16);
//! assert!(ridge > 100.0);
//! ```

#![warn(missing_docs)]
// The vectorized backend's unsafe blocks lean on invariants the static
// verifier proves; keep every one explicit and documented.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod clock;
pub mod codegen_check;
pub mod device;
pub mod dtype;
pub mod exec;
pub mod exec_vec;
pub mod kernel;
pub mod noise;
pub mod report;
pub mod stream;
pub mod timing;
pub mod verify;

pub use clock::{CostProfile, TuningClock, TuningReport};
pub use codegen_check::{assert_codegen_ok, verify_codegen};
pub use device::{Arch, DeviceSpec};
pub use dtype::DType;
pub use exec::{
    execute, execute_with_arena, gelu, BufferArena, ExecError, HostTensor, TensorStorage,
};
pub use exec_vec::{ExecBackend, InterpreterExec, KernelExecutor, VectorizedExec};
pub use kernel::{
    ceil_div, classify_nest, BlockStmt, BufId, BufferDecl, BufferRole, ClipMark, LoopHandle,
    NestClass, ProgramBuilder, ProgramError, SmemDecl, SmemId, TileAccess, TileIndex, TileProgram,
    VarRef,
};
pub use report::explain;
pub use stream::{sequence_time, StreamKernel};
pub use timing::{
    hash_program, measure, measure_noisy, measure_opts, mma_efficiency, Bound, KernelProfile,
    MeasureOpts,
};
pub use verify::{
    is_scatter_onehot, mark_expected_clips, verify_program, verify_widened, VerifyError,
    VerifyReport,
};
