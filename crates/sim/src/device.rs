//! Simulated GPU device models.
//!
//! The paper evaluates on an NVIDIA A100-PCIe-40GB and a GeForce RTX 3080.
//! `DeviceSpec` captures the handful of microarchitectural parameters that
//! govern memory-bound compute-intensive (MBCI) kernels:
//!
//! * streaming-multiprocessor (SM) count → available parallelism, wave count
//! * shared memory per block / per SM → schedule legality and occupancy
//! * DRAM bandwidth → the `W` of the paper's Eq. (3)
//! * tensor-core and FP32 throughput → the `P` of Eq. (4)
//! * kernel launch overhead → why unfused chains lose on small shapes
//!
//! The numbers below are the public datasheet values of the two cards.

use serde::{Deserialize, Serialize};

use crate::dtype::DType;

/// GPU architecture generation (used for feature gating, e.g. BOLT
/// rejecting `sm_86` devices exactly like the paper reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Ampere data-center parts (A100).
    Sm80,
    /// Ampere consumer parts (RTX 3080).
    Sm86,
    /// Hopper data-center parts (H100).
    Sm90,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arch::Sm80 => f.write_str("sm_80"),
            Arch::Sm86 => f.write_str("sm_86"),
            Arch::Sm90 => f.write_str("sm_90"),
        }
    }
}

/// A simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"A100-PCIE-40GB"`.
    pub name: String,
    /// Compute capability.
    pub arch: Arch,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum shared memory usable by a single thread block, in bytes
    /// (after carving out the static reservation; this is the paper's
    /// `Shm_max`).
    pub smem_per_block: u64,
    /// Shared memory per SM, in bytes (bounds how many blocks co-reside).
    pub smem_per_sm: u64,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Peak DRAM bandwidth, bytes/second (`W`).
    pub dram_bandwidth: f64,
    /// Achievable fraction of peak DRAM bandwidth for streaming access.
    pub dram_efficiency: f64,
    /// Peak dense tensor-core throughput for f16/bf16 inputs, FLOP/s (`P`).
    pub peak_tensor_flops: f64,
    /// Peak FP32 FMA throughput, FLOP/s (fallback when inputs are f32).
    pub peak_fp32_flops: f64,
    /// Aggregate shared-memory bandwidth per SM, bytes/second.
    pub smem_bandwidth_per_sm: f64,
    /// Fixed cost of launching one kernel, seconds.
    pub launch_overhead: f64,
    /// L2 cache capacity in bytes (reduces re-read traffic of small tensors).
    pub l2_bytes: u64,
    /// Aggregate L2 cache bandwidth, bytes/second.
    pub l2_bandwidth: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-PCIe-40GB (the paper's first platform).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-PCIE-40GB".to_string(),
            arch: Arch::Sm80,
            num_sms: 108,
            // 164 KiB per block is the sm_80 opt-in maximum.
            smem_per_block: 164 * 1024,
            smem_per_sm: 164 * 1024,
            max_blocks_per_sm: 32,
            dram_bandwidth: 1.555e12,
            dram_efficiency: 0.87,
            peak_tensor_flops: 312e12,
            peak_fp32_flops: 19.5e12,
            smem_bandwidth_per_sm: 19.5e9 * 8.0,
            launch_overhead: 4.0e-6,
            l2_bytes: 40 * 1024 * 1024,
            l2_bandwidth: 4.7e12,
        }
    }

    /// NVIDIA H100-SXM5-80GB (a post-paper Hopper part, for tuning-cache
    /// portability studies: same MBCI model, different roofline).
    pub fn h100() -> Self {
        DeviceSpec {
            name: "H100-SXM5-80GB".to_string(),
            arch: Arch::Sm90,
            num_sms: 132,
            // 228 KiB per block is the sm_90 opt-in maximum.
            smem_per_block: 228 * 1024,
            smem_per_sm: 228 * 1024,
            max_blocks_per_sm: 32,
            dram_bandwidth: 3.35e12,
            dram_efficiency: 0.88,
            // Dense FP16 tensor-core throughput (no structured sparsity).
            peak_tensor_flops: 989e12,
            peak_fp32_flops: 67e12,
            smem_bandwidth_per_sm: 33.0e9 * 8.0,
            launch_overhead: 3.5e-6,
            l2_bytes: 50 * 1024 * 1024,
            l2_bandwidth: 9.0e12,
        }
    }

    /// NVIDIA GeForce RTX 3080 (the paper's second platform).
    pub fn rtx3080() -> Self {
        DeviceSpec {
            name: "GeForce-RTX-3080".to_string(),
            arch: Arch::Sm86,
            num_sms: 68,
            // sm_86 allows up to 100 KiB per block (101376 B usable).
            smem_per_block: 99 * 1024,
            smem_per_sm: 100 * 1024,
            max_blocks_per_sm: 16,
            dram_bandwidth: 760.3e9,
            dram_efficiency: 0.84,
            // Dense FP16 tensor-core throughput with FP32 accumulate.
            peak_tensor_flops: 59.5e12,
            peak_fp32_flops: 29.8e12,
            smem_bandwidth_per_sm: 14.2e9 * 8.0,
            launch_overhead: 4.5e-6,
            l2_bytes: 5 * 1024 * 1024,
            l2_bandwidth: 2.0e12,
        }
    }

    /// Peak arithmetic throughput for operands of the given type (`P`).
    #[inline]
    pub fn peak_flops(&self, dtype: DType) -> f64 {
        if dtype.tensor_core_native() {
            self.peak_tensor_flops
        } else {
            self.peak_fp32_flops
        }
    }

    /// Effective streaming DRAM bandwidth (`W` with achievable efficiency).
    #[inline]
    pub fn effective_bandwidth(&self) -> f64 {
        self.dram_bandwidth * self.dram_efficiency
    }

    /// The ridge point of the roofline: operations per byte above which a
    /// kernel is compute bound (`P/W` in §II-A of the paper).
    #[inline]
    pub fn ridge_flops_per_byte(&self, dtype: DType) -> f64 {
        self.peak_flops(dtype) / self.effective_bandwidth()
    }

    /// How many blocks with the given shared-memory footprint can co-reside
    /// on one SM (at least one: a block that fits per-block smem launches).
    #[inline]
    pub fn blocks_per_sm(&self, smem_per_block: u64) -> u32 {
        if smem_per_block == 0 {
            return self.max_blocks_per_sm;
        }
        let fit = (self.smem_per_sm / smem_per_block) as u32;
        fit.clamp(1, self.max_blocks_per_sm)
    }

    /// Maximum number of blocks resident across the whole device.
    #[inline]
    pub fn concurrent_blocks(&self, smem_per_block: u64) -> u32 {
        self.num_sms * self.blocks_per_sm(smem_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_basics() {
        let d = DeviceSpec::a100();
        assert_eq!(d.num_sms, 108);
        assert_eq!(d.arch, Arch::Sm80);
        assert!(d.peak_flops(DType::F16) > d.peak_flops(DType::F32));
        // Ridge point for f16 on A100 is roughly 312e12/1.35e12 ≈ 230 op/B,
        // matching the paper's "227" figure for a K=1024 GEMM.
        let ridge = d.ridge_flops_per_byte(DType::F16);
        assert!((150.0..300.0).contains(&ridge), "ridge {ridge}");
    }

    #[test]
    fn rtx3080_is_sm86() {
        let d = DeviceSpec::rtx3080();
        assert_eq!(d.arch, Arch::Sm86);
        assert!(d.num_sms < DeviceSpec::a100().num_sms);
        assert!(d.smem_per_block < DeviceSpec::a100().smem_per_block);
    }

    #[test]
    fn blocks_per_sm_clamps() {
        let d = DeviceSpec::a100();
        // A block using all available shared memory runs alone on an SM.
        assert_eq!(d.blocks_per_sm(d.smem_per_block), 1);
        // Tiny blocks are limited by the hardware resident-block cap.
        assert_eq!(d.blocks_per_sm(16), d.max_blocks_per_sm);
        // Zero-smem blocks also hit the cap.
        assert_eq!(d.blocks_per_sm(0), d.max_blocks_per_sm);
        // Half the SM's smem -> two blocks.
        assert_eq!(d.blocks_per_sm(d.smem_per_sm / 2), 2);
    }

    #[test]
    fn concurrent_blocks_scales_with_sms() {
        let d = DeviceSpec::a100();
        assert_eq!(d.concurrent_blocks(d.smem_per_sm), d.num_sms);
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        for d in [DeviceSpec::a100(), DeviceSpec::rtx3080()] {
            assert!(d.effective_bandwidth() < d.dram_bandwidth);
            assert!(d.effective_bandwidth() > 0.5 * d.dram_bandwidth);
        }
    }
}
