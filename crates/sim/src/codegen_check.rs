//! Runtime self-check against a miscompiling toolchain.
//!
//! The environment this reproduction was first built in shipped a rustc
//! whose optimizer folds integer comparisons to the wrong branch in
//! optimized builds (e.g. `if x <= 16 { x } else { 16 }` returning `x`
//! for `x = 1024`). Every pruning rule and tile-size computation in this
//! workspace relies on such comparisons, so the workspace pins
//! `opt-level = 0` and every bench binary calls [`verify_codegen`] at
//! startup to fail fast instead of silently producing garbage.

/// The exact pattern observed to miscompile: an `#[inline(never)]` clamp
/// invoked through an iterator adapter.
#[inline(never)]
fn clamp_tile(ext: u64) -> u64 {
    if ext <= 16 {
        ext.max(1)
    } else {
        16
    }
}

/// Check a handful of comparison/branch patterns; returns `Err` with a
/// description when the compiler produced wrong code.
pub fn verify_codegen() -> Result<(), String> {
    let via_map: Vec<u64> = [1024u64, 512, 8].iter().map(|&e| clamp_tile(e)).collect();
    if via_map != [16, 16, 8] {
        return Err(format!(
            "iterator-map clamp miscompiled: got {via_map:?}, expected [16, 16, 8] — \
             this toolchain breaks optimized integer branches; build with opt-level = 0"
        ));
    }
    let mut via_loop = Vec::new();
    for &e in &[1024u64, 17, 16, 1] {
        via_loop.push(if e <= 16 { e } else { 0 });
    }
    if via_loop != [0, 0, 16, 1] {
        return Err(format!("loop compare miscompiled: got {via_loop:?}"));
    }
    let div = 1000u64.div_ceil(16);
    if div != 63 {
        return Err(format!("div_ceil miscompiled: got {div}"));
    }
    Ok(())
}

/// Panic with a loud message if the toolchain is broken (bench binaries
/// call this before producing any numbers).
pub fn assert_codegen_ok() {
    if let Err(e) = verify_codegen() {
        panic!("TOOLCHAIN MISCOMPILATION DETECTED: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_build_is_sound() {
        verify_codegen().unwrap();
    }

    #[test]
    fn clamp_is_correct_here() {
        assert_eq!(clamp_tile(1024), 16);
        assert_eq!(clamp_tile(8), 8);
        assert_eq!(clamp_tile(16), 16);
        assert_eq!(clamp_tile(17), 16);
    }
}
