//! Memory-bound "streaming" kernels (element-wise ops, reductions,
//! softmax passes, layer norm …).
//!
//! Unfused pipelines launch these as separate kernels between the GEMMs;
//! their cost is almost purely global-memory traffic plus launch overhead.
//! Rather than build a full tile program for each, baselines describe them
//! with a [`StreamKernel`] and the same wave/bandwidth model prices them.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;

/// A memory-streaming kernel described by its traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamKernel {
    /// Display name.
    pub name: String,
    /// Bytes read from global memory.
    pub bytes_read: f64,
    /// Bytes written to global memory.
    pub bytes_written: f64,
    /// Arithmetic performed (FP32 pipe).
    pub flops: f64,
    /// Whether the reads are expected to hit in L2 (producer just ran).
    pub reads_hit_l2: bool,
}

impl StreamKernel {
    /// An element-wise map over `elems` elements of `elem_bytes` each
    /// (one read + one write per element).
    pub fn elementwise(name: impl Into<String>, elems: u64, elem_bytes: u64) -> Self {
        let b = (elems * elem_bytes) as f64;
        StreamKernel {
            name: name.into(),
            bytes_read: b,
            bytes_written: b,
            flops: elems as f64,
            reads_hit_l2: false,
        }
    }

    /// A row-wise reduction over an `rows × cols` matrix producing one
    /// value per row.
    pub fn row_reduce(name: impl Into<String>, rows: u64, cols: u64, elem_bytes: u64) -> Self {
        StreamKernel {
            name: name.into(),
            bytes_read: (rows * cols * elem_bytes) as f64,
            bytes_written: (rows * 4) as f64,
            flops: (rows * cols) as f64,
            reads_hit_l2: false,
        }
    }

    /// Mark the kernel's input as L2-resident.
    pub fn with_l2_hot(mut self) -> Self {
        self.reads_hit_l2 = true;
        self
    }

    /// Execution time on a device (including launch overhead).
    pub fn time(&self, dev: &DeviceSpec) -> f64 {
        let total = self.bytes_read + self.bytes_written;
        let fits_l2 = total <= 0.8 * dev.l2_bytes as f64;
        let read_bw = if self.reads_hit_l2 && fits_l2 {
            dev.l2_bandwidth
        } else {
            dev.effective_bandwidth()
        };
        let t_read = self.bytes_read / read_bw;
        let t_write = self.bytes_written / dev.effective_bandwidth();
        let t_comp = self.flops / dev.peak_fp32_flops;
        dev.launch_overhead + (t_read + t_write).max(t_comp)
    }
}

/// Total time of a sequence of streaming kernels.
pub fn sequence_time(kernels: &[StreamKernel], dev: &DeviceSpec) -> f64 {
    kernels.iter().map(|k| k.time(dev)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_time_scales_with_size() {
        let dev = DeviceSpec::a100();
        let small = StreamKernel::elementwise("relu", 1 << 16, 2).time(&dev);
        let large = StreamKernel::elementwise("relu", 1 << 26, 2).time(&dev);
        assert!(large > small);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let dev = DeviceSpec::a100();
        let t = StreamKernel::elementwise("scale", 16, 2).time(&dev);
        assert!(t >= dev.launch_overhead);
        assert!(t < dev.launch_overhead * 1.01);
    }

    #[test]
    fn l2_hot_reads_are_faster() {
        let dev = DeviceSpec::a100();
        let cold = StreamKernel::elementwise("softmax", 1 << 20, 2);
        let hot = cold.clone().with_l2_hot();
        assert!(hot.time(&dev) < cold.time(&dev));
    }

    #[test]
    fn l2_hint_ignored_when_too_large_for_l2() {
        let dev = DeviceSpec::a100();
        // 1 GiB cannot be L2 resident.
        let cold = StreamKernel::elementwise("big", 1 << 29, 2);
        let hot = cold.clone().with_l2_hot();
        assert_eq!(hot.time(&dev), cold.time(&dev));
    }

    #[test]
    fn sequence_is_additive() {
        let dev = DeviceSpec::a100();
        let k = StreamKernel::elementwise("x", 1 << 20, 2);
        let t1 = k.time(&dev);
        assert!((sequence_time(&[k.clone(), k], &dev) - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn row_reduce_reads_dominate() {
        let dev = DeviceSpec::a100();
        let k = StreamKernel::row_reduce("max", 4096, 4096, 2);
        assert!(k.bytes_read > 100.0 * k.bytes_written);
        assert!(k.time(&dev) > dev.launch_overhead);
    }
}
