//! The virtual-kernel IR ("VTX") executed by the simulator.
//!
//! A [`TileProgram`] is the analogue of the PTX a Triton kernel compiles to:
//! a grid of independent thread blocks, each running a small loop nest of
//! *tile-granularity* statements — load a tile from global to shared memory,
//! run a tensor-core GEMM on resident tiles, apply an epilogue, store a tile
//! back. MCFuser's lowering (in `mcfuser-tile`) produces these programs;
//! the simulator both *executes* them functionally (for correctness
//! checking) and *measures* them with a microarchitectural timing model.
//!
//! Design notes:
//!
//! * Tile coordinates are affine in grid indices and per-block loop
//!   variables ([`VarRef`]), which is exactly the addressing structure the
//!   paper's tiling expressions generate.
//! * Shared-memory buffers are 2-D (`rows × cols`), optionally padded (to
//!   dodge bank conflicts) and double buffered — the intra-tile policies the
//!   real system delegates to Triton.

use serde::{Deserialize, Serialize};

use crate::dtype::DType;

/// Identifier of a global-memory buffer declared in a [`TileProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufId(pub usize);

/// Identifier of a shared-memory tile buffer within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SmemId(pub usize);

/// Identifier of a per-block loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopHandle(pub usize);

/// Role of a global buffer (determines who initializes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferRole {
    /// Provided by the caller before execution.
    Input,
    /// Written by the kernel.
    Output,
    /// Intermediate tensor that round-trips through global memory
    /// (only used by *unfused* pipelines; fusion removes these).
    Temp,
}

/// A global-memory tensor buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferDecl {
    /// Display name.
    pub name: String,
    /// Row-major shape; the trailing two dims are the tiled matrix dims
    /// (rank-1 buffers are treated as a single row).
    pub shape: Vec<u64>,
    /// Storage precision.
    pub dtype: DType,
    /// Who initializes/consumes the buffer.
    pub role: BufferRole,
}

impl BufferDecl {
    /// Total number of elements.
    pub fn len(&self) -> u64 {
        self.shape.iter().product()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes at the declared storage precision.
    pub fn bytes(&self) -> u64 {
        self.len() * self.dtype.size_bytes()
    }
}

/// A shared-memory tile buffer (one logical tile; the allocator may
/// double-buffer it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmemDecl {
    /// Display name.
    pub name: String,
    /// Tile rows.
    pub rows: u64,
    /// Tile columns.
    pub cols: u64,
    /// Storage precision in shared memory.
    pub dtype: DType,
    /// Extra columns of padding per row to avoid bank conflicts.
    pub pad_cols: u64,
    /// Whether the lowering allocated two copies for load/compute overlap.
    pub double_buffered: bool,
    /// Register stream: the tile flows global->register through the
    /// cp.async pipeline and is consumed by the MMA as fragments arrive —
    /// only the in-flight window is ever resident, so the tile occupies
    /// no shared memory. Only legal for single-use operands whose tile
    /// coordinates are compile-time constants (a statically unrolled loop
    /// lets each thread address its fragments in registers; a dynamically
    /// indexed loop would have to bounce through smem). Used for chunked
    /// tail weight panels and for every panel behind `A` in `m == 1`
    /// (decode GEMV) chains, where no output row ever re-reads a panel.
    pub streamed: bool,
}

impl SmemDecl {
    /// Logical element count (what the interpreter allocates).
    pub fn elems(&self) -> u64 {
        self.rows * self.cols
    }

    /// Physical byte footprint including padding and double buffering —
    /// the "actual" shared memory of the paper's Fig. 10.
    pub fn alloc_bytes(&self) -> u64 {
        if self.streamed {
            return 0; // lives in the register file, not shared memory
        }
        let copies = if self.double_buffered { 2 } else { 1 };
        self.rows * (self.cols + self.pad_cols) * self.dtype.size_bytes() * copies
    }
}

/// A value a tile coordinate can be indexed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarRef {
    /// `blockIdx` component `i` of the launch grid.
    Grid(usize),
    /// A per-block loop variable.
    Loop(LoopHandle),
    /// Constant zero (the dimension is covered by a single tile).
    Zero,
    /// A compile-time-known tile coordinate (statically unrolled loops,
    /// e.g. the column chunks of a streamed weight panel).
    Const(u64),
}

/// One dimension of a tile access: element offset = `var * tile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileIndex {
    /// The index variable.
    pub var: VarRef,
    /// Tile extent along this dimension (stride of `var` in elements).
    pub tile: u64,
}

/// A rectangular tile of a global buffer.
///
/// `indices.len()` must equal the buffer rank. The trailing two indices
/// (one, for rank-1 buffers) select a `rows × cols` region whose extents
/// come from the destination/source [`SmemDecl`]; leading indices select
/// slices (e.g. the batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileAccess {
    /// Accessed buffer.
    pub buf: BufId,
    /// One index per buffer dimension.
    pub indices: Vec<TileIndex>,
}

/// Declaration that tile accesses on `buf` may run past the buffer
/// extent along dimension `dim` — the canonical ceil-div partial final
/// tile, where loads zero-pad and stores clip.
///
/// The lowering records these marks at lower time
/// (`mcfuser-tile`'s last step); the static verifier
/// ([`crate::verify`]) rejects any clipped access that is *not* marked,
/// so accidental out-of-bounds addressing (a shifted index, a wrong
/// grid var) can never hide behind the interpreter's zero-fill/clip
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClipMark {
    /// The buffer whose accesses may clip.
    pub buf: BufId,
    /// The (0-based) buffer dimension along which clipping is expected.
    pub dim: usize,
}

/// A statement of the per-block program.
#[allow(missing_docs)] // variant fields are described by the variant docs
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BlockStmt {
    /// A counted loop over tile indices.
    Loop {
        handle: LoopHandle,
        extent: u64,
        body: Vec<BlockStmt>,
    },
    /// Copy a tile from global memory into shared memory (quantizing to the
    /// smem precision).
    Load { src: TileAccess, dst: SmemId },
    /// Copy a tile from shared memory back to global memory.
    Store { dst: TileAccess, src: SmemId },
    /// Fill a shared buffer with a constant (accumulator init, `-inf` for
    /// softmax row maxima, ...).
    Fill { dst: SmemId, value: f32 },
    /// Tensor-core tile GEMM: `acc += a × b` (or `a × bᵀ`).
    Gemm {
        a: SmemId,
        b: SmemId,
        acc: SmemId,
        /// Interpret `b` as transposed (`rows` = N, `cols` = K).
        b_transposed: bool,
        /// Column offset into `acc` where this GEMM's `N` columns land.
        /// A chunked final stage streams its weight panel in column
        /// slices and fills the accumulator slice by slice; whole-tile
        /// GEMMs use 0.
        acc_col: u64,
    },
    /// FlashAttention-style streaming softmax update over `scores`:
    /// rescales the running accumulators listed in `rescale` and replaces
    /// `scores` with un-normalized probabilities.
    OnlineSoftmax {
        scores: SmemId,
        row_max: SmemId,
        row_sum: SmemId,
        rescale: Vec<SmemId>,
        /// Pre-softmax scaling (e.g. `1/sqrt(d_k)`).
        scale: f32,
    },
    /// Divide each row of `target` by the matching `denom` entry
    /// (softmax normalization before the final store).
    RowDiv { target: SmemId, denom: SmemId },
    /// Element-wise ReLU.
    Relu { target: SmemId },
    /// Element-wise GELU (tanh approximation).
    Gelu { target: SmemId },
    /// Element-wise scale by a constant.
    Scale { target: SmemId, factor: f32 },
    /// Element-wise addition of a same-shaped tile: `target += other`
    /// (additive attention masks).
    AddTile { target: SmemId, other: SmemId },
    /// Add a row vector (`bias`, a `1 × cols` buffer) to each row of
    /// `target`.
    AddBias { target: SmemId, bias: SmemId },
    /// Exponentiate every element (two-pass softmax building block).
    Exp { target: SmemId },
    /// Per-row mean and reciprocal-σ over the *full* rows of a global
    /// tensor (optionally summed element-wise with a second tensor), written
    /// into `rows × 1` shared buffers. Block-root statement backing the
    /// prologue-LayerNorm stitch: it reads raw f32 global memory in row
    /// order so the stats are bit-identical to the graph reference.
    /// Out-of-range rows get `mean = 0`, `rstd = 1`.
    RowNormStats {
        a: TileAccess,
        residual: Option<TileAccess>,
        rows: u64,
        cols: u64,
        mean: SmemId,
        rstd: SmemId,
        eps: f32,
    },
    /// In-place row normalization of `target` with per-row stats and an
    /// optional affine transform, rounding each element to `round`:
    /// `t[r,c] = round(((t[r,c] - mean[r]) * rstd[r]) * gamma[c] + beta[c])`.
    NormalizeTile {
        target: SmemId,
        mean: SmemId,
        rstd: SmemId,
        gamma: Option<SmemId>,
        beta: Option<SmemId>,
        round: DType,
    },
    /// Round every element of `target` to `dtype` in place — mirrors the
    /// store-then-reload precision loss at an unfused kernel boundary.
    Quantize { target: SmemId, dtype: DType },
    /// `target[r,c] += src[r,c]` read raw (f32) from global memory; rows
    /// past the tensor extent contribute zero. Epilogue residual stitch.
    AddGlobal { target: SmemId, src: TileAccess },
    /// Recompute the prologue LayerNorm output at this block's tail columns
    /// from raw global memory and add it to `target` in f32 (the
    /// `PrologueOut` epilogue residual — the unfused layout consumes the
    /// *unquantized* LayerNorm values, so they are rebuilt exactly).
    AddRecomputedNorm {
        target: SmemId,
        a: TileAccess,
        residual: Option<TileAccess>,
        mean: SmemId,
        rstd: SmemId,
        gamma: Option<SmemId>,
        beta: Option<SmemId>,
    },
    /// Full-row LayerNorm of `target` in f32. The tile's columns must span
    /// the whole normalized axis (lowering enforces `t_n == d_L`).
    LayerNormTile {
        target: SmemId,
        gamma: Option<SmemId>,
        beta: Option<SmemId>,
        eps: f32,
    },
}

/// Shape taxonomy of a lowered loop nest, recorded at lower time so an
/// execution backend can dispatch to a specialized kernel without
/// re-walking the body (the FusionStitching streaming / reduction /
/// fused-pipeline vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NestClass {
    /// Pure data movement and element-wise glue: loads, stores, fills and
    /// element-wise tile math, but no GEMM and no cross-element reduction.
    Streaming,
    /// A tiled GEMM reduction (k-loop accumulating into a resident tile),
    /// possibly with element-wise epilogues.
    Reduction,
    /// A fused prologue/epilogue pipeline: the nest contains streaming
    /// normalization / softmax stages (`RowNormStats`, `NormalizeTile`,
    /// `AddRecomputedNorm`, `LayerNormTile`, `OnlineSoftmax`, `AddGlobal`)
    /// around its reductions.
    FusedPipeline,
    /// Not yet classified (programs deserialized from caches written
    /// before the class existed). Executors re-classify on demand.
    #[default]
    Unknown,
}

/// Classify a statement list into its [`NestClass`].
pub fn classify_nest(stmts: &[BlockStmt]) -> NestClass {
    fn walk(stmts: &[BlockStmt], has_gemm: &mut bool, has_pipeline: &mut bool) {
        for s in stmts {
            match s {
                BlockStmt::Loop { body, .. } => walk(body, has_gemm, has_pipeline),
                BlockStmt::Gemm { .. } => *has_gemm = true,
                BlockStmt::OnlineSoftmax { .. }
                | BlockStmt::RowNormStats { .. }
                | BlockStmt::NormalizeTile { .. }
                | BlockStmt::AddGlobal { .. }
                | BlockStmt::AddRecomputedNorm { .. }
                | BlockStmt::LayerNormTile { .. } => *has_pipeline = true,
                _ => {}
            }
        }
    }
    let (mut has_gemm, mut has_pipeline) = (false, false);
    walk(stmts, &mut has_gemm, &mut has_pipeline);
    if has_pipeline {
        NestClass::FusedPipeline
    } else if has_gemm {
        NestClass::Reduction
    } else {
        NestClass::Streaming
    }
}

/// A complete virtual kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileProgram {
    /// Kernel name.
    pub name: String,
    /// Global buffers.
    pub buffers: Vec<BufferDecl>,
    /// Shared-memory tile buffers.
    pub smem: Vec<SmemDecl>,
    /// Launch-grid extents; `VarRef::Grid(i)` ranges over `0..grid[i]`.
    pub grid: Vec<u64>,
    /// Per-block statement list.
    pub body: Vec<BlockStmt>,
    /// Operand precision seen by tensor cores (input tiles).
    pub dtype: DType,
    /// Loop-nest shape recorded at lower time ([`ProgramBuilder::finish`]);
    /// [`NestClass::Unknown`] only for programs built by hand without the
    /// builder ([`TileProgram::nest_class`] re-derives it on demand).
    pub nest_class: NestClass,
    /// Buffer dimensions where partial-tile clipping is *declared*
    /// (see [`ClipMark`]). Populated by the lowering; hand-built
    /// programs default to empty, so any clipped access they contain is
    /// rejected by [`crate::verify::verify_program`].
    pub clip_ok: Vec<ClipMark>,
}

/// Structural validation error.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    UnknownBuffer(BufId),
    UnknownSmem(SmemId),
    /// A tile access has the wrong number of indices for its buffer.
    RankMismatch {
        buf: BufId,
        rank: usize,
        indices: usize,
    },
    /// GEMM operand tile shapes do not agree.
    GemmShapeMismatch {
        a: SmemId,
        b: SmemId,
        acc: SmemId,
    },
    /// A loop handle is reused in overlapping scopes.
    DuplicateLoop(LoopHandle),
    /// `VarRef::Grid(i)` with `i` out of range of the grid rank.
    UnknownGridDim(usize),
    /// Loop with zero extent.
    EmptyLoop(LoopHandle),
    /// A tile access references a `VarRef::Loop` whose handle is not in
    /// scope at the statement — either never defined or already popped.
    /// The interpreter would silently read the handle's *last* value
    /// (or 0), so this is a miscompile, not a runtime error.
    LoopOutOfScope(LoopHandle),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::UnknownBuffer(b) => write!(f, "unknown buffer {:?}", b),
            ProgramError::UnknownSmem(s) => write!(f, "unknown smem buffer {:?}", s),
            ProgramError::RankMismatch { buf, rank, indices } => write!(
                f,
                "tile access on {:?} has {} indices but buffer rank is {}",
                buf, indices, rank
            ),
            ProgramError::GemmShapeMismatch { a, b, acc } => {
                write!(f, "gemm shape mismatch a={:?} b={:?} acc={:?}", a, b, acc)
            }
            ProgramError::DuplicateLoop(l) => write!(f, "loop {:?} redefined in scope", l),
            ProgramError::UnknownGridDim(i) => write!(f, "grid dim {} out of range", i),
            ProgramError::EmptyLoop(l) => write!(f, "loop {:?} has zero extent", l),
            ProgramError::LoopOutOfScope(l) => {
                write!(f, "tile access references loop {:?} out of scope", l)
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl TileProgram {
    /// Number of thread blocks in the launch grid.
    pub fn num_blocks(&self) -> u64 {
        self.grid.iter().product::<u64>().max(1)
    }

    /// The recorded nest class, re-deriving it for programs that predate
    /// the field (deserialized as [`NestClass::Unknown`]).
    pub fn nest_class(&self) -> NestClass {
        if self.nest_class == NestClass::Unknown {
            classify_nest(&self.body)
        } else {
            self.nest_class
        }
    }

    /// Physical shared-memory footprint per block (padding + double
    /// buffering included) — the quantity Fig. 10 calls "measured".
    pub fn smem_bytes(&self) -> u64 {
        self.smem.iter().map(SmemDecl::alloc_bytes).sum()
    }

    /// Structural validation: buffer/smem ids in range, access ranks match,
    /// GEMM tile shapes compose, loop handles unique along each path.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let mut live_loops: Vec<LoopHandle> = Vec::new();
        self.validate_stmts(&self.body, &mut live_loops)
    }

    fn validate_access(
        &self,
        acc: &TileAccess,
        live_loops: &[LoopHandle],
    ) -> Result<(), ProgramError> {
        let buf = self
            .buffers
            .get(acc.buf.0)
            .ok_or(ProgramError::UnknownBuffer(acc.buf))?;
        if acc.indices.len() != buf.shape.len() {
            return Err(ProgramError::RankMismatch {
                buf: acc.buf,
                rank: buf.shape.len(),
                indices: acc.indices.len(),
            });
        }
        for idx in &acc.indices {
            match idx.var {
                VarRef::Grid(g) => {
                    if g >= self.grid.len() {
                        return Err(ProgramError::UnknownGridDim(g));
                    }
                }
                VarRef::Loop(h) => {
                    // An index on a popped (or never-defined) handle would
                    // execute against the handle's stale environment slot
                    // — reject it here instead of letting the interpreter
                    // silently address the wrong tile.
                    if !live_loops.contains(&h) {
                        return Err(ProgramError::LoopOutOfScope(h));
                    }
                }
                VarRef::Zero | VarRef::Const(_) => {}
            }
        }
        Ok(())
    }

    fn smem_decl(&self, id: SmemId) -> Result<&SmemDecl, ProgramError> {
        self.smem.get(id.0).ok_or(ProgramError::UnknownSmem(id))
    }

    fn validate_stmts(
        &self,
        stmts: &[BlockStmt],
        live_loops: &mut Vec<LoopHandle>,
    ) -> Result<(), ProgramError> {
        for s in stmts {
            match s {
                BlockStmt::Loop {
                    handle,
                    extent,
                    body,
                } => {
                    if *extent == 0 {
                        return Err(ProgramError::EmptyLoop(*handle));
                    }
                    if live_loops.contains(handle) {
                        return Err(ProgramError::DuplicateLoop(*handle));
                    }
                    live_loops.push(*handle);
                    self.validate_stmts(body, live_loops)?;
                    live_loops.pop();
                }
                BlockStmt::Load { src, dst } => {
                    self.validate_access(src, live_loops)?;
                    self.smem_decl(*dst)?;
                }
                BlockStmt::Store { dst, src } => {
                    self.validate_access(dst, live_loops)?;
                    self.smem_decl(*src)?;
                }
                BlockStmt::Fill { dst, .. } => {
                    self.smem_decl(*dst)?;
                }
                BlockStmt::Gemm {
                    a,
                    b,
                    acc,
                    b_transposed,
                    acc_col,
                } => {
                    let (da, db, dacc) = (
                        self.smem_decl(*a)?,
                        self.smem_decl(*b)?,
                        self.smem_decl(*acc)?,
                    );
                    let (bk, bn) = if *b_transposed {
                        (db.cols, db.rows)
                    } else {
                        (db.rows, db.cols)
                    };
                    if da.cols != bk || da.rows != dacc.rows || *acc_col + bn > dacc.cols {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *a,
                            b: *b,
                            acc: *acc,
                        });
                    }
                }
                BlockStmt::OnlineSoftmax {
                    scores,
                    row_max,
                    row_sum,
                    rescale,
                    ..
                } => {
                    let ds = self.smem_decl(*scores)?;
                    let dm = self.smem_decl(*row_max)?;
                    let dn = self.smem_decl(*row_sum)?;
                    if dm.rows != ds.rows || dn.rows != ds.rows {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *scores,
                            b: *row_max,
                            acc: *row_sum,
                        });
                    }
                    for r in rescale {
                        let dr = self.smem_decl(*r)?;
                        if dr.rows != ds.rows {
                            return Err(ProgramError::GemmShapeMismatch {
                                a: *scores,
                                b: *r,
                                acc: *row_sum,
                            });
                        }
                    }
                }
                BlockStmt::RowDiv { target, denom } => {
                    let dt = self.smem_decl(*target)?;
                    let dd = self.smem_decl(*denom)?;
                    if dt.rows != dd.rows {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *target,
                            b: *denom,
                            acc: *denom,
                        });
                    }
                }
                BlockStmt::AddBias { target, bias } => {
                    let dt = self.smem_decl(*target)?;
                    let db = self.smem_decl(*bias)?;
                    if db.cols != dt.cols {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *target,
                            b: *bias,
                            acc: *bias,
                        });
                    }
                }
                BlockStmt::AddTile { target, other } => {
                    let dt = self.smem_decl(*target)?;
                    let d2 = self.smem_decl(*other)?;
                    if dt.rows != d2.rows || dt.cols != d2.cols {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *target,
                            b: *other,
                            acc: *other,
                        });
                    }
                }
                BlockStmt::Relu { target }
                | BlockStmt::Gelu { target }
                | BlockStmt::Scale { target, .. }
                | BlockStmt::Exp { target }
                | BlockStmt::Quantize { target, .. } => {
                    self.smem_decl(*target)?;
                }
                BlockStmt::RowNormStats {
                    a,
                    residual,
                    rows,
                    mean,
                    rstd,
                    ..
                } => {
                    self.validate_access(a, live_loops)?;
                    if let Some(res) = residual {
                        self.validate_access(res, live_loops)?;
                    }
                    let dm = self.smem_decl(*mean)?;
                    let dr = self.smem_decl(*rstd)?;
                    if dm.rows < *rows || dr.rows < *rows {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *mean,
                            b: *rstd,
                            acc: *mean,
                        });
                    }
                }
                BlockStmt::NormalizeTile {
                    target,
                    mean,
                    rstd,
                    gamma,
                    beta,
                    ..
                } => {
                    let dt = self.smem_decl(*target)?;
                    let dm = self.smem_decl(*mean)?;
                    let dr = self.smem_decl(*rstd)?;
                    if dm.rows < dt.rows || dr.rows < dt.rows {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *target,
                            b: *mean,
                            acc: *rstd,
                        });
                    }
                    for aff in [gamma, beta].into_iter().flatten() {
                        let da = self.smem_decl(*aff)?;
                        if da.cols != dt.cols {
                            return Err(ProgramError::GemmShapeMismatch {
                                a: *target,
                                b: *aff,
                                acc: *aff,
                            });
                        }
                    }
                }
                BlockStmt::AddGlobal { target, src } => {
                    self.smem_decl(*target)?;
                    self.validate_access(src, live_loops)?;
                }
                BlockStmt::AddRecomputedNorm {
                    target,
                    a,
                    residual,
                    mean,
                    rstd,
                    gamma,
                    beta,
                } => {
                    let dt = self.smem_decl(*target)?;
                    self.validate_access(a, live_loops)?;
                    if let Some(res) = residual {
                        self.validate_access(res, live_loops)?;
                    }
                    let dm = self.smem_decl(*mean)?;
                    let dr = self.smem_decl(*rstd)?;
                    if dm.rows < dt.rows || dr.rows < dt.rows {
                        return Err(ProgramError::GemmShapeMismatch {
                            a: *target,
                            b: *mean,
                            acc: *rstd,
                        });
                    }
                    for aff in [gamma, beta].into_iter().flatten() {
                        let da = self.smem_decl(*aff)?;
                        if da.cols != dt.cols {
                            return Err(ProgramError::GemmShapeMismatch {
                                a: *target,
                                b: *aff,
                                acc: *aff,
                            });
                        }
                    }
                }
                BlockStmt::LayerNormTile {
                    target,
                    gamma,
                    beta,
                    ..
                } => {
                    let dt = self.smem_decl(*target)?;
                    for aff in [gamma, beta].into_iter().flatten() {
                        let da = self.smem_decl(*aff)?;
                        if da.cols != dt.cols {
                            return Err(ProgramError::GemmShapeMismatch {
                                a: *target,
                                b: *aff,
                                acc: *aff,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Ergonomic builder for [`TileProgram`]s, used by lowering and by the
/// baseline backends when they synthesize library kernels.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    buffers: Vec<BufferDecl>,
    smem: Vec<SmemDecl>,
    grid: Vec<u64>,
    dtype: DType,
    next_loop: usize,
}

impl ProgramBuilder {
    /// Start building a kernel with the given compute precision.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        ProgramBuilder {
            name: name.into(),
            dtype,
            ..Default::default()
        }
    }

    /// Declare a global buffer.
    pub fn buffer(
        &mut self,
        name: impl Into<String>,
        shape: Vec<u64>,
        dtype: DType,
        role: BufferRole,
    ) -> BufId {
        self.buffers.push(BufferDecl {
            name: name.into(),
            shape,
            dtype,
            role,
        });
        BufId(self.buffers.len() - 1)
    }

    /// Declare a plain shared-memory tile.
    pub fn smem(&mut self, name: impl Into<String>, rows: u64, cols: u64, dtype: DType) -> SmemId {
        self.smem.push(SmemDecl {
            name: name.into(),
            rows,
            cols,
            dtype,
            pad_cols: 0,
            double_buffered: false,
            streamed: false,
        });
        SmemId(self.smem.len() - 1)
    }

    /// Declare a shared buffer with explicit intra-tile policy.
    pub fn smem_with(
        &mut self,
        name: impl Into<String>,
        rows: u64,
        cols: u64,
        dtype: DType,
        pad_cols: u64,
        double_buffered: bool,
    ) -> SmemId {
        self.smem.push(SmemDecl {
            name: name.into(),
            rows,
            cols,
            dtype,
            pad_cols,
            double_buffered,
            streamed: false,
        });
        SmemId(self.smem.len() - 1)
    }

    /// Append a grid dimension, returning its `VarRef`.
    pub fn grid_dim(&mut self, extent: u64) -> VarRef {
        self.grid.push(extent);
        VarRef::Grid(self.grid.len() - 1)
    }

    /// Allocate a fresh loop handle.
    pub fn fresh_loop(&mut self) -> LoopHandle {
        let h = LoopHandle(self.next_loop);
        self.next_loop += 1;
        h
    }

    /// Finish, attaching the per-block body. The nest class is computed
    /// here — at lower time — so execution backends dispatch in O(1).
    pub fn finish(self, body: Vec<BlockStmt>) -> TileProgram {
        let nest_class = classify_nest(&body);
        TileProgram {
            name: self.name,
            buffers: self.buffers,
            smem: self.smem,
            grid: self.grid,
            body,
            dtype: self.dtype,
            nest_class,
            clip_ok: Vec::new(),
        }
    }
}

/// Ceiling division for tile counts.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> TileProgram {
        // C[64,64] = A[64,32] x B[32,64], one block, one k-iteration.
        let mut b = ProgramBuilder::new("tiny", DType::F16);
        let a = b.buffer("A", vec![64, 32], DType::F16, BufferRole::Input);
        let bb = b.buffer("B", vec![32, 64], DType::F16, BufferRole::Input);
        let c = b.buffer("C", vec![64, 64], DType::F16, BufferRole::Output);
        let sa = b.smem("sA", 64, 32, DType::F16);
        let sb = b.smem("sB", 32, 64, DType::F16);
        let sc = b.smem("sC", 64, 64, DType::F32);
        let gm = b.grid_dim(1);
        let body = vec![
            BlockStmt::Fill {
                dst: sc,
                value: 0.0,
            },
            BlockStmt::Load {
                src: TileAccess {
                    buf: a,
                    indices: vec![
                        TileIndex { var: gm, tile: 64 },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 32,
                        },
                    ],
                },
                dst: sa,
            },
            BlockStmt::Load {
                src: TileAccess {
                    buf: bb,
                    indices: vec![
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 32,
                        },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 64,
                        },
                    ],
                },
                dst: sb,
            },
            BlockStmt::Gemm {
                a: sa,
                b: sb,
                acc: sc,
                b_transposed: false,
                acc_col: 0,
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: c,
                    indices: vec![
                        TileIndex { var: gm, tile: 64 },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 64,
                        },
                    ],
                },
                src: sc,
            },
        ];
        b.finish(body)
    }

    #[test]
    fn valid_program_passes() {
        tiny_program().validate().unwrap();
    }

    #[test]
    fn num_blocks_and_smem() {
        let p = tiny_program();
        assert_eq!(p.num_blocks(), 1);
        // 64*32*2 + 32*64*2 + 64*64*4 bytes.
        assert_eq!(p.smem_bytes(), 64 * 32 * 2 + 32 * 64 * 2 + 64 * 64 * 4);
    }

    #[test]
    fn gemm_shape_mismatch_detected() {
        let mut p = tiny_program();
        // Shrink sB's K dim so the gemm no longer composes.
        p.smem[1].rows = 16;
        assert!(matches!(
            p.validate(),
            Err(ProgramError::GemmShapeMismatch { .. })
        ));
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut p = tiny_program();
        if let BlockStmt::Load { src, .. } = &mut p.body[1] {
            src.indices.pop();
        }
        assert!(matches!(
            p.validate(),
            Err(ProgramError::RankMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_loop_detected() {
        let mut p = tiny_program();
        let h = LoopHandle(0);
        let inner = BlockStmt::Loop {
            handle: h,
            extent: 2,
            body: vec![],
        };
        p.body = vec![BlockStmt::Loop {
            handle: h,
            extent: 2,
            body: vec![inner],
        }];
        assert!(matches!(p.validate(), Err(ProgramError::DuplicateLoop(_))));
    }

    #[test]
    fn sibling_loops_may_share_handles_not() {
        // Sibling loops with the same handle are fine structurally? No —
        // the builder always hands out fresh handles; reuse in *nested*
        // scopes is the error validate() guards against. Sibling reuse is
        // allowed (scopes don't overlap).
        let mut p = tiny_program();
        let h = LoopHandle(0);
        p.body = vec![
            BlockStmt::Loop {
                handle: h,
                extent: 2,
                body: vec![],
            },
            BlockStmt::Loop {
                handle: h,
                extent: 2,
                body: vec![],
            },
        ];
        p.validate().unwrap();
    }

    #[test]
    fn out_of_scope_loop_index_rejected() {
        // A load indexed by a loop handle whose loop has already closed:
        // before the live-scope check this validated clean and silently
        // read the handle's stale environment slot at run time.
        let mut p = tiny_program();
        let h = LoopHandle(0);
        let load = p.body.remove(1); // the A-tile load
        let mut stale_load = load.clone();
        if let BlockStmt::Load { src, .. } = &mut stale_load {
            src.indices[0].var = VarRef::Loop(h);
        }
        p.body.insert(
            1,
            BlockStmt::Loop {
                handle: h,
                extent: 1,
                body: vec![load],
            },
        );
        // Same handle used *outside* the loop: out of scope.
        p.body.insert(2, stale_load);
        assert_eq!(p.validate(), Err(ProgramError::LoopOutOfScope(h)));

        // Inside the loop the same index is fine.
        let mut ok = tiny_program();
        let load = ok.body.remove(1);
        let mut looped = load.clone();
        if let BlockStmt::Load { src, .. } = &mut looped {
            src.indices[0].var = VarRef::Loop(h);
        }
        ok.body.insert(
            1,
            BlockStmt::Loop {
                handle: h,
                extent: 1,
                body: vec![looped],
            },
        );
        ok.validate().unwrap();
    }

    #[test]
    fn zero_extent_loop_rejected() {
        let mut p = tiny_program();
        p.body = vec![BlockStmt::Loop {
            handle: LoopHandle(0),
            extent: 0,
            body: vec![],
        }];
        assert!(matches!(p.validate(), Err(ProgramError::EmptyLoop(_))));
    }

    #[test]
    fn double_buffering_doubles_footprint() {
        let d = SmemDecl {
            name: "t".into(),
            rows: 16,
            cols: 16,
            dtype: DType::F16,
            pad_cols: 8,
            double_buffered: true,
            streamed: false,
        };
        assert_eq!(d.alloc_bytes(), 16 * 24 * 2 * 2);
        let s = SmemDecl {
            streamed: true,
            ..d
        };
        assert_eq!(s.alloc_bytes(), 0);
    }

    #[test]
    fn ceil_div_works() {
        assert_eq!(ceil_div(1024, 16), 64);
        assert_eq!(ceil_div(1000, 16), 63);
        assert_eq!(ceil_div(1, 16), 1);
    }
}
