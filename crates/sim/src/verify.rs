//! `mcfuser-verify` — static analysis over lowered [`TileProgram`]s.
//!
//! The runtime test suites prove lowered kernels correct by *executing*
//! them against a reference; this module proves a complementary set of
//! properties *symbolically*, before a program is ever measured, cached,
//! widened, or served. It is the compile-time gate behind the ROADMAP's
//! "degrade, never miscompile" promise: a program that fails any
//! analysis is demoted (to its unstitched twin, the serial path, or the
//! reference interpreter) instead of being launched.
//!
//! Three analyses run in one walk of the block program:
//!
//! 1. **Symbolic bounds** — every [`TileAccess`] index is evaluated as
//!    an interval over the launch grid, the live loop extents, and
//!    `VarRef::Zero`/`VarRef::Const`. Each global load/store must start
//!    in-bounds for the declared buffer shape, and may run past the end
//!    of a dimension (the interpreter zero-pads loads and clips stores)
//!    *only* where the lowering explicitly declared a partial final tile
//!    via a [`ClipMark`]. An unmarked clip is exactly the signature of a
//!    shifted index or a wrong grid variable hiding behind the
//!    interpreter's forgiving semantics, and is rejected.
//! 2. **Initialization / def-use** — shared-memory state is abstractly
//!    interpreted per block: loads, fills, and stat writes are
//!    definitions; GEMMs, stores, and epilogue statements are uses (most
//!    epilogues are read-modify-write). The analysis rejects
//!    read-before-write (with a dedicated variant for an uninitialized
//!    GEMM accumulator), dead stores whose value no statement ever
//!    observes, out-of-scope `VarRef::Loop` handles, and dtype-flow
//!    violations across the f16-storage / f32-compute boundary
//!    (accumulators and normalization statistics must live in f32).
//! 3. **Inter-block races** — each block's written global footprint is
//!    computed symbolically and proved disjoint across the grid: every
//!    launch-grid dimension with more than one block must separate the
//!    footprint of every store by at least its span. Input buffers must
//!    never be written, and every `Output`-role buffer must be written
//!    by at least one store. [`verify_widened`] adds the widened-batch
//!    special case: a `VarRef::Zero`-pinned shared weight/aux slab must
//!    be read-only in every slot.
//!
//! The engine runs [`verify_program`] on every fresh tuning winner and
//! every cache rehydration, `CompiledModel::plan` re-checks each
//! served kernel, and `BatchedPlan` widening gates each widened program
//! through [`verify_widened`] (see the `mcfuser-core` crate). The
//! `verify_smoke` bench bin sweeps sampled candidates across every
//! workload family and asserts zero violations.

use crate::dtype::DType;
use crate::exec::HostTensor;
use crate::kernel::{
    BlockStmt, BufId, BufferRole, ClipMark, LoopHandle, ProgramError, SmemId, TileAccess,
    TileProgram, VarRef,
};

/// A violation found by the static verifier. Every variant names the
/// object it fired on, so demotion paths and tests can match
/// structurally instead of string-matching a message.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The program failed [`TileProgram::validate`] before any symbolic
    /// analysis ran.
    Structural(ProgramError),
    /// An access's symbolic start escapes the buffer along `dim`: the
    /// interpreter would zero-fill the whole tile (loads) or drop the
    /// write (stores) for at least one block.
    OutOfBounds {
        /// Buffer name.
        buf: String,
        /// Offending dimension.
        dim: usize,
        /// Maximum symbolic start offset along `dim`.
        start_max: u64,
        /// Declared extent of `dim`.
        extent: u64,
    },
    /// An access runs past the end of `dim` without a matching
    /// [`ClipMark`] — clipping that the lowering never declared.
    UnmarkedClip {
        /// Buffer name.
        buf: String,
        /// Offending dimension.
        dim: usize,
        /// Maximum symbolic end offset (start + span) along `dim`.
        end_max: u64,
        /// Declared extent of `dim`.
        extent: u64,
    },
    /// A raw-view statement (`RowNormStats`, `AddGlobal`,
    /// `AddRecomputedNorm`) targets a rank-<2 buffer; the executors
    /// require a matrix-shaped view.
    RawViewRank {
        /// Buffer name.
        buf: String,
    },
    /// A statement reads a shared-memory tile no statement has written.
    ReadBeforeWrite {
        /// Shared-buffer name.
        smem: String,
    },
    /// A GEMM accumulates into a tile that was never initialized
    /// (no `Fill` reached the `Gemm`) — garbage in the partial sums.
    UninitializedAccumulator {
        /// Accumulator shared-buffer name.
        smem: String,
    },
    /// A load/fill writes a tile whose value no later statement
    /// observes before it is overwritten or the block ends.
    DeadStore {
        /// Shared-buffer name.
        smem: String,
    },
    /// A tile that must carry f32 across the f16-storage / f32-compute
    /// boundary (GEMM accumulators, softmax and LayerNorm statistics)
    /// is declared at a narrower precision.
    DTypeFlow {
        /// Shared-buffer name.
        smem: String,
        /// Required precision.
        expected: DType,
        /// Declared precision.
        got: DType,
    },
    /// A store's footprint does not reference launch-grid dimension
    /// `grid_dim` (which has more than one block): two blocks differing
    /// only in that dimension would write the same elements.
    RaceOnGridDim {
        /// Buffer name.
        buf: String,
        /// The unreferenced grid dimension.
        grid_dim: usize,
    },
    /// A store advances by less than its span along `dim`: adjacent
    /// blocks write overlapping windows.
    OverlappingTiles {
        /// Buffer name.
        buf: String,
        /// Offending dimension.
        dim: usize,
        /// The stride (`var * tile`) between adjacent blocks.
        tile: u64,
        /// The written span along `dim`.
        span: u64,
    },
    /// Two stores to the same buffer disagree on their grid-indexed
    /// dimensions, so the cross-block disjointness proof does not
    /// compose across statements.
    InconsistentStores {
        /// Buffer name.
        buf: String,
    },
    /// A store targets an `Input`-role buffer — fused kernels must
    /// treat caller-staged tensors as read-only.
    InputWritten {
        /// Buffer name.
        buf: String,
    },
    /// An `Output`-role buffer is never stored to: the kernel would
    /// return whatever the arena handed out.
    OutputNeverStored {
        /// Buffer name.
        buf: String,
    },
    /// A widened-batch shared slab (`VarRef::Zero`-pinned leading
    /// index) is written: one request slot would corrupt the weights
    /// every other slot reads.
    SharedBufferWritten {
        /// Buffer name.
        buf: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Structural(e) => write!(f, "structural: {e}"),
            VerifyError::OutOfBounds {
                buf,
                dim,
                start_max,
                extent,
            } => write!(
                f,
                "access on '{buf}' dim {dim} starts at {start_max} past extent {extent}"
            ),
            VerifyError::UnmarkedClip {
                buf,
                dim,
                end_max,
                extent,
            } => write!(
                f,
                "access on '{buf}' dim {dim} clips at {end_max} > extent {extent} without a \
                 declared partial tile"
            ),
            VerifyError::RawViewRank { buf } => {
                write!(f, "raw-view statement on rank-<2 buffer '{buf}'")
            }
            VerifyError::ReadBeforeWrite { smem } => {
                write!(f, "shared tile '{smem}' is read before any write")
            }
            VerifyError::UninitializedAccumulator { smem } => {
                write!(f, "gemm accumulates into uninitialized tile '{smem}'")
            }
            VerifyError::DeadStore { smem } => {
                write!(f, "write to shared tile '{smem}' is never observed")
            }
            VerifyError::DTypeFlow {
                smem,
                expected,
                got,
            } => write!(
                f,
                "tile '{smem}' must be {expected:?} across the storage/compute boundary, \
                 declared {got:?}"
            ),
            VerifyError::RaceOnGridDim { buf, grid_dim } => write!(
                f,
                "store footprint on '{buf}' ignores grid dim {grid_dim}: blocks would overlap"
            ),
            VerifyError::OverlappingTiles {
                buf,
                dim,
                tile,
                span,
            } => write!(
                f,
                "store on '{buf}' dim {dim} advances {tile} but writes {span}: adjacent blocks \
                 overlap"
            ),
            VerifyError::InconsistentStores { buf } => write!(
                f,
                "stores to '{buf}' disagree on grid-indexed dims; disjointness unprovable"
            ),
            VerifyError::InputWritten { buf } => {
                write!(f, "store targets input buffer '{buf}'")
            }
            VerifyError::OutputNeverStored { buf } => {
                write!(f, "output buffer '{buf}' is never written")
            }
            VerifyError::SharedBufferWritten { buf } => {
                write!(f, "widened shared slab '{buf}' is written by the kernel")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ProgramError> for VerifyError {
    fn from(e: ProgramError) -> Self {
        VerifyError::Structural(e)
    }
}

/// What one [`verify_program`] run proved — returned on success so
/// callers (engine stats, the `verify_smoke` bench) can account for the
/// work without re-walking the program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Statements walked (loops count once, bodies inline).
    pub stmts: usize,
    /// Global tile accesses bounds-checked.
    pub accesses: usize,
    /// Global stores proved race-free across the grid.
    pub stores: usize,
    /// Accesses that clip and were covered by a declared [`ClipMark`].
    pub clipped: usize,
}

// --- access geometry --------------------------------------------------

/// The per-dimension span of an access, mirroring the executors: the
/// trailing `min(rank, 2)` dims span `rows × cols` (rank-1 buffers span
/// `cols` along their only dim); leading dims select a single slice.
fn spans(rank: usize, rows: u64, cols: u64) -> Vec<u64> {
    let mut v = vec![1u64; rank];
    if rank >= 2 {
        v[rank - 2] = rows;
        v[rank - 1] = cols;
    } else if rank == 1 {
        v[0] = cols;
    }
    v
}

/// Maximum value a [`VarRef`] can take under the given grid and live
/// loop scope. `None` for a loop handle that is not in scope.
fn var_max(var: VarRef, grid: &[u64], scope: &[(LoopHandle, u64)]) -> Option<u64> {
    match var {
        VarRef::Grid(i) => Some(grid[i].saturating_sub(1)),
        VarRef::Loop(h) => scope
            .iter()
            .rev()
            .find(|(sh, _)| *sh == h)
            .map(|(_, extent)| extent - 1),
        VarRef::Zero => Some(0),
        VarRef::Const(c) => Some(c),
    }
}

struct Analysis<'p> {
    p: &'p TileProgram,
    scope: Vec<(LoopHandle, u64)>,
    smem: Vec<SmemState>,
    /// Collected global stores: `(access, spans)`.
    stores: Vec<(TileAccess, Vec<u64>)>,
    report: VerifyReport,
}

#[derive(Debug, Clone, Copy, Default)]
struct SmemState {
    defined: bool,
    /// The last definition was a pure overwrite (load/fill/stat write)
    /// rather than a read-modify-write.
    last_def_pure: bool,
    used_since_def: bool,
}

impl<'p> Analysis<'p> {
    fn new(p: &'p TileProgram) -> Self {
        Analysis {
            p,
            scope: Vec::new(),
            smem: vec![SmemState::default(); p.smem.len()],
            stores: Vec::new(),
            report: VerifyReport::default(),
        }
    }

    fn buf_name(&self, b: BufId) -> String {
        self.p.buffers[b.0].name.clone()
    }

    fn smem_name(&self, s: SmemId) -> String {
        self.p.smem[s.0].name.clone()
    }

    /// Bounds-check one global access with the given per-dim spans.
    fn check_access(&mut self, acc: &TileAccess, spans: &[u64]) -> Result<(), VerifyError> {
        self.report.accesses += 1;
        let shape = &self.p.buffers[acc.buf.0].shape;
        for (d, (ix, (&extent, &span))) in acc
            .indices
            .iter()
            .zip(shape.iter().zip(spans.iter()))
            .enumerate()
        {
            let Some(maxv) = var_max(ix.var, &self.p.grid, &self.scope) else {
                return Err(VerifyError::Structural(ProgramError::LoopOutOfScope(
                    match ix.var {
                        VarRef::Loop(h) => h,
                        _ => unreachable!("only loop vars can be out of scope"),
                    },
                )));
            };
            let start_max = maxv * ix.tile;
            if start_max >= extent {
                return Err(VerifyError::OutOfBounds {
                    buf: self.buf_name(acc.buf),
                    dim: d,
                    start_max,
                    extent,
                });
            }
            let end_max = start_max + span;
            if end_max > extent {
                let marked = self
                    .p
                    .clip_ok
                    .iter()
                    .any(|m| m.buf == acc.buf && m.dim == d);
                if !marked {
                    return Err(VerifyError::UnmarkedClip {
                        buf: self.buf_name(acc.buf),
                        dim: d,
                        end_max,
                        extent,
                    });
                }
                self.report.clipped += 1;
            }
        }
        Ok(())
    }

    /// A raw-view access (`RowNormStats` and friends) — rank must be at
    /// least 2 and the spans come from the statement, not a smem decl.
    fn check_raw_view(
        &mut self,
        acc: &TileAccess,
        rows: u64,
        cols: u64,
    ) -> Result<(), VerifyError> {
        let rank = self.p.buffers[acc.buf.0].shape.len();
        if rank < 2 {
            return Err(VerifyError::RawViewRank {
                buf: self.buf_name(acc.buf),
            });
        }
        let sp = spans(rank, rows, cols);
        self.check_access(acc, &sp)
    }

    /// Record a use of a shared tile; `acc_of_gemm` selects the
    /// dedicated uninitialized-accumulator variant.
    fn use_smem(&mut self, s: SmemId, acc_of_gemm: bool) -> Result<(), VerifyError> {
        let st = &mut self.smem[s.0];
        if !st.defined {
            let smem = self.smem_name(s);
            return Err(if acc_of_gemm {
                VerifyError::UninitializedAccumulator { smem }
            } else {
                VerifyError::ReadBeforeWrite { smem }
            });
        }
        st.used_since_def = true;
        Ok(())
    }

    /// Record a definition. Pure definitions (full overwrites) that
    /// bury an unobserved earlier pure definition are dead stores.
    fn def_smem(&mut self, s: SmemId, pure_def: bool) -> Result<(), VerifyError> {
        let st = &mut self.smem[s.0];
        if pure_def && st.defined && st.last_def_pure && !st.used_since_def {
            return Err(VerifyError::DeadStore {
                smem: self.smem_name(s),
            });
        }
        let st = &mut self.smem[s.0];
        st.defined = true;
        st.last_def_pure = pure_def;
        st.used_since_def = false;
        Ok(())
    }

    /// Require f32 on a tile that crosses the storage/compute boundary.
    fn require_f32(&self, s: SmemId) -> Result<(), VerifyError> {
        let got = self.p.smem[s.0].dtype;
        if got != DType::F32 {
            return Err(VerifyError::DTypeFlow {
                smem: self.smem_name(s),
                expected: DType::F32,
                got,
            });
        }
        Ok(())
    }

    fn walk(&mut self, stmts: &[BlockStmt]) -> Result<(), VerifyError> {
        for s in stmts {
            self.report.stmts += 1;
            match s {
                BlockStmt::Loop {
                    handle,
                    extent,
                    body,
                } => {
                    self.scope.push((*handle, *extent));
                    self.walk(body)?;
                    self.scope.pop();
                    // Loop-carried uses: a tile defined late in the body
                    // and consumed at the top of the next iteration is
                    // observed even though a single sequential pass saw
                    // the def last. Any tile used anywhere in the body
                    // counts as observed after the loop.
                    let mut used = Vec::new();
                    collect_used_smem(body, &mut used);
                    for id in used {
                        self.smem[id.0].used_since_def = true;
                    }
                }
                BlockStmt::Load { src, dst } => {
                    let d = &self.p.smem[dst.0];
                    let sp = spans(self.p.buffers[src.buf.0].shape.len(), d.rows, d.cols);
                    self.check_access(src, &sp)?;
                    self.def_smem(*dst, true)?;
                }
                BlockStmt::Store { dst, src } => {
                    let d = &self.p.smem[src.0];
                    let sp = spans(self.p.buffers[dst.buf.0].shape.len(), d.rows, d.cols);
                    self.check_access(dst, &sp)?;
                    self.use_smem(*src, false)?;
                    self.report.stores += 1;
                    self.stores.push((dst.clone(), sp));
                }
                BlockStmt::Fill { dst, .. } => {
                    self.def_smem(*dst, true)?;
                }
                BlockStmt::Gemm { a, b, acc, .. } => {
                    self.use_smem(*a, false)?;
                    self.use_smem(*b, false)?;
                    self.use_smem(*acc, true)?;
                    self.require_f32(*acc)?;
                    self.def_smem(*acc, false)?;
                }
                BlockStmt::OnlineSoftmax {
                    scores,
                    row_max,
                    row_sum,
                    rescale,
                    ..
                } => {
                    for s in [scores, row_max, row_sum] {
                        self.use_smem(*s, false)?;
                        self.def_smem(*s, false)?;
                    }
                    self.require_f32(*row_max)?;
                    self.require_f32(*row_sum)?;
                    for r in rescale {
                        self.use_smem(*r, false)?;
                        self.def_smem(*r, false)?;
                    }
                }
                BlockStmt::RowDiv { target, denom } => {
                    self.use_smem(*denom, false)?;
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
                BlockStmt::Relu { target }
                | BlockStmt::Gelu { target }
                | BlockStmt::Scale { target, .. }
                | BlockStmt::Exp { target }
                | BlockStmt::Quantize { target, .. } => {
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
                BlockStmt::AddTile { target, other } => {
                    self.use_smem(*other, false)?;
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
                BlockStmt::AddBias { target, bias } => {
                    self.use_smem(*bias, false)?;
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
                BlockStmt::RowNormStats {
                    a,
                    residual,
                    rows,
                    cols,
                    mean,
                    rstd,
                    ..
                } => {
                    self.check_raw_view(a, *rows, *cols)?;
                    if let Some(res) = residual {
                        self.check_raw_view(res, *rows, *cols)?;
                    }
                    self.require_f32(*mean)?;
                    self.require_f32(*rstd)?;
                    self.def_smem(*mean, true)?;
                    self.def_smem(*rstd, true)?;
                }
                BlockStmt::NormalizeTile {
                    target,
                    mean,
                    rstd,
                    gamma,
                    beta,
                    ..
                } => {
                    self.use_smem(*mean, false)?;
                    self.use_smem(*rstd, false)?;
                    for aff in [gamma, beta].into_iter().flatten() {
                        self.use_smem(*aff, false)?;
                    }
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
                BlockStmt::AddGlobal { target, src } => {
                    let d = &self.p.smem[target.0];
                    let (rows, cols) = (d.rows, d.cols);
                    self.check_raw_view(src, rows, cols)?;
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
                BlockStmt::AddRecomputedNorm {
                    target,
                    a,
                    residual,
                    mean,
                    rstd,
                    gamma,
                    beta,
                } => {
                    let d = &self.p.smem[target.0];
                    let (rows, cols) = (d.rows, d.cols);
                    self.check_raw_view(a, rows, cols)?;
                    if let Some(res) = residual {
                        self.check_raw_view(res, rows, cols)?;
                    }
                    self.use_smem(*mean, false)?;
                    self.use_smem(*rstd, false)?;
                    for aff in [gamma, beta].into_iter().flatten() {
                        self.use_smem(*aff, false)?;
                    }
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
                BlockStmt::LayerNormTile {
                    target,
                    gamma,
                    beta,
                    ..
                } => {
                    for aff in [gamma, beta].into_iter().flatten() {
                        self.use_smem(*aff, false)?;
                    }
                    self.use_smem(*target, false)?;
                    self.def_smem(*target, false)?;
                }
            }
        }
        Ok(())
    }

    /// Inter-block race analysis over the collected stores.
    fn check_races(&self) -> Result<(), VerifyError> {
        // Group stores by buffer, preserving statement order.
        let mut by_buf: Vec<(BufId, Vec<usize>)> = Vec::new();
        for (i, (acc, _)) in self.stores.iter().enumerate() {
            match by_buf.iter_mut().find(|(b, _)| *b == acc.buf) {
                Some((_, v)) => v.push(i),
                None => by_buf.push((acc.buf, vec![i])),
            }
        }
        for (buf, idxs) in &by_buf {
            let decl = &self.p.buffers[buf.0];
            if decl.role == BufferRole::Input {
                return Err(VerifyError::InputWritten {
                    buf: decl.name.clone(),
                });
            }
            // All stores to one buffer must agree on their grid-indexed
            // dims so the per-dimension separation argument composes
            // across statements.
            let first = &self.stores[idxs[0]].0;
            for &i in &idxs[1..] {
                let other = &self.stores[i].0;
                let grid_dims = |a: &TileAccess| {
                    a.indices
                        .iter()
                        .enumerate()
                        .filter(|(_, ix)| matches!(ix.var, VarRef::Grid(_)))
                        .map(|(d, ix)| (d, ix.var, ix.tile))
                        .collect::<Vec<_>>()
                };
                if grid_dims(first) != grid_dims(other) {
                    return Err(VerifyError::InconsistentStores {
                        buf: decl.name.clone(),
                    });
                }
            }
            // Every grid dimension with >1 block must separate every
            // store's footprint by at least its span along some dim.
            for (g, &blocks) in self.p.grid.iter().enumerate() {
                if blocks <= 1 {
                    continue;
                }
                for &i in idxs {
                    let (acc, sp) = &self.stores[i];
                    let Some((d, ix)) = acc
                        .indices
                        .iter()
                        .enumerate()
                        .find(|(_, ix)| ix.var == VarRef::Grid(g))
                    else {
                        return Err(VerifyError::RaceOnGridDim {
                            buf: decl.name.clone(),
                            grid_dim: g,
                        });
                    };
                    if ix.tile < sp[d] {
                        return Err(VerifyError::OverlappingTiles {
                            buf: decl.name.clone(),
                            dim: d,
                            tile: ix.tile,
                            span: sp[d],
                        });
                    }
                }
            }
        }
        // Every output must be produced.
        for decl in &self.p.buffers {
            if decl.role == BufferRole::Output
                && !by_buf
                    .iter()
                    .any(|(b, _)| self.p.buffers[b.0].name == decl.name)
            {
                return Err(VerifyError::OutputNeverStored {
                    buf: decl.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Final dead-store sweep: a pure definition still unobserved at
    /// block end wrote a tile nobody read.
    fn check_dead_stores(&self) -> Result<(), VerifyError> {
        for (i, st) in self.smem.iter().enumerate() {
            if st.defined && st.last_def_pure && !st.used_since_def {
                return Err(VerifyError::DeadStore {
                    smem: self.p.smem[i].name.clone(),
                });
            }
        }
        Ok(())
    }
}

fn collect_used_smem(stmts: &[BlockStmt], out: &mut Vec<SmemId>) {
    for s in stmts {
        match s {
            BlockStmt::Loop { body, .. } => collect_used_smem(body, out),
            BlockStmt::Store { src, .. } => out.push(*src),
            BlockStmt::Gemm { a, b, acc, .. } => out.extend([*a, *b, *acc]),
            BlockStmt::OnlineSoftmax {
                scores,
                row_max,
                row_sum,
                rescale,
                ..
            } => {
                out.extend([*scores, *row_max, *row_sum]);
                out.extend(rescale.iter().copied());
            }
            BlockStmt::RowDiv { target, denom } => out.extend([*target, *denom]),
            BlockStmt::Relu { target }
            | BlockStmt::Gelu { target }
            | BlockStmt::Scale { target, .. }
            | BlockStmt::Exp { target }
            | BlockStmt::Quantize { target, .. } => out.push(*target),
            BlockStmt::AddTile { target, other } => out.extend([*target, *other]),
            BlockStmt::AddBias { target, bias } => out.extend([*target, *bias]),
            BlockStmt::NormalizeTile {
                target,
                mean,
                rstd,
                gamma,
                beta,
                ..
            } => {
                out.extend([*target, *mean, *rstd]);
                out.extend([gamma, beta].into_iter().flatten());
            }
            BlockStmt::AddGlobal { target, .. } => out.push(*target),
            BlockStmt::AddRecomputedNorm {
                target,
                mean,
                rstd,
                gamma,
                beta,
                ..
            } => {
                out.extend([*target, *mean, *rstd]);
                out.extend([gamma, beta].into_iter().flatten());
            }
            BlockStmt::LayerNormTile {
                target,
                gamma,
                beta,
                ..
            } => {
                out.push(*target);
                out.extend([gamma, beta].into_iter().flatten());
            }
            BlockStmt::Load { .. } | BlockStmt::Fill { .. } | BlockStmt::RowNormStats { .. } => {}
        }
    }
}

/// Run all three analyses over a lowered program. Returns what was
/// proved, or the first violation found (analyses run in program order,
/// so the error is deterministic).
pub fn verify_program(p: &TileProgram) -> Result<VerifyReport, VerifyError> {
    p.validate()?;
    let mut a = Analysis::new(p);
    a.walk(&p.body)?;
    a.check_dead_stores()?;
    a.check_races()?;
    Ok(a.report)
}

/// [`verify_program`] plus the widened-batch special case: any buffer
/// whose every access pins the leading index to `VarRef::Zero` while
/// the batch grid dimension is widened (`grid[0] > 1`) is a *shared*
/// slab — one copy read by every request slot — and must be read-only.
pub fn verify_widened(p: &TileProgram) -> Result<VerifyReport, VerifyError> {
    let report = verify_program(p)?;
    if p.grid.first().copied().unwrap_or(1) <= 1 {
        return Ok(report);
    }
    let mut zero_pinned = vec![true; p.buffers.len()];
    let mut written = vec![false; p.buffers.len()];
    let mut seen = vec![false; p.buffers.len()];
    visit_accesses(&p.body, &mut |acc: &TileAccess, is_store: bool| {
        seen[acc.buf.0] = true;
        if acc.indices.first().map(|ix| ix.var) != Some(VarRef::Zero) {
            zero_pinned[acc.buf.0] = false;
        }
        if is_store {
            written[acc.buf.0] = true;
        }
    });
    for (i, decl) in p.buffers.iter().enumerate() {
        if seen[i] && zero_pinned[i] && written[i] {
            return Err(VerifyError::SharedBufferWritten {
                buf: decl.name.clone(),
            });
        }
    }
    Ok(report)
}

fn visit_accesses(stmts: &[BlockStmt], f: &mut impl FnMut(&TileAccess, bool)) {
    for s in stmts {
        match s {
            BlockStmt::Loop { body, .. } => visit_accesses(body, f),
            BlockStmt::Load { src, .. } => f(src, false),
            BlockStmt::Store { dst, .. } => f(dst, true),
            BlockStmt::AddGlobal { src, .. } => f(src, false),
            BlockStmt::RowNormStats { a, residual, .. }
            | BlockStmt::AddRecomputedNorm { a, residual, .. } => {
                f(a, false);
                if let Some(r) = residual {
                    f(r, false);
                }
            }
            _ => {}
        }
    }
}

/// Record the partial final tiles a lowered program is *expected* to
/// clip, as [`ClipMark`]s on the program. This is the lowering's
/// explicit declaration point: `mcfuser-tile` calls it as the last step
/// of `lower()`, before any verifier ever sees the program. A program
/// mutated afterwards (or built by hand) carries no marks for its new
/// accesses, so [`verify_program`] rejects any clipping they introduce.
///
/// Only the canonical ceil-div pattern is markable: the access must
/// *start* in-bounds for every block (a start past the extent is never
/// marked — it stays an [`VerifyError::OutOfBounds`]).
pub fn mark_expected_clips(p: &mut TileProgram) {
    fn mark_access(
        p: &TileProgram,
        acc: &TileAccess,
        sp: &[u64],
        scope: &[(LoopHandle, u64)],
        marks: &mut Vec<ClipMark>,
    ) {
        let shape = &p.buffers[acc.buf.0].shape;
        for (d, (ix, (&extent, &span))) in acc
            .indices
            .iter()
            .zip(shape.iter().zip(sp.iter()))
            .enumerate()
        {
            let Some(maxv) = var_max(ix.var, &p.grid, scope) else {
                continue; // out-of-scope loop: validate() rejects it
            };
            let start_max = maxv * ix.tile;
            if start_max < extent && start_max + span > extent {
                let m = ClipMark {
                    buf: acc.buf,
                    dim: d,
                };
                if !marks.contains(&m) {
                    marks.push(m);
                }
            }
        }
    }
    fn walk(
        p: &TileProgram,
        stmts: &[BlockStmt],
        scope: &mut Vec<(LoopHandle, u64)>,
        marks: &mut Vec<ClipMark>,
    ) {
        for s in stmts {
            match s {
                BlockStmt::Loop {
                    handle,
                    extent,
                    body,
                } => {
                    scope.push((*handle, *extent));
                    walk(p, body, scope, marks);
                    scope.pop();
                }
                BlockStmt::Load { src, dst } => {
                    let d = &p.smem[dst.0];
                    let sp = spans(p.buffers[src.buf.0].shape.len(), d.rows, d.cols);
                    mark_access(p, src, &sp, scope, marks);
                }
                BlockStmt::Store { dst, src } => {
                    let d = &p.smem[src.0];
                    let sp = spans(p.buffers[dst.buf.0].shape.len(), d.rows, d.cols);
                    mark_access(p, dst, &sp, scope, marks);
                }
                BlockStmt::RowNormStats {
                    a,
                    residual,
                    rows,
                    cols,
                    ..
                } => {
                    let rank = p.buffers[a.buf.0].shape.len();
                    let sp = spans(rank, *rows, *cols);
                    mark_access(p, a, &sp, scope, marks);
                    if let Some(res) = residual {
                        let rank = p.buffers[res.buf.0].shape.len();
                        mark_access(p, res, &spans(rank, *rows, *cols), scope, marks);
                    }
                }
                BlockStmt::AddGlobal { target, src } => {
                    let d = &p.smem[target.0];
                    let rank = p.buffers[src.buf.0].shape.len();
                    mark_access(p, src, &spans(rank, d.rows, d.cols), scope, marks);
                }
                BlockStmt::AddRecomputedNorm {
                    target,
                    a,
                    residual,
                    ..
                } => {
                    let d = &p.smem[target.0];
                    let (rows, cols) = (d.rows, d.cols);
                    let rank = p.buffers[a.buf.0].shape.len();
                    mark_access(p, a, &spans(rank, rows, cols), scope, marks);
                    if let Some(res) = residual {
                        let rank = p.buffers[res.buf.0].shape.len();
                        mark_access(p, res, &spans(rank, rows, cols), scope, marks);
                    }
                }
                _ => {}
            }
        }
    }
    let mut marks = std::mem::take(&mut p.clip_ok);
    let mut scope = Vec::new();
    let body = std::mem::take(&mut p.body);
    walk(p, &body, &mut scope, &mut marks);
    p.body = body;
    p.clip_ok = marks;
}

/// Whether `t` is a valid one-hot scatter column (`[heads, n, 1]` with
/// exactly one `1.0` per head and zeros elsewhere) — the input-side
/// obligation of the decode-step KV append proof: the fused scatter
/// chain computes `cache + onehot × new_row`, which by linearity
/// changes exactly the one row per head selected here.
pub fn is_scatter_onehot(t: &HostTensor) -> bool {
    let [heads, n, one] = t.shape[..] else {
        return false;
    };
    if one != 1 {
        return false;
    }
    for h in 0..heads {
        let col = &t.data[(h * n) as usize..((h + 1) * n) as usize];
        let ones = col.iter().filter(|&&v| v == 1.0).count();
        let zeros = col.iter().filter(|&&v| v == 0.0).count();
        if ones != 1 || zeros != n as usize - 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BufferRole, ProgramBuilder, TileIndex};

    /// 1-block 64x64x32 matmul with exact tiles — verifies clean.
    fn exact_program() -> TileProgram {
        let mut b = ProgramBuilder::new("exact", DType::F16);
        let a = b.buffer("A", vec![64, 32], DType::F16, BufferRole::Input);
        let w = b.buffer("W", vec![32, 64], DType::F16, BufferRole::Input);
        let c = b.buffer("C", vec![64, 64], DType::F16, BufferRole::Output);
        let sa = b.smem("sA", 64, 32, DType::F16);
        let sw = b.smem("sW", 32, 64, DType::F16);
        let sc = b.smem("sC", 64, 64, DType::F32);
        let gm = b.grid_dim(1);
        let body = vec![
            BlockStmt::Fill {
                dst: sc,
                value: 0.0,
            },
            BlockStmt::Load {
                src: TileAccess {
                    buf: a,
                    indices: vec![
                        TileIndex { var: gm, tile: 64 },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 32,
                        },
                    ],
                },
                dst: sa,
            },
            BlockStmt::Load {
                src: TileAccess {
                    buf: w,
                    indices: vec![
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 32,
                        },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 64,
                        },
                    ],
                },
                dst: sw,
            },
            BlockStmt::Gemm {
                a: sa,
                b: sw,
                acc: sc,
                b_transposed: false,
                acc_col: 0,
            },
            BlockStmt::Store {
                dst: TileAccess {
                    buf: c,
                    indices: vec![
                        TileIndex { var: gm, tile: 64 },
                        TileIndex {
                            var: VarRef::Zero,
                            tile: 64,
                        },
                    ],
                },
                src: sc,
            },
        ];
        b.finish(body)
    }

    #[test]
    fn exact_program_verifies() {
        let r = verify_program(&exact_program()).unwrap();
        assert_eq!(r.stores, 1);
        assert_eq!(r.accesses, 3);
        assert_eq!(r.clipped, 0);
    }

    #[test]
    fn unmarked_clip_rejected_and_marking_allows_it() {
        let mut p = exact_program();
        // Shrink A's row extent so the 64-row tile clips.
        p.buffers[0].shape = vec![60, 32];
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::UnmarkedClip { dim: 0, .. })
        ));
        mark_expected_clips(&mut p);
        let r = verify_program(&p).unwrap();
        assert_eq!(r.clipped, 1);
    }

    #[test]
    fn shifted_index_is_out_of_bounds() {
        let mut p = exact_program();
        // Corrupt the A load: tile stride doubles, so the (only) block
        // still starts at 0 — widen the grid so blocks walk off the end.
        p.grid[0] = 2;
        p.buffers[2].shape = vec![128, 64]; // out grows with the grid
        if let BlockStmt::Load { src, .. } = &mut p.body[1] {
            src.indices[0].tile = 128; // shifted: should be 64
        }
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::OutOfBounds { dim: 0, .. })
        ));
    }

    #[test]
    fn uninitialized_accumulator_rejected() {
        let mut p = exact_program();
        p.body.remove(0); // drop the Fill
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::UninitializedAccumulator { .. })
        ));
    }

    #[test]
    fn dead_store_rejected() {
        let mut p = exact_program();
        // Load sW twice back to back: the first load is never observed.
        let load_w = p.body[2].clone();
        p.body.insert(2, load_w);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::DeadStore { .. })
        ));
    }

    #[test]
    fn overlapping_grid_footprints_rejected() {
        let mut p = exact_program();
        // Two blocks along m, but the store advances by less than the
        // tile rows — adjacent blocks overlap by half a tile.
        p.grid[0] = 2;
        p.buffers[2].shape = vec![96, 64];
        p.buffers[0].shape = vec![96, 32];
        p.clip_ok.push(ClipMark {
            buf: BufId(0),
            dim: 0,
        });
        if let BlockStmt::Load { src, .. } = &mut p.body[1] {
            src.indices[0].tile = 32;
        }
        if let BlockStmt::Store { dst, .. } = &mut p.body[4] {
            dst.indices[0].tile = 32; // writes 64 rows, advances 32
        }
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::OverlappingTiles { dim: 0, .. })
        ));
    }

    #[test]
    fn race_on_unreferenced_grid_dim_rejected() {
        let mut p = exact_program();
        // A second grid dimension no store references: blocks that
        // differ only there write the same footprint.
        p.grid.push(4);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::RaceOnGridDim { grid_dim: 1, .. })
        ));
    }

    #[test]
    fn store_to_input_rejected() {
        let mut p = exact_program();
        if let BlockStmt::Store { dst, .. } = &mut p.body[4] {
            dst.buf = BufId(0); // A is Input-role
            dst.indices[1].tile = 32;
        }
        // Make the access shape legal so only the role check fires.
        p.smem[2].cols = 32;
        p.smem[1].cols = 32;
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::InputWritten { .. })
        ));
    }

    #[test]
    fn widened_shared_slab_must_be_read_only() {
        let mut p = exact_program();
        // Widen the batch: 2 slots along grid dim 0, A and C slot-led.
        p.grid[0] = 2;
        p.buffers[0].shape = vec![128, 32];
        p.buffers[2].shape = vec![128, 64];
        // W stays [32, 64] and Zero-pinned: the shared slab.
        verify_widened(&p).unwrap();
        // A store to the shared slab is rejected even where the plain
        // race analysis would be fooled by a grid reference elsewhere.
        p.body.push(BlockStmt::Store {
            dst: TileAccess {
                buf: BufId(1),
                indices: vec![
                    TileIndex {
                        var: VarRef::Zero,
                        tile: 32,
                    },
                    TileIndex {
                        var: VarRef::Zero,
                        tile: 64,
                    },
                ],
            },
            src: SmemId(1),
        });
        assert!(verify_widened(&p).is_err());
    }

    #[test]
    fn scatter_onehot_recognized() {
        let mut t = HostTensor::zeros(&[2, 4, 1]);
        t.data[1] = 1.0;
        t.data[4 + 2] = 1.0;
        assert!(is_scatter_onehot(&t));
        t.data[0] = 1.0; // two ones in head 0
        assert!(!is_scatter_onehot(&t));
        let bad = HostTensor::zeros(&[2, 4, 1]);
        assert!(!is_scatter_onehot(&bad)); // no one at all
    }
}
