//! Ansor-style baseline: per-operator schedule search guided by a
//! learned (gradient-boosted-trees) cost model.
//!
//! Faithful to the mechanism the paper contrasts with (§II-B, Table I):
//!
//! * each compute operator is a *task* tuned independently — MBCI chains
//!   are never fused, compute ops are fusion boundaries;
//! * candidate schedules are tile configurations over the loop nest;
//! * a GBT model (the XGBoost stand-in) ranks candidates; every round the
//!   top-ranked ones are measured on the device, the model retrains, and
//!   *both* the measurements and the training land on the virtual tuning
//!   clock — this is where the paper's 70–139× tuning-time gap originates;
//! * memory-intensive ops are fused into single streaming kernels (what
//!   Ansor is genuinely good at).

use parking_lot::Mutex;
use rand::prelude::*;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use mcfuser_core::OpCostModel;
use mcfuser_ir::{ChainSpec, Epilogue, Graph, NodeId, Op};
use mcfuser_sim::{ceil_div, measure_noisy, CostProfile, DType, DeviceSpec, StreamKernel};
use mcfuser_tile::tile_options;

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};
use crate::gbt::{GbtModel, GbtParams};
use crate::libkernels::{fused_softmax_kernel, layernorm_kernel, matmul_program, matmul_time};

/// A tuned matmul task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TunedMatmul {
    /// Winning tile configuration.
    pub tiles: (u64, u64, u64),
    /// Measured kernel time at the winning configuration.
    pub time: f64,
    /// Virtual seconds spent tuning this task.
    pub tuning_seconds: f64,
    /// Measurements performed.
    pub trials: usize,
}

/// Feature vector of a tile configuration (the cost model inputs).
fn features(batch: u64, m: u64, n: u64, k: u64, t: (u64, u64, u64), dev: &DeviceSpec) -> Vec<f64> {
    let (tm, tn, tk) = t;
    let blocks = (batch * ceil_div(m, tm) * ceil_div(n, tn)) as f64;
    let smem = (tm * tk + tk * tn) as f64 * 2.0 + (tm * tn) as f64 * 4.0;
    let traffic = ((tm * tk + tk * tn) as f64) * ceil_div(k, tk) as f64 * blocks;
    let flops = 2.0 * (m * n * k * batch) as f64;
    vec![
        (tm as f64).ln(),
        (tn as f64).ln(),
        (tk as f64).ln(),
        blocks.ln(),
        (blocks / dev.num_sms as f64).min(4.0),
        smem.ln(),
        traffic.ln(),
        (flops / traffic.max(1.0)).ln(),
        ceil_div(k, tk) as f64,
    ]
}

/// Tune one batched-matmul task with `trials` measurements.
#[allow(clippy::too_many_arguments)]
pub fn tune_matmul_task(
    batch: u64,
    m: u64,
    n: u64,
    k: u64,
    dtype: DType,
    dev: &DeviceSpec,
    trials: usize,
    seed: u64,
) -> TunedMatmul {
    let cost = CostProfile::ansor();
    let mut rng = StdRng::seed_from_u64(seed);
    let dm = tile_options(m);
    let dn = tile_options(n);
    let dk: Vec<u64> = tile_options(k).into_iter().filter(|&t| t <= 128).collect();
    let sample = |rng: &mut StdRng| -> (u64, u64, u64) {
        (
            dm[rng.gen_range(0..dm.len())],
            dn[rng.gen_range(0..dn.len())],
            dk[rng.gen_range(0..dk.len())],
        )
    };

    let mut measured: FxHashMap<(u64, u64, u64), f64> = FxHashMap::default();
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut model: Option<GbtModel> = None;
    let mut tuning = 0.0f64;
    let mut best: Option<((u64, u64, u64), f64)> = None;

    while measured.len() < trials {
        let round = 64.min(trials - measured.len());
        // Candidate proposal: model-ranked exploitation + ε exploration.
        let mut cands: Vec<(u64, u64, u64)> = Vec::new();
        if let Some(mdl) = &model {
            let mut pool: Vec<(u64, u64, u64)> = (0..512).map(|_| sample(&mut rng)).collect();
            pool.sort_by(|a, b| {
                let fa = mdl.predict(&features(batch, m, n, k, *a, dev));
                let fb = mdl.predict(&features(batch, m, n, k, *b, dev));
                fa.total_cmp(&fb)
            });
            cands.extend(pool.into_iter().take(round.saturating_sub(8)));
            cands.extend((0..8).map(|_| sample(&mut rng)));
        } else {
            cands.extend((0..round).map(|_| sample(&mut rng)));
        }
        for t in cands {
            if measured.contains_key(&t) || measured.len() >= trials {
                continue;
            }
            let p = matmul_program("task", batch, m, n, k, t, dtype, Epilogue::None);
            let smem_fits = p.smem_bytes() <= dev.smem_per_block;
            let time = if smem_fits {
                measure_noisy(&p, dev, seed ^ measured.len() as u64).time
            } else {
                f64::INFINITY
            };
            tuning += cost.compile_seconds
                + cost.measure_overhead_seconds
                + if time.is_finite() {
                    cost.measure_repeats as f64 * time
                } else {
                    0.0
                };
            measured.insert(t, time);
            if time.is_finite() {
                xs.push(features(batch, m, n, k, t, dev));
                ys.push(time.ln());
                if best.map(|(_, bt)| time < bt).unwrap_or(true) {
                    best = Some((t, time));
                }
            }
        }
        if xs.len() >= 16 {
            model = Some(GbtModel::fit(&xs, &ys, &GbtParams::default()));
            tuning += cost.train_seconds;
        }
    }

    let (tiles, time) = best.unwrap_or(((64, 64, 32), f64::INFINITY));
    TunedMatmul {
        tiles,
        time,
        tuning_seconds: tuning,
        trials: measured.len(),
    }
}

/// The Ansor baseline.
#[derive(Debug)]
pub struct Ansor {
    /// Total measurement trials per sub-graph (paper: 1000), split across
    /// the sub-graph's tasks.
    pub trials_per_subgraph: usize,
    /// Tuned-task cache: (batch,m,n,k,dev) → result.
    cache: Mutex<FxHashMap<String, TunedMatmul>>,
}

impl Default for Ansor {
    fn default() -> Self {
        Ansor {
            trials_per_subgraph: 1000,
            cache: Mutex::new(FxHashMap::default()),
        }
    }
}

impl Ansor {
    /// With the paper's 1000 trials per sub-graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// With a reduced budget (for fast tests).
    pub fn with_trials(trials: usize) -> Self {
        Ansor {
            trials_per_subgraph: trials,
            cache: Mutex::new(FxHashMap::default()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn tuned(
        &self,
        batch: u64,
        m: u64,
        n: u64,
        k: u64,
        dtype: DType,
        dev: &DeviceSpec,
        trials: usize,
    ) -> TunedMatmul {
        let key = format!("{batch}x{m}x{n}x{k}:{}:{}", dtype, dev.name);
        if let Some(t) = self.cache.lock().get(&key) {
            return t.clone();
        }
        let t = tune_matmul_task(batch, m, n, k, dtype, dev, trials, 0xA502);
        self.cache.lock().insert(key, t.clone());
        t
    }
}

impl Backend for Ansor {
    fn name(&self) -> &'static str {
        "Ansor"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "Yes",
            automatic: "Yes",
            search_space: "Loop transformation + loop opt.",
            objective: "ML cost model (GBT)",
            tuning_time: "Long",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        let esz = chain.dtype.size_bytes();
        let n_tasks = chain.num_ops() + usize::from(chain.has_softmax());
        let trials = (self.trials_per_subgraph / n_tasks).max(1);
        let cost = CostProfile::ansor();
        let mut time = 0.0;
        let mut tuning = 0.0;
        let mut kernels = 0u32;
        let mut notes = Vec::new();
        for op in 0..chain.num_ops() {
            let (m, k, n) = (chain.m, chain.dims[op], chain.dims[op + 1]);
            let tuned = self.tuned(chain.batch, m, n, k, chain.dtype, dev, trials);
            tuning += tuned.tuning_seconds;
            // Final run benefits from hot intermediates.
            time += matmul_time(
                &format!("{}::mm{}", chain.name, op),
                chain.batch,
                m,
                n,
                k,
                tuned.tiles,
                chain.dtype,
                dev,
                op > 0,
                Epilogue::None,
            );
            kernels += 1;
            notes.push(format!("mm{op}:{:?}", tuned.tiles));
            match chain.epilogues[op] {
                Epilogue::None => {}
                Epilogue::Relu | Epilogue::Gelu | Epilogue::Scale(_) => {
                    // Ansor fuses element-wise epilogues (and bias adds)
                    // into the GEMM.
                }
                Epilogue::Softmax { .. } | Epilogue::MaskedSoftmax { .. } => {
                    let kern = fused_softmax_kernel(chain.batch * m, n, esz, true);
                    time += kern.time(dev);
                    kernels += 1;
                    // The softmax task is tuned too (cheap measurements).
                    tuning += trials as f64
                        * (cost.compile_seconds
                            + cost.measure_overhead_seconds
                            + cost.measure_repeats as f64 * kern.time(dev));
                }
            }
        }
        Ok(ChainRun {
            time,
            tuning_seconds: tuning,
            kernels,
            fused: false,
            note: notes.join(","),
        })
    }
}

impl OpCostModel for Ansor {
    fn name(&self) -> &str {
        "Ansor"
    }

    fn op_time(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64 {
        let n = graph.node(node);
        let esz = graph.dtype.size_bytes();
        match &n.op {
            Op::Input | Op::Weight | Op::Reshape => 0.0,
            Op::Linear | Op::BatchMatMul { .. } => {
                let x = graph.node(n.inputs[0]);
                let k = *x.shape.last().unwrap();
                let out_cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / out_cols;
                let tuned = self.tuned(
                    1,
                    rows,
                    out_cols,
                    k,
                    graph.dtype,
                    dev,
                    self.trials_per_subgraph,
                );
                matmul_time(
                    &n.name,
                    1,
                    rows,
                    out_cols,
                    k,
                    tuned.tiles,
                    graph.dtype,
                    dev,
                    true,
                    Epilogue::None,
                )
            }
            Op::Softmax { .. } => {
                let cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / cols;
                fused_softmax_kernel(rows, cols, esz, true).time(dev)
            }
            Op::LayerNorm => {
                let cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / cols;
                layernorm_kernel(rows, cols, esz, true).time(dev)
            }
            Op::Relu | Op::Gelu | Op::Scale(_) | Op::Add => {
                // Fused into producers by Ansor's memory-op fusion.
                let elems: u64 = n.shape.iter().product();
                // Adds with two live producers still stream once.
                if matches!(n.op, Op::Add) {
                    StreamKernel::elementwise(&n.name, elems, esz)
                        .with_l2_hot()
                        .time(dev)
                        * 0.5
                } else {
                    0.0
                }
            }
            Op::SplitHeads { .. } | Op::MergeHeads | Op::RepeatKv { .. } => {
                // Real data-movement permute: one stream pass, no fold.
                let elems: u64 = n.shape.iter().product();
                StreamKernel::elementwise(&n.name, elems, esz).time(dev)
            }
        }
    }

    fn op_time_standalone(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64 {
        let n = graph.node(node);
        // Ansor's memory-op fusion needs a standalone producer stage to
        // inline into; a chain-fused producer leaves a full stream pass.
        if matches!(n.op, Op::Relu | Op::Gelu | Op::Scale(_) | Op::Add) {
            let elems: u64 = n.shape.iter().product();
            return StreamKernel::elementwise(&n.name, elems, graph.dtype.size_bytes())
                .with_l2_hot()
                .time(dev);
        }
        self.op_time(graph, node, dev)
    }

    fn tuning_seconds(&self, graph: &Graph, nodes: &[NodeId], dev: &DeviceSpec) -> f64 {
        // Tune every distinct compute task (cache makes repeats free),
        // plus a per-memory-task measurement budget.
        let cost = CostProfile::ansor();
        let mut total = 0.0;
        let mut seen: FxHashMap<String, ()> = FxHashMap::default();
        for &id in nodes {
            let n = graph.node(id);
            match &n.op {
                Op::Linear | Op::BatchMatMul { .. } => {
                    let x = graph.node(n.inputs[0]);
                    let k = *x.shape.last().unwrap();
                    let out_cols = *n.shape.last().unwrap();
                    let rows: u64 = n.shape.iter().product::<u64>() / out_cols;
                    let key = format!("{rows}x{out_cols}x{k}:{}", dev.name);
                    if seen.insert(key.clone(), ()).is_none() {
                        let before = self.cache.lock().contains_key(&format!(
                            "1x{rows}x{out_cols}x{k}:{}:{}",
                            graph.dtype, dev.name
                        ));
                        let tuned = self.tuned(
                            1,
                            rows,
                            out_cols,
                            k,
                            graph.dtype,
                            dev,
                            self.trials_per_subgraph,
                        );
                        if !before {
                            total += tuned.tuning_seconds;
                        }
                    }
                }
                Op::Softmax { .. } | Op::LayerNorm => {
                    let key = format!(
                        "{}:{:?}",
                        n.name.split('.').next_back().unwrap_or(""),
                        n.shape
                    );
                    if seen.insert(key, ()).is_none() {
                        let t = self.op_time(graph, id, dev);
                        total += (self.trials_per_subgraph / 4) as f64
                            * (cost.compile_seconds
                                + cost.measure_overhead_seconds
                                + cost.measure_repeats as f64 * t);
                    }
                }
                _ => {}
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_matmul_beats_random_tiles_usually() {
        let dev = DeviceSpec::a100();
        let tuned = tune_matmul_task(1, 512, 512, 128, DType::F16, &dev, 120, 7);
        // Compare against a deliberately poor configuration.
        let bad = matmul_time(
            "bad",
            1,
            512,
            512,
            128,
            (16, 16, 16),
            DType::F16,
            &dev,
            false,
            Epilogue::None,
        );
        assert!(tuned.time < bad, "tuned {} vs bad {}", tuned.time, bad);
        assert!(tuned.tuning_seconds > 100.0, "{}", tuned.tuning_seconds);
    }

    #[test]
    fn chain_is_unfused_two_kernels() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let ansor = Ansor::with_trials(60);
        let run = ansor.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert_eq!(run.kernels, 2);
        assert!(!run.fused);
        assert!(run.tuning_seconds > 50.0);
    }

    #[test]
    fn cache_avoids_retuning() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let ansor = Ansor::with_trials(40);
        let dev = DeviceSpec::a100();
        let r1 = ansor.run_chain(&chain, &dev).unwrap();
        let r2 = ansor.run_chain(&chain, &dev).unwrap();
        assert_eq!(r1.time, r2.time);
    }

    #[test]
    fn attention_includes_softmax_kernel() {
        let chain = ChainSpec::attention("s", 4, 256, 256, 64, 64);
        let ansor = Ansor::with_trials(45);
        let run = ansor.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert_eq!(run.kernels, 3);
    }

    #[test]
    fn tuning_dwarfs_mcfuser_budget() {
        // Even a tiny 100-trial Ansor burn exceeds MCFuser's whole budget.
        let dev = DeviceSpec::a100();
        let tuned = tune_matmul_task(1, 512, 256, 64, DType::F16, &dev, 100, 1);
        assert!(tuned.tuning_seconds > 200.0, "{}", tuned.tuning_seconds);
    }
}
