//! Vendor-library kernel substrate (the cuBLAS / CUTLASS analogue).
//!
//! Unfused baselines execute chains one operator at a time with library
//! GEMM kernels: fixed tile *templates* chosen by a static heuristic, one
//! kernel launch per operator, intermediates round-tripping through
//! global memory (with L2 residency when they fit — the simulator models
//! that). This module builds those kernels as [`TileProgram`]s so the
//! same timing model prices everything.

use mcfuser_ir::Epilogue;
use mcfuser_sim::{
    ceil_div, measure_opts, mma_efficiency, BlockStmt, BufId, BufferRole, DType, DeviceSpec,
    MeasureOpts, ProgramBuilder, StreamKernel, TileAccess, TileIndex, TileProgram, VarRef,
};

/// The fixed tile templates a vendor library ships (subset of real
/// cuBLAS/CUTLASS kernel shapes).
pub const LIBRARY_TILES: [(u64, u64, u64); 6] = [
    (256, 128, 32),
    (128, 128, 32),
    (128, 64, 32),
    (64, 128, 32),
    (64, 64, 32),
    (64, 64, 16),
];

/// Static library heuristic: pick the template maximizing a utilization
/// score (tensor-core efficiency × occupancy proxy × padding economy).
/// This is deliberately *not* a measured search — the gap between this
/// heuristic and shape-specialized tuning is one of the reasons tuned
/// compilers beat libraries on skinny MBCI shapes.
pub fn pick_library_tile(batch: u64, m: u64, n: u64, k: u64, dev: &DeviceSpec) -> (u64, u64, u64) {
    let mut best = LIBRARY_TILES[0];
    let mut best_score = f64::MIN;
    for &(tm, tn, tk) in &LIBRARY_TILES {
        let blocks = (batch * ceil_div(m, tm) * ceil_div(n, tn)) as f64;
        let occupancy = (blocks / dev.num_sms as f64).min(1.0);
        let padded = (ceil_div(m, tm) * tm * ceil_div(n, tn) * tn * ceil_div(k, tk) * tk) as f64
            / (m * n * k) as f64;
        let score = mma_efficiency(tm, tn, tk) * occupancy / padded;
        if score > best_score {
            best_score = score;
            best = (tm, tn, tk);
        }
    }
    best
}

/// Build a batched matmul kernel `out[b,m,n] = x[b,m,k] · w[b,k,n]`
/// with the given tiles (double buffered, library style). Optionally
/// fuses a simple element-wise epilogue (Relay/BOLT epilogue fusion).
#[allow(clippy::too_many_arguments)]
pub fn matmul_program(
    name: &str,
    batch: u64,
    m: u64,
    n: u64,
    k: u64,
    tiles: (u64, u64, u64),
    dtype: DType,
    epilogue: Epilogue,
) -> TileProgram {
    let (tm, tn, tk) = tiles;
    let mut b = ProgramBuilder::new(name, dtype);
    let x = b.buffer("x", vec![batch, m, k], dtype, BufferRole::Input);
    let w = b.buffer("w", vec![batch, k, n], dtype, BufferRole::Input);
    let out = b.buffer("out", vec![batch, m, n], dtype, BufferRole::Output);
    let sa = b.smem_with("sx", tm, tk, dtype, 8, true);
    let sb = b.smem_with("sw", tk, tn, dtype, 8, true);
    let sc = b.smem("sacc", tm, tn, DType::F32);
    let gb = b.grid_dim(batch);
    let gm = b.grid_dim(ceil_div(m, tm));
    let gn = b.grid_dim(ceil_div(n, tn));
    let kl = b.fresh_loop();
    let mut body = vec![
        BlockStmt::Fill {
            dst: sc,
            value: 0.0,
        },
        BlockStmt::Loop {
            handle: kl,
            extent: ceil_div(k, tk),
            body: vec![
                BlockStmt::Load {
                    src: TileAccess {
                        buf: x,
                        indices: vec![
                            TileIndex { var: gb, tile: 1 },
                            TileIndex { var: gm, tile: tm },
                            TileIndex {
                                var: VarRef::Loop(kl),
                                tile: tk,
                            },
                        ],
                    },
                    dst: sa,
                },
                BlockStmt::Load {
                    src: TileAccess {
                        buf: w,
                        indices: vec![
                            TileIndex { var: gb, tile: 1 },
                            TileIndex {
                                var: VarRef::Loop(kl),
                                tile: tk,
                            },
                            TileIndex { var: gn, tile: tn },
                        ],
                    },
                    dst: sb,
                },
                BlockStmt::Gemm {
                    a: sa,
                    b: sb,
                    acc: sc,
                    b_transposed: false,
                    acc_col: 0,
                },
            ],
        },
    ];
    match epilogue {
        Epilogue::None | Epilogue::Softmax { .. } | Epilogue::MaskedSoftmax { .. } => {}
        Epilogue::Relu => body.push(BlockStmt::Relu { target: sc }),
        Epilogue::Gelu => body.push(BlockStmt::Gelu { target: sc }),
        Epilogue::Scale(f) => body.push(BlockStmt::Scale {
            target: sc,
            factor: f,
        }),
    }
    body.push(BlockStmt::Store {
        dst: TileAccess {
            buf: out,
            indices: vec![
                TileIndex { var: gb, tile: 1 },
                TileIndex { var: gm, tile: tm },
                TileIndex { var: gn, tile: tn },
            ],
        },
        src: sc,
    });
    b.finish(body)
}

/// Time one library matmul on a device; `hot_input` marks the `x`
/// operand as L2-resident (it was just produced by the previous kernel).
#[allow(clippy::too_many_arguments)]
pub fn matmul_time(
    name: &str,
    batch: u64,
    m: u64,
    n: u64,
    k: u64,
    tiles: (u64, u64, u64),
    dtype: DType,
    dev: &DeviceSpec,
    hot_input: bool,
    epilogue: Epilogue,
) -> f64 {
    let p = matmul_program(name, batch, m, n, k, tiles, dtype, epilogue);
    let opts = MeasureOpts {
        l2_resident: if hot_input { vec![BufId(0)] } else { vec![] },
    };
    measure_opts(&p, dev, &opts).time
}

/// Unfused softmax over a `[rows × cols]` score matrix, library style:
/// one kernel computing row statistics, one normalizing. Returns the
/// kernels so callers can count launches.
pub fn softmax_kernels(rows: u64, cols: u64, esz: u64, hot: bool) -> Vec<StreamKernel> {
    let stats = StreamKernel {
        name: "softmax_stats".into(),
        bytes_read: (rows * cols * esz) as f64,
        bytes_written: (rows * 8) as f64,
        flops: 2.0 * (rows * cols) as f64,
        reads_hit_l2: hot,
    };
    let norm = StreamKernel {
        name: "softmax_norm".into(),
        bytes_read: (rows * cols * esz + rows * 8) as f64,
        bytes_written: (rows * cols * esz) as f64,
        flops: 2.0 * (rows * cols) as f64,
        reads_hit_l2: true, // stats pass just touched the scores
    };
    vec![stats, norm]
}

/// A single fused memory-op kernel (Ansor-style softmax: one launch that
/// still moves two read passes + one write of traffic).
pub fn fused_softmax_kernel(rows: u64, cols: u64, esz: u64, hot: bool) -> StreamKernel {
    StreamKernel {
        name: "fused_softmax".into(),
        bytes_read: 2.0 * (rows * cols * esz) as f64,
        bytes_written: (rows * cols * esz) as f64,
        flops: 4.0 * (rows * cols) as f64,
        reads_hit_l2: hot,
    }
}

/// An element-wise scaling kernel over a matrix.
pub fn scale_kernel(elems: u64, esz: u64, hot: bool) -> StreamKernel {
    let mut k = StreamKernel::elementwise("scale", elems, esz);
    k.reads_hit_l2 = hot;
    k
}

/// LayerNorm as a library kernel (two passes over the row data).
pub fn layernorm_kernel(rows: u64, cols: u64, esz: u64, hot: bool) -> StreamKernel {
    StreamKernel {
        name: "layer_norm".into(),
        bytes_read: 2.0 * (rows * cols * esz) as f64,
        bytes_written: (rows * cols * esz) as f64,
        flops: 6.0 * (rows * cols) as f64,
        reads_hit_l2: hot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_prefers_big_tiles_for_big_gemms() {
        let dev = DeviceSpec::a100();
        let t = pick_library_tile(1, 4096, 4096, 4096, &dev);
        assert!(t.0 >= 128 && t.1 >= 128, "{t:?}");
    }

    #[test]
    fn heuristic_shrinks_for_skinny_shapes() {
        let dev = DeviceSpec::a100();
        // M=512, N=256: 128×128 gives only 8 blocks on 108 SMs.
        let t = pick_library_tile(1, 512, 256, 64, &dev);
        assert!(t.0 * t.1 <= 128 * 64, "{t:?}");
    }

    #[test]
    fn matmul_program_validates_and_measures() {
        let dev = DeviceSpec::a100();
        let p = matmul_program(
            "mm",
            2,
            256,
            256,
            128,
            (64, 64, 32),
            DType::F16,
            Epilogue::None,
        );
        p.validate().unwrap();
        let t = matmul_time(
            "mm",
            2,
            256,
            256,
            128,
            (64, 64, 32),
            DType::F16,
            &dev,
            false,
            Epilogue::None,
        );
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn hot_input_is_faster() {
        let dev = DeviceSpec::a100();
        let cold = matmul_time(
            "mm",
            1,
            512,
            512,
            512,
            (128, 64, 32),
            DType::F16,
            &dev,
            false,
            Epilogue::None,
        );
        let hot = matmul_time(
            "mm",
            1,
            512,
            512,
            512,
            (128, 64, 32),
            DType::F16,
            &dev,
            true,
            Epilogue::None,
        );
        assert!(hot <= cold);
    }

    #[test]
    fn softmax_two_kernels_cost_more_than_fused_one() {
        let dev = DeviceSpec::a100();
        let two: f64 = softmax_kernels(4096, 512, 2, false)
            .iter()
            .map(|k| k.time(&dev))
            .sum();
        let one = fused_softmax_kernel(4096, 512, 2, false).time(&dev);
        assert!(two > one, "{two} !> {one}");
    }

    #[test]
    fn epilogue_fusion_adds_no_launch() {
        let dev = DeviceSpec::a100();
        let plain = matmul_time(
            "mm",
            1,
            512,
            512,
            128,
            (64, 64, 32),
            DType::F16,
            &dev,
            false,
            Epilogue::None,
        );
        let fused = matmul_time(
            "mm",
            1,
            512,
            512,
            128,
            (64, 64, 32),
            DType::F16,
            &dev,
            false,
            Epilogue::Relu,
        );
        // One kernel either way; the epilogue only adds trivial flops.
        assert!((fused - plain).abs() < 0.2 * plain);
    }
}
