//! Relay-style baseline: template per-op compilation with classic
//! epilogue fusion, no per-shape tuning.
//!
//! Relay's strength over eager PyTorch is graph-level fusion of
//! memory-intensive operators (GEMM + bias + ReLU in one kernel, a single
//! fused softmax); its weakness is fixed kernel templates "without
//! subsequent fine-tuning" (§VI-C). It also implements [`OpCostModel`] so
//! the end-to-end compiler can use it as the fallback for non-MBCI
//! operators — the `MCFuser+Relay` configuration of Fig. 9.

use parking_lot::Mutex;
use rustc_hash::FxHashSet;

use mcfuser_core::OpCostModel;
use mcfuser_ir::{ChainSpec, Epilogue, Graph, NodeId, Op};
use mcfuser_sim::{DeviceSpec, StreamKernel};

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};
use crate::libkernels::{fused_softmax_kernel, layernorm_kernel, matmul_time};

/// Relay's fixed GEMM template.
pub const RELAY_TILE: (u64, u64, u64) = (128, 64, 32);

/// The Relay baseline.
#[derive(Debug, Default)]
pub struct Relay {
    /// Distinct op signatures compiled so far (for tuning-time accounting).
    compiled: Mutex<FxHashSet<String>>,
}

impl Relay {
    /// Fresh backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for Relay {
    fn name(&self) -> &'static str {
        "Relay"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "No",
            automatic: "Yes",
            search_space: "Op templates + epilogue fusion",
            objective: "Pattern rules",
            tuning_time: "Short",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        let mut time = 0.0;
        let mut kernels = 0u32;
        let esz = chain.dtype.size_bytes();
        for op in 0..chain.num_ops() {
            let (m, k, n) = (chain.m, chain.dims[op], chain.dims[op + 1]);
            // Element-wise epilogues fuse into the GEMM template.
            let fused_epilogue = match chain.epilogues[op] {
                Epilogue::Relu => Epilogue::Relu,
                Epilogue::Gelu => Epilogue::Gelu,
                Epilogue::Scale(f) => Epilogue::Scale(f),
                _ => Epilogue::None,
            };
            time += matmul_time(
                &format!("{}::mm{}", chain.name, op),
                chain.batch,
                m,
                n,
                k,
                RELAY_TILE,
                chain.dtype,
                dev,
                op > 0,
                fused_epilogue,
            );
            kernels += 1;
            if chain.epilogues[op].is_rowwise() {
                // Scale (and mask add) folds into the fused softmax kernel.
                time += fused_softmax_kernel(chain.batch * m, n, esz, true).time(dev);
                kernels += 1;
            }
        }
        Ok(ChainRun {
            time,
            tuning_seconds: chain.num_ops() as f64 * 0.8,
            kernels,
            fused: false,
            note: format!("template {:?}", RELAY_TILE),
        })
    }
}

/// Is this node an element-wise op that Relay folds into its producer
/// compute op (single-consumer GEMM epilogue)?
fn folds_into_producer(graph: &Graph, node: NodeId) -> bool {
    let n = graph.node(node);
    let elementwise = matches!(n.op, Op::Relu | Op::Gelu | Op::Scale(_) | Op::Add);
    if !elementwise {
        return false;
    }
    let producer = n.inputs[0];
    let p = graph.node(producer);
    p.op.is_compute_intensive() && graph.consumers()[producer.0].len() == 1
}

impl OpCostModel for Relay {
    fn name(&self) -> &str {
        "Relay"
    }

    fn op_time(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64 {
        let n = graph.node(node);
        let esz = graph.dtype.size_bytes();
        match &n.op {
            Op::Input | Op::Weight | Op::Reshape => 0.0,
            Op::Linear | Op::BatchMatMul { .. } => {
                let x = graph.node(n.inputs[0]);
                let k = *x.shape.last().unwrap();
                let out_cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / out_cols;
                matmul_time(
                    &n.name,
                    1,
                    rows,
                    out_cols,
                    k,
                    RELAY_TILE,
                    graph.dtype,
                    dev,
                    true,
                    Epilogue::None,
                )
            }
            Op::Softmax { .. } => {
                let cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / cols;
                fused_softmax_kernel(rows, cols, esz, true).time(dev)
            }
            Op::LayerNorm => {
                let cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / cols;
                layernorm_kernel(rows, cols, esz, true).time(dev)
            }
            Op::Relu | Op::Gelu | Op::Scale(_) | Op::Add => {
                if folds_into_producer(graph, node) {
                    0.0
                } else {
                    let elems: u64 = n.shape.iter().product();
                    StreamKernel::elementwise(&n.name, elems, esz)
                        .with_l2_hot()
                        .time(dev)
                }
            }
            Op::SplitHeads { .. } | Op::MergeHeads | Op::RepeatKv { .. } => {
                // Real data-movement permute: one stream pass, no fold.
                let elems: u64 = n.shape.iter().product();
                StreamKernel::elementwise(&n.name, elems, esz).time(dev)
            }
        }
    }

    fn op_time_standalone(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64 {
        let n = graph.node(node);
        // With the producer fused away there is no GEMM epilogue to fold
        // into: the element-wise op streams through memory on its own.
        if matches!(n.op, Op::Relu | Op::Gelu | Op::Scale(_) | Op::Add) {
            let elems: u64 = n.shape.iter().product();
            return StreamKernel::elementwise(&n.name, elems, graph.dtype.size_bytes())
                .with_l2_hot()
                .time(dev);
        }
        self.op_time(graph, node, dev)
    }

    fn tuning_seconds(&self, graph: &Graph, nodes: &[NodeId], _dev: &DeviceSpec) -> f64 {
        // Relay builds each operator instance once (no measurement-based
        // tuning): per-node codegen plus fixed graph-pass overhead.
        let mut compiled = self.compiled.lock();
        let mut secs = 10.0;
        for &n in nodes {
            let node = graph.node(n);
            if matches!(node.op, Op::Input | Op::Weight | Op::Reshape) {
                continue;
            }
            compiled.insert(format!("{}::{}", graph.name, node.name));
            secs += 0.8;
        }
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_ir::GraphBuilder;
    use mcfuser_sim::DType;

    #[test]
    fn attention_uses_three_kernels() {
        let chain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        let run = Relay::new().run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert_eq!(run.kernels, 3); // bmm + fused softmax + bmm
    }

    #[test]
    fn relay_beats_pytorch_on_launch_count() {
        let chain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        let dev = DeviceSpec::a100();
        let relay = Relay::new().run_chain(&chain, &dev).unwrap();
        let pt = crate::pytorch::PyTorch.run_chain(&chain, &dev).unwrap();
        assert!(relay.kernels < pt.kernels);
    }

    #[test]
    fn elementwise_after_linear_is_free() {
        let mut gb = GraphBuilder::new("t", DType::F16);
        let x = gb.input("x", vec![256, 256]);
        let y = gb.linear("fc", x, 256, false);
        let r = gb.relu("act", y);
        let g = gb.finish(vec![r]);
        let relay = Relay::new();
        let dev = DeviceSpec::a100();
        assert_eq!(relay.op_time(&g, r, &dev), 0.0);
        assert!(relay.op_time(&g, y, &dev) > 0.0);
    }

    #[test]
    fn standalone_elementwise_costs_a_kernel() {
        let mut gb = GraphBuilder::new("t", DType::F16);
        let x = gb.input("x", vec![256, 256]);
        let r = gb.relu("act", x);
        let g = gb.finish(vec![r]);
        let relay = Relay::new();
        assert!(relay.op_time(&g, r, &DeviceSpec::a100()) > 0.0);
    }

    #[test]
    fn tuning_time_scales_with_nodes() {
        let mut gb = GraphBuilder::new("t", DType::F16);
        let x = gb.input("x", vec![256, 256]);
        let mut cur = x;
        let mut nodes = Vec::new();
        for i in 0..8 {
            cur = gb.linear(&format!("fc{i}"), cur, 256, false);
            nodes.push(cur);
        }
        let g = gb.finish(vec![cur]);
        let relay = Relay::new();
        let dev = DeviceSpec::a100();
        let few = relay.tuning_seconds(&g, &nodes[..2], &dev);
        let many = relay.tuning_seconds(&g, &nodes, &dev);
        assert!(many > few);
    }
}
