//! MCFuser-Chimera: the controlled Chimera comparison of §VI-A.
//!
//! "To ensure a rigorous assessment of our search space generation
//! effectiveness against the closed-source Chimera, we implement
//! MCFuser-Chimera. This adaptation integrates Chimera's search space
//! into our framework." Concretely, three deltas versus MCFuser:
//!
//! 1. **deep tilings only** — no flat (sequential-scope) expressions;
//! 2. **data-movement objective** — the analytical model drops the
//!    computation term and the parallelism factor (Chimera minimizes
//!    data movement, "neglecting the impact of redundant computation");
//! 3. **no dead-loop elimination** — statements hoist only to their
//!    rightmost related loop, missing the Fig. 5(b) opportunities.

use mcfuser_core::{heuristic_search, prune, SearchParams, SearchSpace};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::{DeviceSpec, TuningClock};
use mcfuser_tile::{enumerate_deep, tile_options};

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};

/// The MCFuser-Chimera baseline.
#[derive(Debug, Default, Clone)]
pub struct Chimera;

impl Backend for Chimera {
    fn name(&self) -> &'static str {
        "MCFuser-Chimera"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "Yes",
            automatic: "Yes",
            search_space: "Nested block execution order + loop opt.",
            objective: "Minimize data movement",
            tuning_time: "Short",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        // Deep-only search space.
        let space = SearchSpace {
            chain: chain.clone(),
            exprs: enumerate_deep(chain),
            tile_domains: (0..chain.num_axes())
                .map(|a| tile_options(chain.axis_extent(a)))
                .collect(),
        };
        let pruned = prune(chain, dev, &space);
        let clock = TuningClock::new();
        let outcome = heuristic_search(chain, dev, &pruned, &SearchParams::chimera(), &clock)
            .ok_or_else(|| Unsupported::new("no viable candidate"))?;
        Ok(ChainRun {
            time: outcome.best_time,
            tuning_seconds: clock.virtual_seconds(),
            kernels: 1,
            fused: true,
            note: outcome.best.describe(chain),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuses_gemm_chains() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let run = Chimera.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert!(run.fused);
        assert_eq!(run.kernels, 1);
        assert!(run.time.is_finite());
    }

    #[test]
    fn handles_attention() {
        let chain = ChainSpec::attention("s", 4, 256, 256, 64, 64);
        let run = Chimera.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert!(run.fused);
    }

    #[test]
    fn tuning_is_fast() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let run = Chimera.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert!(run.tuning_seconds < 300.0, "{}", run.tuning_seconds);
    }
}
