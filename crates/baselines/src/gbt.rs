//! Gradient-boosted regression trees — the XGBoost stand-in behind the
//! Ansor baseline's learned cost model.
//!
//! Squared-loss boosting over depth-limited regression trees with greedy
//! exact splits. Small and dependency-free, but a genuine learned model:
//! Ansor's tuning loop trains it on measured samples each round and pays
//! the training time on the virtual clock (Table IV's "ML Cost Model"
//! overhead).

use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbtParams {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage per tree.
    pub learning_rate: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Candidate thresholds examined per feature (quantile subsampling).
    pub max_thresholds: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_trees: 30,
            max_depth: 3,
            learning_rate: 0.3,
            min_samples_leaf: 4,
            max_thresholds: 16,
        }
    }
}

/// A node of a regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum TreeNode {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// One regression tree (nodes in a flat arena).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf(v) => return *v,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A fitted gradient-boosted model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbtModel {
    base: f64,
    trees: Vec<Tree>,
    lr: f64,
    /// Number of features expected.
    pub n_features: usize,
}

impl GbtModel {
    /// Fit on rows `x` with targets `y`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &GbtParams) -> GbtModel {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "need training data");
        let n_features = x[0].len();
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let residuals: Vec<f64> = y.iter().zip(&pred).map(|(yy, pp)| yy - pp).collect();
            let mut tree = Tree { nodes: Vec::new() };
            let idx: Vec<usize> = (0..x.len()).collect();
            build_node(&mut tree, x, &residuals, &idx, params.max_depth, params);
            for (i, row) in x.iter().enumerate() {
                pred[i] += params.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        GbtModel {
            base,
            trees,
            lr: params.learning_rate,
            n_features,
        }
    }

    /// Predict one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        self.base + self.lr * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Mean-squared error on a dataset.
    pub fn mse(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        let n = x.len().max(1) as f64;
        x.iter()
            .zip(y)
            .map(|(row, yy)| {
                let d = self.predict(row) - yy;
                d * d
            })
            .sum::<f64>()
            / n
    }
}

/// Recursively grow a node over sample indices; returns node index.
fn build_node(
    tree: &mut Tree,
    x: &[Vec<f64>],
    r: &[f64],
    idx: &[usize],
    depth: usize,
    params: &GbtParams,
) -> usize {
    let mean = idx.iter().map(|&i| r[i]).sum::<f64>() / idx.len().max(1) as f64;
    if depth == 0 || idx.len() < 2 * params.min_samples_leaf {
        tree.nodes.push(TreeNode::Leaf(mean));
        return tree.nodes.len() - 1;
    }
    // Greedy best split.
    let n_features = x[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let base_sse: f64 = idx.iter().map(|&i| (r[i] - mean) * (r[i] - mean)).sum();
    #[allow(clippy::needless_range_loop)]
    for f in 0..n_features {
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let step = (vals.len() / params.max_thresholds).max(1);
        for w in vals.windows(2).step_by(step) {
            let thr = 0.5 * (w[0] + w[1]);
            let (mut ls, mut lc, mut rs, mut rc) = (0.0f64, 0usize, 0.0f64, 0usize);
            for &i in idx {
                if x[i][f] <= thr {
                    ls += r[i];
                    lc += 1;
                } else {
                    rs += r[i];
                    rc += 1;
                }
            }
            if lc < params.min_samples_leaf || rc < params.min_samples_leaf {
                continue;
            }
            // SSE reduction via the identity Σ(r-μ)² = Σr² - n·μ².
            let sq: f64 = idx.iter().map(|&i| r[i] * r[i]).sum();
            let sse = sq - ls * ls / lc as f64 - rs * rs / rc as f64;
            if best.map(|(_, _, b)| sse < b).unwrap_or(sse < base_sse) {
                best = Some((f, thr, sse));
            }
        }
    }
    let Some((f, thr, _)) = best else {
        tree.nodes.push(TreeNode::Leaf(mean));
        return tree.nodes.len() - 1;
    };
    let (li, ri): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| x[i][f] <= thr);
    // Reserve the split slot, then build children.
    tree.nodes.push(TreeNode::Leaf(0.0));
    let me = tree.nodes.len() - 1;
    let l = build_node(tree, x, r, &li, depth - 1, params);
    let rn = build_node(tree, x, r, &ri, depth - 1, params);
    tree.nodes[me] = TreeNode::Split {
        feature: f,
        threshold: thr,
        left: l,
        right: rn,
    };
    me
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn synth(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        // Non-linear target with interactions.
        let y: Vec<f64> = x
            .iter()
            .map(|r| r[0] * 2.0 + if r[1] > 0.0 { 1.5 } else { -0.5 } + r[2] * r[3])
            .collect();
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = synth(400, 1);
        let model = GbtModel::fit(&x, &y, &GbtParams::default());
        let mse = model.mse(&x, &y);
        let var = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / y.len() as f64
        };
        assert!(mse < 0.3 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (xtr, ytr) = synth(500, 2);
        let (xte, yte) = synth(200, 3);
        let model = GbtModel::fit(&xtr, &ytr, &GbtParams::default());
        let mse = model.mse(&xte, &yte);
        let var = {
            let m = yte.iter().sum::<f64>() / yte.len() as f64;
            yte.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / yte.len() as f64
        };
        assert!(mse < 0.6 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn constant_target_learns_constant() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![3.5; 50];
        let model = GbtModel::fit(&x, &y, &GbtParams::default());
        assert!((model.predict(&[7.0]) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn more_trees_do_not_hurt_training_fit() {
        let (x, y) = synth(300, 4);
        let small = GbtModel::fit(
            &x,
            &y,
            &GbtParams {
                n_trees: 5,
                ..Default::default()
            },
        );
        let big = GbtModel::fit(
            &x,
            &y,
            &GbtParams {
                n_trees: 60,
                ..Default::default()
            },
        );
        assert!(big.mse(&x, &y) <= small.mse(&x, &y) + 1e-9);
    }

    #[test]
    fn single_sample_is_a_leaf() {
        let model = GbtModel::fit(&[vec![1.0]], &[2.0], &GbtParams::default());
        assert!((model.predict(&[1.0]) - 2.0).abs() < 1e-9);
    }
}
