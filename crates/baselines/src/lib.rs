//! # mcfuser-baselines — the comparator systems
//!
//! Every system MCFuser is evaluated against (Fig. 8, Fig. 9, Tables I &
//! IV), reproduced at the mechanism level on the shared GPU substrate:
//!
//! | Backend | Fusion | Tuning |
//! |---|---|---|
//! | [`PyTorch`] | none (eager, per-op library kernels) | none |
//! | [`Relay`] | epilogue fusion, fixed templates | none |
//! | [`Ansor`] | memory-op fusion only; compute ops tuned per shape with a GBT cost model | 1000 trials/sub-graph |
//! | [`Bolt`] | CUTLASS b2b-GEMM templates; no attention; no sm_86 | template instantiation |
//! | [`FlashAttention`] | handcrafted fused attention, fixed tiles, K = H | none |
//! | [`Chimera`] | deep tilings, data-movement objective, no dead-loop elim. | analytical |
//! | [`McFuserBackend`] | the full MCFuser pipeline | analytical + top-k |
//!
//! All implement [`Backend`]; `Relay` and `Ansor` also implement
//! [`mcfuser_core::OpCostModel`] so they can serve as the non-MBCI
//! fallback in end-to-end compilation.

#![warn(missing_docs)]

pub mod ansor;
pub mod backend;
pub mod bolt;
pub mod chimera;
pub mod flash_attention;
pub mod gbt;
pub mod libkernels;
pub mod mcfuser_backend;
pub mod pytorch;
pub mod relay;

pub use ansor::{tune_matmul_task, Ansor, TunedMatmul};
pub use backend::{Backend, Capabilities, ChainRun, Unsupported};
pub use bolt::Bolt;
pub use chimera::Chimera;
pub use flash_attention::FlashAttention;
pub use gbt::{GbtModel, GbtParams};
pub use libkernels::{matmul_program, matmul_time, pick_library_tile, LIBRARY_TILES};
pub use mcfuser_backend::McFuserBackend;
pub use pytorch::PyTorch;
pub use relay::Relay;
