//! PyTorch-style baseline: eager, unfused library execution.
//!
//! Every operator is its own kernel launch backed by a vendor-library
//! GEMM template (cuBLAS analogue); memory-intensive epilogues run as
//! separate element-wise/reduction kernels (eager mode does not fuse).
//! Intermediates round-trip through global memory, hitting L2 when they
//! fit. This is the normalization baseline of Fig. 8.

use mcfuser_ir::{ChainSpec, Epilogue};
use mcfuser_sim::DeviceSpec;

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};
use crate::libkernels::{matmul_time, pick_library_tile, scale_kernel, softmax_kernels};

/// Eager-mode framework dispatch cost per operator (Python dispatch,
/// autograd bookkeeping, stream sync) — paid on top of the raw kernel
/// launch. Compiled backends (Relay/Ansor/BOLT/MCFuser) do not pay this.
pub const EAGER_DISPATCH_OVERHEAD: f64 = 7.0e-6;

/// The PyTorch (cuBLAS/cuDNN) baseline.
#[derive(Debug, Default, Clone)]
pub struct PyTorch;

impl Backend for PyTorch {
    fn name(&self) -> &'static str {
        "PyTorch"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "No",
            automatic: "-",
            search_space: "Vendor kernel templates",
            objective: "Library heuristics",
            tuning_time: "-",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        let mut time = 0.0f64;
        let mut kernels = 0u32;
        let mut notes = Vec::new();
        let esz = chain.dtype.size_bytes();
        for op in 0..chain.num_ops() {
            let (m, k, n) = (chain.m, chain.dims[op], chain.dims[op + 1]);
            let tiles = pick_library_tile(chain.batch, m, n, k, dev);
            // The left operand of op > 0 was just produced.
            let hot = op > 0;
            time += matmul_time(
                &format!("{}::bmm{}", chain.name, op),
                chain.batch,
                m,
                n,
                k,
                tiles,
                chain.dtype,
                dev,
                hot,
                Epilogue::None,
            );
            kernels += 1;
            notes.push(format!("bmm{op}:{}x{}x{}", tiles.0, tiles.1, tiles.2));
            // Eager-mode epilogues: one kernel each.
            if chain.biases.get(op).copied().unwrap_or(false) {
                // Eager bias-add: one element-wise kernel.
                time += scale_kernel(chain.batch * m * n, esz, true).time(dev);
                kernels += 1;
            }
            match chain.epilogues[op] {
                Epilogue::None => {}
                Epilogue::Relu | Epilogue::Gelu | Epilogue::Scale(_) => {
                    let elems = chain.batch * m * n;
                    time += scale_kernel(elems, esz, true).time(dev);
                    kernels += 1;
                }
                Epilogue::Softmax { .. } | Epilogue::MaskedSoftmax { .. } => {
                    // scale (and mask-add) kernel + 2-pass softmax over
                    // the score matrix.
                    let rows = chain.batch * m;
                    time += scale_kernel(rows * n, esz, true).time(dev);
                    kernels += 1;
                    if chain.epilogues[op].needs_mask() {
                        time += scale_kernel(rows * n, esz, true).time(dev);
                        kernels += 1;
                    }
                    for kern in softmax_kernels(rows, n, esz, true) {
                        time += kern.time(dev);
                        kernels += 1;
                    }
                }
            }
        }
        time += kernels as f64 * EAGER_DISPATCH_OVERHEAD;
        Ok(ChainRun {
            time,
            tuning_seconds: 0.0,
            kernels,
            fused: false,
            note: notes.join(","),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_chain_launches_two_kernels() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let run = PyTorch.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert_eq!(run.kernels, 2);
        assert!(!run.fused);
        assert!(run.time > 2.0 * DeviceSpec::a100().launch_overhead);
    }

    #[test]
    fn attention_launches_five_kernels() {
        let chain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        let run = PyTorch.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        // bmm1 + scale + softmax(2) + bmm2.
        assert_eq!(run.kernels, 5);
    }

    #[test]
    fn no_tuning_cost() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let run = PyTorch.run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert_eq!(run.tuning_seconds, 0.0);
    }

    #[test]
    fn bigger_chains_take_longer() {
        let dev = DeviceSpec::a100();
        let small = PyTorch
            .run_chain(&ChainSpec::gemm_chain("a", 1, 512, 256, 64, 64), &dev)
            .unwrap();
        let big = PyTorch
            .run_chain(&ChainSpec::gemm_chain("b", 8, 1024, 1024, 128, 128), &dev)
            .unwrap();
        assert!(big.time > small.time);
    }
}
