//! FlashAttention-style baseline: a handcrafted fused attention kernel.
//!
//! The design constraints the paper criticizes (§II-B, §VI-B2):
//!
//! * only self-attention modules (softmax chains) are supported;
//! * the head dimensions must match (`K == H`);
//! * only the `M` and `N` dimensions are tiled — `K` and `H` are kept
//!   whole per block ("FlashAttention only considers splitting the M and
//!   N dimensions into tiles, neglecting K and H");
//! * tile sizes are fixed by the hand-written kernel (128×64, shrinking
//!   only when shared memory forces it), not tuned per shape.
//!
//! The kernel itself is expressed as the same `mhnk`-class schedule
//! MCFuser can also reach — the difference is *who chooses the tiles*.

use mcfuser_ir::ChainSpec;
use mcfuser_sim::{measure_noisy, DeviceSpec};
use mcfuser_tile::{lower, Candidate, LoweringOptions, TilingExpr};

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};

/// The FlashAttention baseline (v1 defaults).
#[derive(Debug, Default, Clone)]
pub struct FlashAttention;

/// Fixed (tile_m, tile_n) pairs in preference order.
const FIXED_TILES: [(u64, u64); 3] = [(128, 64), (64, 64), (32, 32)];

impl Backend for FlashAttention {
    fn name(&self) -> &'static str {
        "FlashAttention"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "Partial",
            automatic: "No",
            search_space: "Handcrafted fusion",
            objective: "-",
            tuning_time: "-",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        if !chain.has_softmax() || chain.num_ops() != 2 {
            return Err(Unsupported::new(
                "FlashAttention only fuses attention modules",
            ));
        }
        let (k, n, h) = (chain.dims[0], chain.dims[1], chain.dims[2]);
        if k != h {
            return Err(Unsupported::new(format!(
                "rigid constraint K = H violated ({k} ≠ {h})"
            )));
        }
        if k > 128 {
            return Err(Unsupported::new("head dimension above 128 unsupported"));
        }
        let expr = TilingExpr::parse("mhnk", chain)
            .ok_or_else(|| Unsupported::new("internal: expression parse"))?;
        for (tm, tn) in FIXED_TILES {
            let cand = Candidate::new(expr.clone(), vec![tm.min(chain.m), k, tn.min(n), h]);
            let Ok(lk) = lower(chain, &cand, &LoweringOptions::for_device(dev)) else {
                continue;
            };
            if lk.smem_bytes > dev.smem_per_block {
                continue;
            }
            let prof = measure_noisy(&lk.program, dev, 0xF1A5);
            return Ok(ChainRun {
                time: prof.time,
                tuning_seconds: 0.0, // shipped pre-built
                kernels: 1,
                fused: true,
                note: format!("fixed tiles {}", cand.describe(chain)),
            });
        }
        Err(Unsupported::new(
            "no fixed tile configuration fits shared memory",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuses_standard_attention() {
        let chain = ChainSpec::attention("s2", 12, 512, 512, 64, 64);
        let run = FlashAttention
            .run_chain(&chain, &DeviceSpec::a100())
            .unwrap();
        assert!(run.fused);
        assert_eq!(run.kernels, 1);
        assert_eq!(run.tuning_seconds, 0.0);
    }

    #[test]
    fn rejects_gemm_chains() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        assert!(FlashAttention
            .run_chain(&chain, &DeviceSpec::a100())
            .is_err());
    }

    #[test]
    fn rejects_mismatched_head_dims() {
        let mut chain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        chain.dims = vec![64, 512, 96]; // K ≠ H
        let err = FlashAttention
            .run_chain(&chain, &DeviceSpec::a100())
            .unwrap_err();
        assert!(err.reason.contains("K = H"));
    }

    #[test]
    fn works_on_vit_huge_80() {
        let chain = ChainSpec::attention("s6", 16, 256, 256, 80, 80);
        let run = FlashAttention
            .run_chain(&chain, &DeviceSpec::a100())
            .unwrap();
        assert!(run.fused);
    }
}
