//! BOLT-style baseline: CUTLASS-template fusion.
//!
//! BOLT bridges auto-tuners and hardware-native templates (§II-B):
//!
//! * dual-GEMM chains fuse through back-to-back GEMM templates, which
//!   require the first GEMM's full `N` extent resident per thread block
//!   (the CUTLASS b2b-GEMM constraint) and tiles drawn from a fixed
//!   template table;
//! * self-attention does **not** match its pattern table (the paper:
//!   "BOLT lacks the ability to fuse self-attention modules") — it falls
//!   back to unfused template GEMMs + streaming softmax;
//! * `sm_86` devices are unsupported outright ("BOLT does not support
//!   GPUs with sm86 compute capability, including RTX 3080");
//! * tuning = instantiating and measuring each feasible template
//!   (heavy C++ compiles on the virtual clock — Table IV's 88 s).

use parking_lot::Mutex;
use rustc_hash::FxHashSet;

use mcfuser_core::OpCostModel;
use mcfuser_ir::{ChainSpec, Epilogue, Graph, NodeId, Op};
use mcfuser_sim::{measure_noisy, Arch, CostProfile, DeviceSpec, StreamKernel};
use mcfuser_tile::{lower, Candidate, LoweringOptions, TilingExpr};

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};
use crate::libkernels::{layernorm_kernel, matmul_time, pick_library_tile, softmax_kernels};

/// The b2b-GEMM template table: (tile_m, tile_k, tile_h) — `n` is fixed
/// to the full extent by the template design.
pub const B2B_TEMPLATES: [(u64, u64, u64); 8] = [
    (64, 32, 64),
    (128, 32, 64),
    (64, 64, 64),
    (64, 64, 128),
    (128, 64, 128),
    (128, 32, 128),
    (256, 32, 64),
    (64, 32, 128),
];

/// The BOLT baseline.
#[derive(Debug, Default)]
pub struct Bolt {
    /// Distinct GEMM shapes whose templates were instantiated (for
    /// end-to-end tuning-time accounting).
    instantiated: Mutex<FxHashSet<String>>,
}

impl Bolt {
    /// Fresh backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Bolt {
    /// Try to instantiate one b2b template as a fused kernel.
    fn instantiate(
        chain: &ChainSpec,
        dev: &DeviceSpec,
        tpl: (u64, u64, u64),
    ) -> Option<(f64, String)> {
        let n = chain.dims[1];
        let expr = TilingExpr::parse("mhnk", chain)?;
        let cand = Candidate::new(
            expr,
            vec![tpl.0, tpl.1, n, tpl.2], // m, k, n (full), h
        );
        let lk = lower(chain, &cand, &LoweringOptions::for_device(dev)).ok()?;
        if lk.smem_bytes > dev.smem_per_block {
            return None;
        }
        let prof = measure_noisy(&lk.program, dev, 0xB017);
        Some((prof.time, cand.describe(chain)))
    }
}

impl Backend for Bolt {
    fn name(&self) -> &'static str {
        "BOLT"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "Partial",
            automatic: "Yes",
            search_space: "Template-based fusion",
            objective: "Measured performance",
            tuning_time: "Mid",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        if dev.arch == Arch::Sm86 {
            return Err(Unsupported::new("BOLT does not support sm_86 devices"));
        }
        let cost = CostProfile::cutlass();
        let mut tuning = 0.0;

        // Pattern table: plain dual-GEMM chains (optionally with an
        // element-wise epilogue) fuse; softmax chains do not.
        let fusible = chain.num_ops() == 2 && !chain.has_softmax();
        if fusible {
            let mut best: Option<(f64, String)> = None;
            for tpl in B2B_TEMPLATES {
                tuning += cost.compile_seconds + cost.measure_overhead_seconds;
                if let Some((t, note)) = Self::instantiate(chain, dev, tpl) {
                    tuning += cost.measure_repeats as f64 * t;
                    if best.as_ref().map(|(bt, _)| t < *bt).unwrap_or(true) {
                        best = Some((t, note));
                    }
                }
            }
            if let Some((time, note)) = best {
                return Ok(ChainRun {
                    time,
                    tuning_seconds: tuning,
                    kernels: 1,
                    fused: true,
                    note: format!("b2b template {note}"),
                });
            }
            // No template fits (e.g. huge N): fall through to unfused.
        }

        // Unfused fallback: per-op CUTLASS GEMMs + streaming softmax.
        let esz = chain.dtype.size_bytes();
        let mut time = 0.0;
        let mut kernels = 0u32;
        for op in 0..chain.num_ops() {
            let (m, k, n) = (chain.m, chain.dims[op], chain.dims[op + 1]);
            let tiles = pick_library_tile(chain.batch, m, n, k, dev);
            tuning += cost.compile_seconds;
            let ep = match chain.epilogues[op] {
                Epilogue::Relu => Epilogue::Relu,
                Epilogue::Gelu => Epilogue::Gelu,
                Epilogue::Scale(f) => Epilogue::Scale(f),
                _ => Epilogue::None,
            };
            time += matmul_time(
                &format!("{}::cutlass{}", chain.name, op),
                chain.batch,
                m,
                n,
                k,
                tiles,
                chain.dtype,
                dev,
                op > 0,
                ep,
            );
            kernels += 1;
            if chain.epilogues[op].is_rowwise() {
                for kern in softmax_kernels(chain.batch * m, n, esz, true) {
                    time += kern.time(dev);
                    kernels += 1;
                }
            }
        }
        Ok(ChainRun {
            time,
            tuning_seconds: tuning,
            kernels,
            fused: false,
            note: "unfused cutlass fallback".into(),
        })
    }
}

/// Element-wise ops BOLT folds as GEMM epilogues (its pattern table:
/// GEMM + bias + ReLU — §VI-C).
fn bolt_folds(graph: &Graph, node: NodeId) -> bool {
    let n = graph.node(node);
    if !matches!(n.op, Op::Relu | Op::Add | Op::Scale(_)) {
        return false;
    }
    let producer = n.inputs[0];
    graph.node(producer).op.is_compute_intensive() && graph.consumers()[producer.0].len() == 1
}

impl OpCostModel for Bolt {
    fn name(&self) -> &str {
        "BOLT"
    }

    fn op_time(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64 {
        let n = graph.node(node);
        let esz = graph.dtype.size_bytes();
        match &n.op {
            Op::Input | Op::Weight | Op::Reshape => 0.0,
            Op::Linear | Op::BatchMatMul { .. } => {
                let x = graph.node(n.inputs[0]);
                let k = *x.shape.last().unwrap();
                let out_cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / out_cols;
                let tiles = pick_library_tile(1, rows, out_cols, k, dev);
                matmul_time(
                    &n.name,
                    1,
                    rows,
                    out_cols,
                    k,
                    tiles,
                    graph.dtype,
                    dev,
                    true,
                    Epilogue::None,
                )
            }
            Op::Softmax { .. } => {
                // Not in BOLT's pattern table: plain two-pass kernels.
                let cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / cols;
                softmax_kernels(rows, cols, esz, true)
                    .iter()
                    .map(|k| k.time(dev))
                    .sum()
            }
            Op::LayerNorm => {
                let cols = *n.shape.last().unwrap();
                let rows: u64 = n.shape.iter().product::<u64>() / cols;
                layernorm_kernel(rows, cols, esz, true).time(dev)
            }
            Op::Relu | Op::Gelu | Op::Scale(_) | Op::Add => {
                if bolt_folds(graph, node) {
                    0.0
                } else {
                    let elems: u64 = n.shape.iter().product();
                    StreamKernel::elementwise(&n.name, elems, esz)
                        .with_l2_hot()
                        .time(dev)
                }
            }
            Op::SplitHeads { .. } | Op::MergeHeads | Op::RepeatKv { .. } => {
                // Real data-movement permute: one stream pass, no fold.
                let elems: u64 = n.shape.iter().product();
                StreamKernel::elementwise(&n.name, elems, esz).time(dev)
            }
        }
    }

    fn op_time_standalone(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64 {
        let n = graph.node(node);
        // BOLT's pattern table folds these into a GEMM epilogue; with the
        // producer fused away the fold is impossible.
        if matches!(n.op, Op::Relu | Op::Add | Op::Scale(_)) {
            let elems: u64 = n.shape.iter().product();
            return StreamKernel::elementwise(&n.name, elems, graph.dtype.size_bytes())
                .with_l2_hot()
                .time(dev);
        }
        self.op_time(graph, node, dev)
    }

    fn tuning_seconds(&self, graph: &Graph, nodes: &[NodeId], dev: &DeviceSpec) -> f64 {
        // Template instantiation per distinct GEMM shape (heavy C++
        // compiles), plus Relay-level graph handling.
        let cost = CostProfile::cutlass();
        let mut total = 15.0;
        let mut inst = self.instantiated.lock();
        for &id in nodes {
            let n = graph.node(id);
            match &n.op {
                Op::Linear | Op::BatchMatMul { .. } => {
                    let x = graph.node(n.inputs[0]);
                    let k = *x.shape.last().unwrap();
                    let out_cols = *n.shape.last().unwrap();
                    let rows: u64 = n.shape.iter().product::<u64>() / out_cols;
                    let key = format!("{rows}x{out_cols}x{k}:{}", dev.name);
                    if inst.insert(key) {
                        total += 2.0 * cost.compile_seconds + 2.0 * cost.measure_overhead_seconds;
                    }
                    total += 0.6; // per-instance integration cost
                }
                Op::Input | Op::Weight | Op::Reshape => {}
                _ => total += 0.5,
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_rtx3080() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let err = Bolt::new()
            .run_chain(&chain, &DeviceSpec::rtx3080())
            .unwrap_err();
        assert!(err.reason.contains("sm_86"));
    }

    #[test]
    fn fuses_dual_gemm_on_a100() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let run = Bolt::new().run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert!(run.fused);
        assert_eq!(run.kernels, 1);
        assert!(run.tuning_seconds > 5.0, "{}", run.tuning_seconds);
    }

    #[test]
    fn attention_falls_back_unfused() {
        let chain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        let run = Bolt::new().run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert!(!run.fused);
        assert!(run.kernels >= 4);
    }

    #[test]
    fn large_n_breaks_templates() {
        // N = 4096 per-block panel cannot fit shared memory → unfused.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 4096, 64, 64);
        let run = Bolt::new().run_chain(&chain, &DeviceSpec::a100()).unwrap();
        assert!(!run.fused, "{}", run.note);
    }
}
