//! The common backend interface every comparator implements.
//!
//! The evaluation harness (Fig. 8, Table IV) treats PyTorch, Relay,
//! Ansor, BOLT, FlashAttention, MCFuser-Chimera and MCFuser uniformly
//! through this trait; [`Capabilities`] carries the qualitative rows of
//! the paper's Table I.

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;

/// Why a backend cannot handle a workload (the paper's "-" entries:
/// BOLT on sm_86, FlashAttention on K ≠ H, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unsupported {
    /// Human-readable reason.
    pub reason: String,
}

impl Unsupported {
    /// Construct from any message.
    pub fn new(reason: impl Into<String>) -> Self {
        Unsupported {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported: {}", self.reason)
    }
}

impl std::error::Error for Unsupported {}

/// Result of running one MBCI sub-graph through a backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainRun {
    /// End-to-end execution time of the sub-graph (seconds), including
    /// every kernel launch the backend needs.
    pub time: f64,
    /// Virtual tuning time spent preparing the sub-graph (Table IV).
    pub tuning_seconds: f64,
    /// Number of kernel launches.
    pub kernels: u32,
    /// Whether the compute chain was fused into a single kernel.
    pub fused: bool,
    /// Free-form provenance (chosen tiles, template id, …).
    pub note: String,
}

/// Qualitative capability matrix — the rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Support for fusing MBCI operator chains: "No" / "Partial" / "Yes".
    pub supports_mbci: &'static str,
    /// Automatic (no hand-written kernels): "Yes" / "No" / "-".
    pub automatic: &'static str,
    /// Search-space description.
    pub search_space: &'static str,
    /// Optimization objective / guidance.
    pub objective: &'static str,
    /// Qualitative tuning time: "Short" / "Mid" / "Long" / "-".
    pub tuning_time: &'static str,
}

/// A tensor-program backend.
pub trait Backend: Sync {
    /// Display name (matches the paper's figures).
    fn name(&self) -> &'static str;

    /// Table I row.
    fn capabilities(&self) -> Capabilities;

    /// Compile + run one MBCI chain on a device.
    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_formats() {
        let u = Unsupported::new("sm_86 not supported");
        assert_eq!(u.to_string(), "unsupported: sm_86 not supported");
    }
}
