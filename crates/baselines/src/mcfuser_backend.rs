//! MCFuser itself behind the uniform [`Backend`] interface, so the
//! evaluation harness treats it like every comparator.
//!
//! Internally this is a [`FusionEngine`] session per target device:
//! repeated `run_chain` calls on the same device share one engine and
//! therefore one tuning cache, exactly how the engine would sit behind a
//! serving endpoint.

use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::sync::Arc;

use mcfuser_core::{FusionEngine, SearchParams};
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};

/// MCFuser as a benchmarkable backend.
#[derive(Debug, Default)]
pub struct McFuserBackend {
    /// Algorithm 1 parameters for every session this backend opens.
    pub params: SearchParams,
    /// One engine session per device fingerprint.
    engines: Mutex<FxHashMap<String, Arc<FusionEngine>>>,
}

impl Clone for McFuserBackend {
    /// Cloning yields a backend with the same configuration and fresh
    /// (empty) engine sessions.
    fn clone(&self) -> Self {
        McFuserBackend {
            params: self.params.clone(),
            engines: Mutex::new(FxHashMap::default()),
        }
    }
}

impl McFuserBackend {
    /// Default-parameter backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Backend with explicit search parameters.
    pub fn with_params(params: SearchParams) -> Self {
        McFuserBackend {
            params,
            engines: Mutex::new(FxHashMap::default()),
        }
    }

    /// The engine session for a device (created on first use). Keyed by
    /// the full device fingerprint: two specs differing in any field get
    /// separate sessions.
    pub fn engine_for(&self, dev: &DeviceSpec) -> Arc<FusionEngine> {
        let key = mcfuser_core::cache::device_fingerprint(dev);
        let mut g = self.engines.lock();
        g.entry(key)
            .or_insert_with(|| {
                Arc::new(
                    FusionEngine::builder(dev.clone())
                        .search_params(self.params.clone())
                        .build(),
                )
            })
            .clone()
    }
}

impl Backend for McFuserBackend {
    fn name(&self) -> &'static str {
        "MCFuser"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "Yes",
            automatic: "Yes",
            search_space: "Exhaustive tiling-based + rid of redundancy",
            objective: "Analytical performance model",
            tuning_time: "Short",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        let engine = self.engine_for(dev);
        let tuned = engine
            .tune(chain)
            .map_err(|e| Unsupported::new(e.to_string()))?;
        Ok(ChainRun {
            time: tuned.profile.time,
            tuning_seconds: tuned.tuning.virtual_seconds,
            kernels: 1,
            fused: true,
            note: tuned.candidate.describe(chain),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chimera::Chimera;
    use crate::pytorch::PyTorch;

    #[test]
    fn mcfuser_beats_pytorch_on_mbci_chain() {
        let chain = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let pt = PyTorch.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time < pt.time,
            "mcfuser {} vs pytorch {}",
            ours.time,
            pt.time
        );
    }

    #[test]
    fn mcfuser_at_least_matches_chimera() {
        let chain = ChainSpec::gemm_chain("g3", 1, 512, 256, 64, 256);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let chi = Chimera.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time <= chi.time * 1.05,
            "mcfuser {} vs chimera {}",
            ours.time,
            chi.time
        );
    }

    #[test]
    fn attention_beats_pytorch_clearly() {
        let chain = ChainSpec::attention("s1", 8, 512, 512, 64, 64);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let pt = PyTorch.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time < 0.7 * pt.time,
            "mcfuser {} vs pytorch {}",
            ours.time,
            pt.time
        );
    }

    #[test]
    fn repeated_runs_share_the_session_cache() {
        let chain = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let backend = McFuserBackend::new();
        let a = backend.run_chain(&chain, &dev).unwrap();
        let b = backend.run_chain(&chain, &dev).unwrap();
        assert_eq!(a.time, b.time);
        let engine = backend.engine_for(&dev);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.stats().cache_misses, 1);
    }
}
