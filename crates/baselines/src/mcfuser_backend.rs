//! MCFuser itself behind the uniform [`Backend`] interface, so the
//! evaluation harness treats it like every comparator.

use mcfuser_core::McFuser;
use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};

/// MCFuser as a benchmarkable backend.
#[derive(Debug, Default, Clone)]
pub struct McFuserBackend {
    /// The underlying tuner.
    pub tuner: McFuser,
}

impl McFuserBackend {
    /// Default-parameter tuner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for McFuserBackend {
    fn name(&self) -> &'static str {
        "MCFuser"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "Yes",
            automatic: "Yes",
            search_space: "Exhaustive tiling-based + rid of redundancy",
            objective: "Analytical performance model",
            tuning_time: "Short",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        let tuned = self
            .tuner
            .tune(chain, dev)
            .map_err(|e| Unsupported::new(e.to_string()))?;
        Ok(ChainRun {
            time: tuned.profile.time,
            tuning_seconds: tuned.tuning.virtual_seconds,
            kernels: 1,
            fused: true,
            note: tuned.candidate.describe(chain),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chimera::Chimera;
    use crate::pytorch::PyTorch;

    #[test]
    fn mcfuser_beats_pytorch_on_mbci_chain() {
        let chain = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let pt = PyTorch.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time < pt.time,
            "mcfuser {} vs pytorch {}",
            ours.time,
            pt.time
        );
    }

    #[test]
    fn mcfuser_at_least_matches_chimera() {
        let chain = ChainSpec::gemm_chain("g3", 1, 512, 256, 64, 256);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let chi = Chimera.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time <= chi.time * 1.05,
            "mcfuser {} vs chimera {}",
            ours.time,
            chi.time
        );
    }

    #[test]
    fn attention_beats_pytorch_clearly() {
        let chain = ChainSpec::attention("s1", 8, 512, 512, 64, 64);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let pt = PyTorch.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time < 0.7 * pt.time,
            "mcfuser {} vs pytorch {}",
            ours.time,
            pt.time
        );
    }
}
