//! MCFuser itself behind the uniform [`Backend`] interface, so the
//! evaluation harness treats it like every comparator.
//!
//! Internally this is a [`FusionEngine`] session per target device plus
//! one shared [`ModelRuntime`]: repeated `run_chain` calls on the same
//! device share one engine and therefore one tuning cache, and
//! end-to-end graphs compiled with [`McFuserBackend::serve_graph`] are
//! registered as [`ExecutablePlan`]s and served concurrently through
//! [`McFuserBackend::infer`] — exactly how the engine sits behind a
//! serving endpoint.

use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::sync::Arc;

use mcfuser_core::{
    ExecError, ExecutablePlan, FusionEngine, InputSet, ModelRuntime, Outputs, RunOptions,
    SearchParams,
};
use mcfuser_ir::{ChainSpec, Graph};
use mcfuser_sim::DeviceSpec;

use crate::backend::{Backend, Capabilities, ChainRun, Unsupported};
use crate::relay::Relay;

/// MCFuser as a benchmarkable backend.
#[derive(Debug, Default)]
pub struct McFuserBackend {
    /// Algorithm 1 parameters for every session this backend opens.
    pub params: SearchParams,
    /// One engine session per device fingerprint.
    engines: Mutex<FxHashMap<String, Arc<FusionEngine>>>,
    /// The serving registry shared by every graph this backend compiles.
    runtime: Arc<ModelRuntime>,
}

impl Clone for McFuserBackend {
    /// Cloning yields a backend with the same configuration and fresh
    /// (empty) engine sessions and runtime.
    fn clone(&self) -> Self {
        McFuserBackend {
            params: self.params.clone(),
            engines: Mutex::new(FxHashMap::default()),
            runtime: Arc::new(ModelRuntime::new()),
        }
    }
}

impl McFuserBackend {
    /// Default-parameter backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Backend with explicit search parameters.
    pub fn with_params(params: SearchParams) -> Self {
        McFuserBackend {
            params,
            ..Self::default()
        }
    }

    /// The serving runtime shared by every graph this backend compiles:
    /// hand it to request threads and call
    /// [`ModelRuntime::infer`] (or [`McFuserBackend::infer`]) with the
    /// graph's name.
    pub fn runtime(&self) -> Arc<ModelRuntime> {
        self.runtime.clone()
    }

    /// Compile a graph end to end on `dev` (MBCI partitioning + chain
    /// tuning through the per-device engine session, Relay pricing the
    /// remainder), freeze it into an [`ExecutablePlan`], and register it
    /// in the shared runtime under the graph's name.
    pub fn serve_graph(
        &self,
        graph: &Graph,
        dev: &DeviceSpec,
    ) -> Result<Arc<ExecutablePlan>, Unsupported> {
        let engine = self.engine_for(dev);
        let model = engine
            .compile_with_fallback(graph, &Relay::new())
            .map_err(|e| Unsupported::new(e.to_string()))?;
        let plan = model
            .plan(graph)
            .map_err(|e| Unsupported::new(e.to_string()))?;
        Ok(self.runtime.register(graph.name.clone(), plan))
    }

    /// Serve one request against a graph previously registered with
    /// [`McFuserBackend::serve_graph`].
    pub fn infer(
        &self,
        model: &str,
        inputs: &InputSet,
        opts: RunOptions,
    ) -> Result<Outputs, ExecError> {
        self.runtime.infer(model, inputs, opts)
    }

    /// The engine session for a device (created on first use). Keyed by
    /// the full device fingerprint: two specs differing in any field get
    /// separate sessions.
    pub fn engine_for(&self, dev: &DeviceSpec) -> Arc<FusionEngine> {
        let key = mcfuser_core::cache::device_fingerprint(dev);
        let mut g = self.engines.lock();
        g.entry(key)
            .or_insert_with(|| {
                let engine = Arc::new(
                    FusionEngine::builder(dev.clone())
                        .search_params(self.params.clone())
                        .build(),
                );
                // The shared runtime flushes this engine's tuning cache
                // at shutdown (persistence failures become a Result).
                if let Some(cache) = engine.cache_handle() {
                    self.runtime.attach_cache(cache);
                }
                engine
            })
            .clone()
    }
}

impl Backend for McFuserBackend {
    fn name(&self) -> &'static str {
        "MCFuser"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_mbci: "Yes",
            automatic: "Yes",
            search_space: "Exhaustive tiling-based + rid of redundancy",
            objective: "Analytical performance model",
            tuning_time: "Short",
        }
    }

    fn run_chain(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<ChainRun, Unsupported> {
        let engine = self.engine_for(dev);
        let tuned = engine
            .tune(chain)
            .map_err(|e| Unsupported::new(e.to_string()))?;
        Ok(ChainRun {
            time: tuned.profile.time,
            tuning_seconds: tuned.tuning.virtual_seconds,
            kernels: 1,
            fused: true,
            note: tuned.candidate.describe(chain),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chimera::Chimera;
    use crate::pytorch::PyTorch;

    #[test]
    fn mcfuser_beats_pytorch_on_mbci_chain() {
        let chain = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let pt = PyTorch.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time < pt.time,
            "mcfuser {} vs pytorch {}",
            ours.time,
            pt.time
        );
    }

    #[test]
    fn mcfuser_at_least_matches_chimera() {
        let chain = ChainSpec::gemm_chain("g3", 1, 512, 256, 64, 256);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let chi = Chimera.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time <= chi.time * 1.05,
            "mcfuser {} vs chimera {}",
            ours.time,
            chi.time
        );
    }

    #[test]
    fn attention_beats_pytorch_clearly() {
        let chain = ChainSpec::attention("s1", 8, 512, 512, 64, 64);
        let dev = DeviceSpec::a100();
        let ours = McFuserBackend::new().run_chain(&chain, &dev).unwrap();
        let pt = PyTorch.run_chain(&chain, &dev).unwrap();
        assert!(
            ours.time < 0.7 * pt.time,
            "mcfuser {} vs pytorch {}",
            ours.time,
            pt.time
        );
    }

    #[test]
    fn serve_graph_registers_a_plan_and_serves_requests() {
        use mcfuser_ir::GraphBuilder;
        use mcfuser_sim::{DType, HostTensor};

        let mut gb = GraphBuilder::new("serve-mlp", DType::F16);
        let x = gb.input("x", vec![64, 32]);
        let y = gb.linear("fc1", x, 64, false);
        let z = gb.linear("fc2", y, 32, false);
        let g = gb.finish(vec![z]);

        let backend = McFuserBackend::new();
        let dev = DeviceSpec::a100();
        let plan = backend.serve_graph(&g, &dev).unwrap();
        assert_eq!(plan.name(), "serve-mlp");
        assert_eq!(backend.runtime().models(), vec!["serve-mlp".to_string()]);

        let inputs = InputSet::new().with("x", HostTensor::zeros(&[64, 32]));
        let a = backend
            .infer("serve-mlp", &inputs, RunOptions::seeded(3))
            .unwrap();
        let b = backend
            .infer("serve-mlp", &inputs, RunOptions::seeded(3))
            .unwrap();
        assert_eq!(a.primary().data, b.primary().data, "deterministic per seed");
        let stats = backend.runtime().stats();
        assert_eq!(stats.requests, 2);
        // Shutdown flushes the engine's (in-memory) cache cleanly.
        assert!(backend.runtime().shutdown().is_ok());
    }

    #[test]
    fn repeated_runs_share_the_session_cache() {
        let chain = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let backend = McFuserBackend::new();
        let a = backend.run_chain(&chain, &dev).unwrap();
        let b = backend.run_chain(&chain, &dev).unwrap();
        assert_eq!(a.time, b.time);
        let engine = backend.engine_for(&dev);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.stats().cache_misses, 1);
    }
}
