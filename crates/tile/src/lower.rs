//! Lowering: schedule candidate → executable [`TileProgram`].
//!
//! This is the reproduction's stand-in for the paper's TIR → TritonIR →
//! PTX pipeline (§V-A). MCFuser is an *inter-tile* optimizer; intra-tile
//! policies (double buffering, bank-conflict padding, accumulator
//! precision) are applied here deterministically, playing the role of
//! Triton's automatic intra-tile optimizations. The difference between
//! Eq. 1's coarse estimate and what this module actually allocates is the
//! scatter of the paper's Fig. 10.
//!
//! Lowering enforces the legality conditions the search space is pruned
//! by:
//!
//! * consumers may not sit inside their producer's reduction loop
//!   (partial-tile consumption — the Fig. 6(b) shapes Rule 2 removes);
//! * accumulators must need exactly one shared-memory tile instance;
//! * a softmax epilogue requires completed score tiles and a streaming
//!   (online) update for the downstream accumulator.

use mcfuser_ir::{AuxInput, ChainSpec, Epilogue};
use mcfuser_sim::{
    BlockStmt, BufferRole, DType, LoopHandle, ProgramBuilder, SmemId, TileAccess, TileIndex,
    TileProgram, VarRef,
};

use crate::candidate::Candidate;
use crate::dag::{accumulator_instances, place, PlacementError, ScheduleItem, Scope};
use crate::loops::LoopId;
use crate::stmt::{compute_reduction_axis, tensor_axes, Stmt, TensorRef};

/// Why a candidate cannot be lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum LoweringError {
    /// Statement placement failed.
    Placement(PlacementError),
    /// Compute block `op` would consume a partially accumulated producer
    /// tile (it is nested inside the producer's reduction loop).
    PartialConsumption {
        /// The consuming compute block.
        op: usize,
    },
    /// An accumulator needs more than one shared-memory tile instance
    /// (the configuration Rule 2 prunes).
    MultiTileAccumulator {
        /// The producing compute block.
        op: usize,
        /// Required tile instances.
        instances: u64,
    },
    /// Softmax epilogue in an unsupported position (only the final
    /// producer→consumer hop supports streaming softmax).
    SoftmaxUnsupported(String),
}

impl std::fmt::Display for LoweringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoweringError::Placement(e) => write!(f, "placement: {e}"),
            LoweringError::PartialConsumption { op } => {
                write!(f, "compute block {op} consumes a partial accumulator tile")
            }
            LoweringError::MultiTileAccumulator { op, instances } => {
                write!(
                    f,
                    "accumulator of block {op} needs {instances} tile instances"
                )
            }
            LoweringError::SoftmaxUnsupported(m) => write!(f, "softmax: {m}"),
        }
    }
}

impl std::error::Error for LoweringError {}

impl From<PlacementError> for LoweringError {
    fn from(e: PlacementError) -> Self {
        LoweringError::Placement(e)
    }
}

/// Intra-tile policy knobs (the "Triton" side of the split).
#[derive(Debug, Clone)]
pub struct LoweringOptions {
    /// Shared-memory budget for enabling double buffering on load tiles.
    /// When doubling every load tile still fits this budget, loads are
    /// double buffered (load/compute overlap). `None` disables.
    pub double_buffer_budget: Option<u64>,
    /// Pad tile rows to dodge shared-memory bank conflicts when the row
    /// stride is a multiple of this many bytes (0 disables padding).
    pub bank_conflict_stride: u64,
    /// Apply the §III-B extent-1 dead-loop elimination before placement.
    /// MCFuser enables this; the Chimera baseline — which only hoists to
    /// the rightmost related loop — disables it and pays the redundant
    /// traffic of Fig. 5(a).
    pub dead_loop_elimination: bool,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions {
            double_buffer_budget: None,
            bank_conflict_stride: 128,
            dead_loop_elimination: true,
        }
    }
}

impl LoweringOptions {
    /// Policy for a concrete device: budget = the device's per-block
    /// shared-memory limit.
    pub fn for_device(dev: &mcfuser_sim::DeviceSpec) -> Self {
        LoweringOptions {
            double_buffer_budget: Some(dev.smem_per_block),
            ..Default::default()
        }
    }

    /// Chimera-style lowering: no dead-loop elimination.
    pub fn without_dead_loop_elimination(mut self) -> Self {
        self.dead_loop_elimination = false;
        self
    }
}

/// A lowered fused kernel.
#[derive(Debug, Clone)]
pub struct LoweredKernel {
    /// The executable/measurable virtual kernel.
    pub program: TileProgram,
    /// Whether load tiles were double buffered.
    pub double_buffered: bool,
    /// Physical shared-memory bytes per block.
    pub smem_bytes: u64,
}

/// Lower a candidate schedule of a chain into a tile program.
pub fn lower(
    chain: &ChainSpec,
    cand: &Candidate,
    opts: &LoweringOptions,
) -> Result<LoweredKernel, LoweringError> {
    let placement = if opts.dead_loop_elimination {
        place(chain, cand)?
    } else {
        crate::dag::place_into(chain, cand, &cand.block_expr(chain))?
    };
    let num_ops = chain.num_ops();

    // ---- Legality --------------------------------------------------------
    for op in 0..num_ops {
        let inst = accumulator_instances(chain, cand, op);
        if inst > 1 {
            return Err(LoweringError::MultiTileAccumulator {
                op,
                instances: inst,
            });
        }
    }
    for op in 1..num_ops {
        // Consumer placed inside producer's reduction loop?
        let red = compute_reduction_axis(chain, op - 1);
        let path = &placement
            .paths
            .iter()
            .find(|(s, _)| *s == Stmt::Compute(op))
            .expect("compute placed")
            .1;
        if path.contains(&red) {
            return Err(LoweringError::PartialConsumption { op });
        }
    }
    for (i, e) in chain.epilogues.iter().enumerate() {
        if e.is_rowwise() && i + 2 != num_ops + 1 {
            // softmax between op i and op i+1 requires op i+1 to be final.
            if i + 1 != num_ops - 1 {
                return Err(LoweringError::SoftmaxUnsupported(format!(
                    "softmax after block {i} is not followed by the final block"
                )));
            }
        }
    }

    // ---- Declarations ----------------------------------------------------
    let esz = chain.dtype;
    let mut b = ProgramBuilder::new(format!("{}::{}", chain.name, cand.describe(chain)), esz);
    // Global buffers: A, W_i, then aux inputs (biases/masks), out. The
    // order mirrors `ChainSpec::input_shapes` so callers can feed the
    // program positionally.
    let shapes = chain.input_shapes();
    let num_data = num_ops + 1;
    let mut input_bufs = Vec::with_capacity(num_data);
    for (i, shape) in shapes.iter().take(num_data).enumerate() {
        let name = if i == 0 {
            "A".to_string()
        } else {
            format!("W{}", i - 1)
        };
        input_bufs.push(b.buffer(name, shape.clone(), esz, BufferRole::Input));
    }
    let aux_list = chain.aux_inputs();
    let mut aux_bufs = Vec::with_capacity(aux_list.len());
    for (j, aux) in aux_list.iter().enumerate() {
        let name = match aux {
            AuxInput::Bias { stage } => format!("b{stage}"),
            AuxInput::Mask { stage } => format!("mask{stage}"),
        };
        aux_bufs.push((
            *aux,
            b.buffer(name, shapes[num_data + j].clone(), esz, BufferRole::Input),
        ));
    }
    let out_buf = b.buffer("out", chain.output_shape(), esz, BufferRole::Output);

    // Grid: batch, m, d_L.
    let g_batch = b.grid_dim(chain.batch);
    let g_m = b.grid_dim(cand.trips(chain, LoopId(0)));
    let last_axis = LoopId(chain.num_axes() - 1);
    let g_last = b.grid_dim(cand.trips(chain, last_axis));

    // Live block loops → handles (the placement's expression decides
    // which loops physically exist).
    let live_axes = if opts.dead_loop_elimination {
        cand.live_block_expr(chain).axes()
    } else {
        cand.block_expr(chain).axes()
    };
    let handles: Vec<(LoopId, LoopHandle)> =
        live_axes.iter().map(|&a| (a, b.fresh_loop())).collect();
    let var_of = |axis: LoopId| -> VarRef {
        if axis == LoopId(0) {
            g_m
        } else if axis == last_axis {
            g_last
        } else if let Some((_, h)) = handles.iter().find(|(a, _)| *a == axis) {
            VarRef::Loop(*h)
        } else {
            VarRef::Zero
        }
    };
    let handle_of = |axis: LoopId| -> LoopHandle {
        handles
            .iter()
            .find(|(a, _)| *a == axis)
            .expect("live loop")
            .1
    };

    // Shared tiles. Load tiles at chain precision; accumulators in f32.
    let pad = |cols: u64| -> u64 {
        if opts.bank_conflict_stride > 0
            && (cols * esz.size_bytes()).is_multiple_of(opts.bank_conflict_stride)
        {
            8
        } else {
            0
        }
    };
    let mut load_tiles = Vec::with_capacity(num_ops + 1);
    for (i, &buf) in input_bufs.iter().enumerate() {
        let t = if i == 0 {
            TensorRef::Input(0)
        } else {
            TensorRef::Input(i)
        };
        let ax = tensor_axes(chain, t);
        let (r, c) = (cand.tile(ax[0]), cand.tile(ax[1]));
        let id = b.smem_with(
            format!("tile_{}", i),
            r,
            c,
            esz,
            pad(c),
            false, // double buffering decided below
        );
        load_tiles.push((id, buf, t));
    }
    let mut accs = Vec::with_capacity(num_ops);
    for op in 0..num_ops {
        let t = crate::stmt::compute_output(chain, op);
        let ax = tensor_axes(chain, t);
        let (r, c) = (cand.tile(ax[0]), cand.tile(ax[1]));
        accs.push(b.smem_with(format!("acc_{}", op), r, c, DType::F32, 0, false));
    }
    // Softmax statistics (allocated only when needed).
    let softmax_pos = chain.epilogues.iter().position(Epilogue::is_rowwise);
    let stats = softmax_pos.map(|_| {
        let tm = cand.tile(LoopId(0));
        let mx = b.smem_with("row_max", tm, 1, DType::F32, 0, false);
        let sm = b.smem_with("row_sum", tm, 1, DType::F32, 0, false);
        (mx, sm)
    });
    // Aux tiles: a bias strip `1 × t_cols` per biased stage, a mask tile
    // `t_m × t_cols` per masked softmax.
    let aux_tiles: Vec<(AuxInput, SmemId, mcfuser_sim::BufId)> = aux_bufs
        .iter()
        .map(|&(aux, buf)| {
            let (name, rows, stage) = match aux {
                AuxInput::Bias { stage } => (format!("bias_{stage}"), 1, stage),
                AuxInput::Mask { stage } => (format!("mask_{stage}"), cand.tile(LoopId(0)), stage),
            };
            let cols = cand.tile(LoopId(stage + 2));
            (aux, b.smem_with(name, rows, cols, esz, 0, false), buf)
        })
        .collect();

    // ---- Fill anchoring ---------------------------------------------------
    // acc_i is zeroed at the body start of the deepest live loop on C_i's
    // path whose axis is spatial for T_i; stats/output accs anchor at root.
    let mut fills_at: Vec<(Option<LoopId>, BlockStmt)> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for op in 0..num_ops {
        let t = crate::stmt::compute_output(chain, op);
        let spatial = tensor_axes(chain, t);
        let path = &placement
            .paths
            .iter()
            .find(|(s, _)| *s == Stmt::Compute(op))
            .expect("compute placed")
            .1;
        let anchor = path.iter().rev().find(|a| spatial.contains(a)).copied();
        fills_at.push((
            anchor,
            BlockStmt::Fill {
                dst: accs[op],
                value: 0.0,
            },
        ));
    }
    if let Some((mx, sm)) = stats {
        fills_at.push((
            None,
            BlockStmt::Fill {
                dst: mx,
                value: f32::NEG_INFINITY,
            },
        ));
        fills_at.push((
            None,
            BlockStmt::Fill {
                dst: sm,
                value: 0.0,
            },
        ));
    }

    // ---- Emit body --------------------------------------------------------
    let ctx = EmitCtx {
        chain,
        cand,
        g_batch,
        var_of: &var_of,
        handle_of: &handle_of,
        load_tiles: &load_tiles,
        accs: &accs,
        stats,
        aux_tiles: &aux_tiles,
        out_buf,
        softmax_pos,
        fills_at: &fills_at,
    };
    let body = emit_scope(&placement.tree.root, None, &ctx);

    let mut program = b.finish(body);

    // ---- Intra-tile policy: double buffering ------------------------------
    let mut double_buffered = false;
    if let Some(budget) = opts.double_buffer_budget {
        let base = program.smem_bytes();
        let extra: u64 = load_tiles
            .iter()
            .map(|(id, _, _)| program.smem[id.0].alloc_bytes())
            .sum();
        if base + extra <= budget {
            for (id, _, _) in &load_tiles {
                program.smem[id.0].double_buffered = true;
            }
            double_buffered = true;
        }
    }
    let smem_bytes = program.smem_bytes();
    Ok(LoweredKernel {
        program,
        double_buffered,
        smem_bytes,
    })
}

/// Emission context shared by the scope walker.
struct EmitCtx<'a> {
    chain: &'a ChainSpec,
    cand: &'a Candidate,
    g_batch: VarRef,
    var_of: &'a dyn Fn(LoopId) -> VarRef,
    handle_of: &'a dyn Fn(LoopId) -> LoopHandle,
    load_tiles: &'a [(SmemId, mcfuser_sim::BufId, TensorRef)],
    accs: &'a [SmemId],
    stats: Option<(SmemId, SmemId)>,
    aux_tiles: &'a [(AuxInput, SmemId, mcfuser_sim::BufId)],
    out_buf: mcfuser_sim::BufId,
    softmax_pos: Option<usize>,
    fills_at: &'a [(Option<LoopId>, BlockStmt)],
}

fn tile_access(ctx: &EmitCtx<'_>, t: TensorRef, buf: mcfuser_sim::BufId) -> TileAccess {
    let ax = tensor_axes(ctx.chain, t);
    TileAccess {
        buf,
        indices: vec![
            TileIndex {
                var: ctx.g_batch,
                tile: 1,
            },
            TileIndex {
                var: (ctx.var_of)(ax[0]),
                tile: ctx.cand.tile(ax[0]),
            },
            TileIndex {
                var: (ctx.var_of)(ax[1]),
                tile: ctx.cand.tile(ax[1]),
            },
        ],
    }
}

fn emit_scope(scope: &Scope, at_loop: Option<LoopId>, ctx: &EmitCtx<'_>) -> Vec<BlockStmt> {
    let mut out = Vec::new();
    // Anchored accumulator fills first.
    for (anchor, fill) in ctx.fills_at {
        if *anchor == at_loop {
            out.push(fill.clone());
        }
    }
    for item in &scope.items {
        match item {
            ScheduleItem::Loop { axis, trips, body } => {
                out.push(BlockStmt::Loop {
                    handle: (ctx.handle_of)(*axis),
                    extent: *trips,
                    body: emit_scope(body, Some(*axis), ctx),
                });
            }
            ScheduleItem::Stmt(s) => emit_stmt(*s, ctx, &mut out),
        }
    }
    out
}

fn emit_stmt(s: Stmt, ctx: &EmitCtx<'_>, out: &mut Vec<BlockStmt>) {
    let num_ops = ctx.chain.num_ops();
    match s {
        Stmt::Load(t) => {
            let (id, buf, _) = ctx
                .load_tiles
                .iter()
                .find(|(_, _, tt)| *tt == t)
                .expect("load tile declared");
            out.push(BlockStmt::Load {
                src: tile_access(ctx, t, *buf),
                dst: *id,
            });
        }
        Stmt::Compute(op) => {
            // Producer epilogue (applied once per completed producer tile).
            if op > 0 {
                emit_epilogue(op - 1, ctx, out);
            }
            let a = if op == 0 {
                ctx.load_tiles[0].0
            } else {
                ctx.accs[op - 1]
            };
            let b_tile = ctx.load_tiles[op + 1].0;
            out.push(BlockStmt::Gemm {
                a,
                b: b_tile,
                acc: ctx.accs[op],
                b_transposed: false,
            });
        }
        Stmt::Store => {
            // Final epilogue + softmax normalization before the store.
            emit_epilogue(num_ops - 1, ctx, out);
            if let (Some(pos), Some((_, sm))) = (ctx.softmax_pos, ctx.stats) {
                let _ = pos;
                out.push(BlockStmt::RowDiv {
                    target: ctx.accs[num_ops - 1],
                    denom: sm,
                });
            }
            out.push(BlockStmt::Store {
                dst: tile_access(ctx, TensorRef::Output, ctx.out_buf),
                src: ctx.accs[num_ops - 1],
            });
        }
    }
}

/// Apply stage `i`'s bias (if any) and `chain.epilogues[i]` to `acc_i`.
/// Runs exactly once per completed `acc_i` tile (the legality checks
/// guarantee a consumer never re-reads a producer tile), so even
/// non-idempotent epilogues (scale, bias, masked softmax) are safe.
fn emit_epilogue(i: usize, ctx: &EmitCtx<'_>, out: &mut Vec<BlockStmt>) {
    if ctx.chain.biases.get(i).copied().unwrap_or(false) {
        let (tile, buf) = aux_tile(ctx, AuxInput::Bias { stage: i });
        out.push(BlockStmt::Load {
            src: aux_access(ctx, AuxInput::Bias { stage: i }, buf),
            dst: tile,
        });
        out.push(BlockStmt::AddBias {
            target: ctx.accs[i],
            bias: tile,
        });
    }
    match ctx.chain.epilogues[i] {
        Epilogue::None => {}
        Epilogue::Relu => out.push(BlockStmt::Relu {
            target: ctx.accs[i],
        }),
        Epilogue::Gelu => out.push(BlockStmt::Gelu {
            target: ctx.accs[i],
        }),
        Epilogue::Scale(f) => out.push(BlockStmt::Scale {
            target: ctx.accs[i],
            factor: f,
        }),
        Epilogue::Softmax { scale } => {
            emit_online_softmax(i, scale, ctx, out);
        }
        Epilogue::MaskedSoftmax { scale } => {
            // softmax(scale·(s + mask)): add the mask tile to the
            // completed scores, then stream with the usual pre-scale.
            let (tile, buf) = aux_tile(ctx, AuxInput::Mask { stage: i });
            out.push(BlockStmt::Load {
                src: aux_access(ctx, AuxInput::Mask { stage: i }, buf),
                dst: tile,
            });
            out.push(BlockStmt::AddTile {
                target: ctx.accs[i],
                other: tile,
            });
            emit_online_softmax(i, scale, ctx, out);
        }
    }
}

/// The streaming softmax update for stage `i`'s scores.
fn emit_online_softmax(i: usize, scale: f32, ctx: &EmitCtx<'_>, out: &mut Vec<BlockStmt>) {
    let (mx, sm) = ctx.stats.expect("stats allocated");
    // Rescale every *downstream* accumulator (there is exactly one:
    // the final output, by the legality check).
    let rescale: Vec<SmemId> = ctx.accs[i + 1..].to_vec();
    out.push(BlockStmt::OnlineSoftmax {
        scores: ctx.accs[i],
        row_max: mx,
        row_sum: sm,
        rescale,
        scale,
    });
}

/// Shared-memory tile and global buffer of an aux input.
fn aux_tile(ctx: &EmitCtx<'_>, aux: AuxInput) -> (SmemId, mcfuser_sim::BufId) {
    ctx.aux_tiles
        .iter()
        .find(|(a, _, _)| *a == aux)
        .map(|(_, t, b)| (*t, *b))
        .expect("aux tile declared")
}

/// Tile access for an aux input: biases are rank-1 `[d]` strips indexed
/// by the stage's column axis; masks are rank-3 `[batch, m, d]` tiles.
fn aux_access(ctx: &EmitCtx<'_>, aux: AuxInput, buf: mcfuser_sim::BufId) -> TileAccess {
    match aux {
        AuxInput::Bias { stage } => {
            let col = LoopId(stage + 2);
            TileAccess {
                buf,
                indices: vec![TileIndex {
                    var: (ctx.var_of)(col),
                    tile: ctx.cand.tile(col),
                }],
            }
        }
        AuxInput::Mask { stage } => {
            let col = LoopId(stage + 2);
            TileAccess {
                buf,
                indices: vec![
                    TileIndex {
                        var: ctx.g_batch,
                        tile: 1,
                    },
                    TileIndex {
                        var: (ctx.var_of)(LoopId(0)),
                        tile: ctx.cand.tile(LoopId(0)),
                    },
                    TileIndex {
                        var: (ctx.var_of)(col),
                        tile: ctx.cand.tile(col),
                    },
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TilingExpr;
    use mcfuser_sim::{execute, DeviceSpec, TensorStorage};

    fn gemm_chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 128, 96, 64, 80)
    }

    fn cand_for(chain: &ChainSpec, expr: &str, tiles: Vec<u64>) -> Candidate {
        Candidate::new(TilingExpr::parse(expr, chain).unwrap(), tiles)
    }

    /// Run a lowered kernel functionally and compare with the chain oracle.
    fn check_numerics(chain: &ChainSpec, cand: &Candidate, seed: u64) {
        let k = lower(chain, cand, &LoweringOptions::default()).unwrap();
        k.program.validate().unwrap();
        let inputs = chain.random_inputs(seed);
        let mut st = TensorStorage::for_program(&k.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&k.program, &mut st).unwrap();
        let expect = chain.reference(&inputs);
        let got = st.tensors.last().unwrap();
        let err = got.rel_l2_error(&expect);
        assert!(err < 2e-2, "rel error {err} for {}", cand.describe(chain));
    }

    #[test]
    fn nk_schedule_computes_correct_result() {
        let c = gemm_chain();
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 1);
    }

    #[test]
    fn flat_schedule_computes_correct_result() {
        let c = gemm_chain();
        check_numerics(&c, &cand_for(&c, "mn(k,h)", vec![32, 32, 32, 16]), 2);
    }

    #[test]
    fn full_dim_tiles_compute_correct_result() {
        let c = gemm_chain();
        // k tile covers K → dead k loop; exercises Fig. 5(b) hoisting.
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 64, 32, 16]), 3);
    }

    #[test]
    fn partial_tiles_compute_correct_result() {
        // Dims not divisible by tiles.
        let c = ChainSpec::gemm_chain("g", 1, 100, 72, 40, 56);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 16, 32, 16]), 4);
    }

    #[test]
    fn batched_chain_correct() {
        let c = ChainSpec::gemm_chain("g", 3, 64, 48, 32, 32);
        check_numerics(&c, &cand_for(&c, "mnkh", vec![32, 16, 16, 16]), 5);
    }

    #[test]
    fn relu_epilogue_correct() {
        let mut c = gemm_chain();
        c.epilogues[0] = Epilogue::Relu;
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 6);
    }

    #[test]
    fn attention_softmax_correct() {
        let c = ChainSpec::attention("s", 2, 64, 64, 32, 32);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 16, 32]), 7);
    }

    #[test]
    fn attention_single_n_tile_correct() {
        let c = ChainSpec::attention("s", 1, 64, 64, 32, 32);
        // n tile covers N: softmax in one shot.
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 64, 32]), 8);
    }

    #[test]
    fn kn_order_rejected_as_multi_tile() {
        let c = gemm_chain();
        let cd = cand_for(&c, "mhkn", vec![32, 16, 32, 16]);
        let err = lower(&c, &cd, &LoweringOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                LoweringError::MultiTileAccumulator { .. }
                    | LoweringError::PartialConsumption { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn double_buffering_enabled_under_budget() {
        let c = gemm_chain();
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, 16]);
        let dev = DeviceSpec::a100();
        let k = lower(&c, &cd, &LoweringOptions::for_device(&dev)).unwrap();
        assert!(k.double_buffered);
        let k2 = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        assert!(!k2.double_buffered);
        assert!(k.smem_bytes > k2.smem_bytes);
    }

    #[test]
    fn actual_smem_exceeds_estimate() {
        // Double buffering + f32 accumulators make the lowered footprint
        // larger than Eq. 1's estimate — the Fig. 10 gap.
        let c = gemm_chain();
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, 16]);
        let dev = DeviceSpec::a100();
        let k = lower(&c, &cd, &LoweringOptions::for_device(&dev)).unwrap();
        let est = crate::shmem::estimate_shmem_bytes(&c, &cd);
        assert!(k.smem_bytes > est, "{} !> {}", k.smem_bytes, est);
    }

    #[test]
    fn single_matmul_lowers_and_computes() {
        let c = ChainSpec::single_matmul("mm", 1, 96, 64, 48);
        check_numerics(&c, &cand_for(&c, "mkn", vec![32, 16, 32]), 9);
    }

    #[test]
    fn scale_epilogue_on_output() {
        let mut c = ChainSpec::single_matmul("mm", 1, 64, 64, 32);
        c.epilogues[0] = Epilogue::Scale(0.5);
        check_numerics(&c, &cand_for(&c, "mkn", vec![32, 16, 32]), 10);
    }

    #[test]
    fn gelu_epilogue_correct() {
        let mut c = gemm_chain();
        c.epilogues[0] = Epilogue::Gelu;
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 11);
    }

    #[test]
    fn biased_stages_correct() {
        let mut c = gemm_chain();
        c.biases = vec![true, true];
        assert_eq!(c.num_inputs(), 5);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 12);
    }

    #[test]
    fn bias_plus_relu_stage_correct() {
        let mut c = gemm_chain();
        c.biases = vec![true, false];
        c.epilogues[0] = Epilogue::Relu;
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 13);
    }

    #[test]
    fn masked_attention_correct() {
        let c = ChainSpec::masked_attention("ms", 2, 64, 64, 32, 32);
        assert_eq!(c.num_inputs(), 4); // Q, K, V, mask
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 16, 32]), 14);
    }

    #[test]
    fn masked_attention_with_causal_mask_is_causal() {
        let c = ChainSpec::masked_attention("ms", 2, 64, 64, 32, 32);
        let cd = cand_for(&c, "mhnk", vec![32, 32, 16, 32]);
        let k = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        let mut inputs = c.random_inputs(15);
        inputs[3] = mcfuser_ir::causal_mask(2, 64, 64);
        let mut st = TensorStorage::for_program(&k.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&k.program, &mut st).unwrap();
        let expect = c.reference(&inputs);
        let got = st.tensors.last().unwrap();
        assert!(got.rel_l2_error(&expect) < 2e-2);
        // Row 0 can only attend to position 0: its output must equal
        // V[batch, 0, :] exactly (softmax over one unmasked score = 1).
        let v = &inputs[2];
        for b in 0..2usize {
            for j in 0..32usize {
                let o = got.data[b * 64 * 32 + j];
                let vv = v.data[b * 64 * 32 + j];
                assert!((o - vv).abs() < 1e-2, "b{b} j{j}: {o} vs {vv}");
            }
        }
    }

    #[test]
    fn four_gemm_chain_with_mixed_epilogues_correct() {
        let mut c = ChainSpec::chain(
            "mlp4",
            1,
            128,
            vec![64, 96, 64, 96, 64],
            vec![
                Epilogue::Gelu,
                Epilogue::Relu,
                Epilogue::Scale(0.5),
                Epilogue::None,
            ],
        );
        c.biases = vec![true, false, false, true];
        // Deep "mqphnk" nest: reductions innermost-first, the legal
        // generalization of the 2-GEMM "mhnk".
        let mut perm = vec![crate::loops::LoopId(0)];
        perm.extend((1..c.num_axes()).rev().map(crate::loops::LoopId));
        let cd = Candidate::new(TilingExpr::deep(&perm), vec![32, 32, 32, 32, 32, 32]);
        check_numerics(&c, &cd, 16);
    }

    #[test]
    fn program_grid_matches_candidate() {
        let c = gemm_chain();
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, 16]);
        let k = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        assert_eq!(k.program.grid, cd.grid(&c));
        assert_eq!(k.program.num_blocks(), cd.num_blocks(&c));
    }
}
