//! Lowering: schedule candidate → executable [`TileProgram`].
//!
//! This is the reproduction's stand-in for the paper's TIR → TritonIR →
//! PTX pipeline (§V-A). MCFuser is an *inter-tile* optimizer; intra-tile
//! policies (double buffering, bank-conflict padding, accumulator
//! precision) are applied here deterministically, playing the role of
//! Triton's automatic intra-tile optimizations. The difference between
//! Eq. 1's coarse estimate and what this module actually allocates is the
//! scatter of the paper's Fig. 10.
//!
//! Lowering enforces the legality conditions the search space is pruned
//! by:
//!
//! * consumers may not sit inside their producer's reduction loop
//!   (partial-tile consumption — the Fig. 6(b) shapes Rule 2 removes);
//! * accumulators must need exactly one shared-memory tile instance;
//! * a softmax epilogue requires completed score tiles and a streaming
//!   (online) update for the downstream accumulator.

use mcfuser_ir::{AuxInput, ChainSpec, Epilogue, ResidualSource};
use mcfuser_sim::{
    BlockStmt, BufferRole, DType, LoopHandle, ProgramBuilder, SmemId, TileAccess, TileIndex,
    TileProgram, VarRef,
};

use crate::candidate::Candidate;
use crate::dag::{accumulator_instances, place, PlacementError, ScheduleItem, Scope};
use crate::loops::LoopId;
use crate::stmt::{compute_reduction_axis, tensor_axes, Stmt, TensorRef};

/// Why a candidate cannot be lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum LoweringError {
    /// Statement placement failed.
    Placement(PlacementError),
    /// Compute block `op` would consume a partially accumulated producer
    /// tile (it is nested inside the producer's reduction loop).
    PartialConsumption {
        /// The consuming compute block.
        op: usize,
    },
    /// An accumulator needs more than one shared-memory tile instance
    /// (the configuration Rule 2 prunes).
    MultiTileAccumulator {
        /// The producing compute block.
        op: usize,
        /// Required tile instances.
        instances: u64,
    },
    /// Softmax epilogue in an unsupported position (only the final
    /// producer→consumer hop supports streaming softmax).
    SoftmaxUnsupported(String),
    /// A prologue/epilogue stitch cannot be honoured by this candidate
    /// (e.g. a tail LayerNorm whose tile does not span the full row).
    /// The tuner skips such candidates; the chain's unstitched twin
    /// remains available as a fallback.
    StitchUnsupported(String),
}

impl std::fmt::Display for LoweringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoweringError::Placement(e) => write!(f, "placement: {e}"),
            LoweringError::PartialConsumption { op } => {
                write!(f, "compute block {op} consumes a partial accumulator tile")
            }
            LoweringError::MultiTileAccumulator { op, instances } => {
                write!(
                    f,
                    "accumulator of block {op} needs {instances} tile instances"
                )
            }
            LoweringError::SoftmaxUnsupported(m) => write!(f, "softmax: {m}"),
            LoweringError::StitchUnsupported(m) => write!(f, "stitch: {m}"),
        }
    }
}

impl std::error::Error for LoweringError {}

impl From<PlacementError> for LoweringError {
    fn from(e: PlacementError) -> Self {
        LoweringError::Placement(e)
    }
}

/// Intra-tile policy knobs (the "Triton" side of the split).
#[derive(Debug, Clone)]
pub struct LoweringOptions {
    /// Shared-memory budget for enabling double buffering on load tiles.
    /// When doubling every load tile still fits this budget, loads are
    /// double buffered (load/compute overlap). `None` disables.
    pub double_buffer_budget: Option<u64>,
    /// Pad tile rows to dodge shared-memory bank conflicts when the row
    /// stride is a multiple of this many bytes (0 disables padding).
    pub bank_conflict_stride: u64,
    /// Apply the §III-B extent-1 dead-loop elimination before placement.
    /// MCFuser enables this; the Chimera baseline — which only hoists to
    /// the rightmost related loop — disables it and pays the redundant
    /// traffic of Fig. 5(a).
    pub dead_loop_elimination: bool,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions {
            double_buffer_budget: None,
            bank_conflict_stride: 128,
            dead_loop_elimination: true,
        }
    }
}

impl LoweringOptions {
    /// Policy for a concrete device: budget = the device's per-block
    /// shared-memory limit.
    pub fn for_device(dev: &mcfuser_sim::DeviceSpec) -> Self {
        LoweringOptions {
            double_buffer_budget: Some(dev.smem_per_block),
            ..Default::default()
        }
    }

    /// Chimera-style lowering: no dead-loop elimination.
    pub fn without_dead_loop_elimination(mut self) -> Self {
        self.dead_loop_elimination = false;
        self
    }
}

/// A lowered fused kernel.
#[derive(Debug, Clone)]
pub struct LoweredKernel {
    /// The executable/measurable virtual kernel.
    pub program: TileProgram,
    /// Whether load tiles were double buffered.
    pub double_buffered: bool,
    /// Physical shared-memory bytes per block.
    pub smem_bytes: u64,
}

/// Lower a candidate schedule of a chain into a tile program.
pub fn lower(
    chain: &ChainSpec,
    cand: &Candidate,
    opts: &LoweringOptions,
) -> Result<LoweredKernel, LoweringError> {
    let placement = if opts.dead_loop_elimination {
        place(chain, cand)?
    } else {
        crate::dag::place_into(chain, cand, &cand.block_expr(chain))?
    };
    let num_ops = chain.num_ops();

    // ---- Legality --------------------------------------------------------
    for op in 0..num_ops {
        let inst = accumulator_instances(chain, cand, op);
        if inst > 1 {
            return Err(LoweringError::MultiTileAccumulator {
                op,
                instances: inst,
            });
        }
    }
    for op in 1..num_ops {
        // Consumer placed inside producer's reduction loop?
        let red = compute_reduction_axis(chain, op - 1);
        let path = &placement
            .paths
            .iter()
            .find(|(s, _)| *s == Stmt::Compute(op))
            .expect("compute placed")
            .1;
        if path.contains(&red) {
            return Err(LoweringError::PartialConsumption { op });
        }
    }
    for (i, e) in chain.epilogues.iter().enumerate() {
        if e.is_rowwise() && i + 2 != num_ops + 1 {
            // softmax between op i and op i+1 requires op i+1 to be final.
            if i + 1 != num_ops - 1 {
                return Err(LoweringError::SoftmaxUnsupported(format!(
                    "softmax after block {i} is not followed by the final block"
                )));
            }
        }
    }
    // Stitched prologue/epilogue legality. The partitioner only attaches
    // stitches to softmax-free chains with an affine prologue LayerNorm
    // (zero-padded gamma/beta strips keep out-of-range columns exactly 0);
    // a tail LayerNorm additionally needs its whole row in one tile.
    let pro = chain.prologue;
    let tail = chain.stitch_epilogue;
    let last_axis = LoopId(chain.num_axes() - 1);
    if (pro.is_some() || tail.is_some()) && chain.has_softmax() {
        return Err(LoweringError::StitchUnsupported(
            "stitches cannot share a kernel with a streaming softmax".into(),
        ));
    }
    if let Some(p) = pro {
        if !p.affine {
            return Err(LoweringError::StitchUnsupported(
                "prologue LayerNorm must be affine".into(),
            ));
        }
    }
    if let Some(t) = tail {
        let d_last = *chain.dims.last().expect("chain has dims");
        if t.layer_norm && cand.tile(last_axis) != d_last {
            return Err(LoweringError::StitchUnsupported(format!(
                "tail LayerNorm needs the full row in one tile (t={} < d_L={})",
                cand.tile(last_axis),
                d_last
            )));
        }
        if t.residual == ResidualSource::PrologueOut
            && (pro.is_none() || chain.dims.first() != chain.dims.last())
        {
            return Err(LoweringError::StitchUnsupported(
                "PrologueOut residual needs a prologue with d_0 == d_L".into(),
            ));
        }
    }
    // A tail LayerNorm pins the last axis to the full row, which would
    // force the final weight tile to hold a whole `t_k × d_L` panel.
    // Stream that panel in column chunks instead: only one `t_k × chunk`
    // slice is resident, and each slice fills its accumulator columns.
    let tail_chunk: Option<(u64, u64)> = tail.filter(|t| t.layer_norm).and_then(|_| {
        let d_l = *chain.dims.last().expect("chain has dims");
        let chunk = crate::shmem::tail_panel_chunk(d_l);
        (chunk < d_l).then_some((chunk, d_l / chunk))
    });

    // ---- Declarations ----------------------------------------------------
    let esz = chain.dtype;
    let mut b = ProgramBuilder::new(format!("{}::{}", chain.name, cand.describe(chain)), esz);
    // Global buffers: A, W_i, then aux inputs (biases/masks), out. The
    // order mirrors `ChainSpec::input_shapes` so callers can feed the
    // program positionally.
    let shapes = chain.input_shapes();
    let num_data = num_ops + 1;
    let mut input_bufs = Vec::with_capacity(num_data);
    for (i, shape) in shapes.iter().take(num_data).enumerate() {
        let name = if i == 0 {
            "A".to_string()
        } else {
            format!("W{}", i - 1)
        };
        // A stitched prologue reads the raw (pre-LayerNorm) activation —
        // stored at chain precision when its producer is a fused chain
        // that quantizes on store, at boundary f32 otherwise. The smem
        // tile is f32 either way, so values are identical; only the
        // global-traffic accounting follows the storage width.
        let dt = match pro {
            Some(p) if i == 0 => {
                if p.a_half {
                    esz
                } else {
                    DType::F32
                }
            }
            _ => esz,
        };
        input_bufs.push(b.buffer(name, shape.clone(), dt, BufferRole::Input));
    }
    let aux_list = chain.aux_inputs();
    let mut aux_bufs = Vec::with_capacity(aux_list.len());
    for (j, aux) in aux_list.iter().enumerate() {
        let (name, dt) = match aux {
            AuxInput::Bias { stage } => (format!("b{stage}"), esz),
            AuxInput::Mask { stage } => (format!("mask{stage}"), esz),
            // Stitched operands live at unfused-boundary precision: raw f32.
            AuxInput::PrologueResidual => ("p_res".to_string(), DType::F32),
            AuxInput::PrologueGamma => ("p_gamma".to_string(), DType::F32),
            AuxInput::PrologueBeta => ("p_beta".to_string(), DType::F32),
            AuxInput::TailResidual => ("t_res".to_string(), DType::F32),
            AuxInput::TailGamma => ("t_gamma".to_string(), DType::F32),
            AuxInput::TailBeta => ("t_beta".to_string(), DType::F32),
        };
        aux_bufs.push((
            *aux,
            b.buffer(name, shapes[num_data + j].clone(), dt, BufferRole::Input),
        ));
    }
    // A stitched epilogue stores the unfused layout's f32 result.
    let out_dt = if tail.is_some() { DType::F32 } else { esz };
    let out_buf = b.buffer("out", chain.output_shape(), out_dt, BufferRole::Output);

    // Grid: batch, m, d_L.
    let g_batch = b.grid_dim(chain.batch);
    let g_m = b.grid_dim(cand.trips(chain, LoopId(0)));
    let g_last = b.grid_dim(cand.trips(chain, last_axis));

    // Live block loops → handles (the placement's expression decides
    // which loops physically exist).
    let live_axes = if opts.dead_loop_elimination {
        cand.live_block_expr(chain).axes()
    } else {
        cand.block_expr(chain).axes()
    };
    let handles: Vec<(LoopId, LoopHandle)> =
        live_axes.iter().map(|&a| (a, b.fresh_loop())).collect();
    let var_of = |axis: LoopId| -> VarRef {
        if axis == LoopId(0) {
            g_m
        } else if axis == last_axis {
            g_last
        } else if let Some((_, h)) = handles.iter().find(|(a, _)| *a == axis) {
            VarRef::Loop(*h)
        } else {
            VarRef::Zero
        }
    };
    let handle_of = |axis: LoopId| -> LoopHandle {
        handles
            .iter()
            .find(|(a, _)| *a == axis)
            .expect("live loop")
            .1
    };

    // Shared tiles. Load tiles at chain precision; accumulators in f32.
    let pad = |cols: u64| -> u64 {
        if opts.bank_conflict_stride > 0
            && (cols * esz.size_bytes()).is_multiple_of(opts.bank_conflict_stride)
        {
            8
        } else {
            0
        }
    };
    let mut load_tiles = Vec::with_capacity(num_ops + 1);
    for (i, &buf) in input_bufs.iter().enumerate() {
        let t = if i == 0 {
            TensorRef::Input(0)
        } else {
            TensorRef::Input(i)
        };
        let ax = tensor_axes(chain, t);
        let (r, mut c) = (cand.tile(ax[0]), cand.tile(ax[1]));
        if i == num_ops {
            if let Some((chunk, _)) = tail_chunk {
                c = chunk;
            }
        }
        // The prologue normalizes the raw f32 A tile in shared memory
        // before the first GEMM consumes it.
        let dt = if i == 0 && pro.is_some() {
            DType::F32
        } else {
            esz
        };
        let id = b.smem_with(
            format!("tile_{}", i),
            r,
            c,
            dt,
            pad(c),
            false, // double buffering decided below
        );
        load_tiles.push((id, buf, t));
    }
    let mut accs = Vec::with_capacity(num_ops);
    for op in 0..num_ops {
        let t = crate::stmt::compute_output(chain, op);
        let ax = tensor_axes(chain, t);
        let (r, c) = (cand.tile(ax[0]), cand.tile(ax[1]));
        accs.push(b.smem_with(format!("acc_{}", op), r, c, DType::F32, 0, false));
    }
    // Softmax statistics (allocated only when needed).
    let softmax_pos = chain.epilogues.iter().position(Epilogue::is_rowwise);
    let stats = softmax_pos.map(|_| {
        let tm = cand.tile(LoopId(0));
        let mx = b.smem_with("row_max", tm, 1, DType::F32, 0, false);
        let sm = b.smem_with("row_sum", tm, 1, DType::F32, 0, false);
        (mx, sm)
    });
    // Aux tiles: a bias strip `1 × t_cols` per biased stage, a mask tile
    // `t_m × t_cols` per masked softmax. Stitched aux operands get their
    // own tiles below.
    let aux_tiles: Vec<(AuxInput, SmemId, mcfuser_sim::BufId)> = aux_bufs
        .iter()
        .filter_map(|&(aux, buf)| {
            let (name, rows, stage) = match aux {
                AuxInput::Bias { stage } => (format!("bias_{stage}"), 1, stage),
                AuxInput::Mask { stage } => (format!("mask_{stage}"), cand.tile(LoopId(0)), stage),
                _ => return None,
            };
            let cols = cand.tile(LoopId(stage + 2));
            Some((aux, b.smem_with(name, rows, cols, esz, 0, false), buf))
        })
        .collect();
    // Stitch tiles: raw-f32 prologue residual (A-shaped), per-row LayerNorm
    // stats, and `1 × tile` gamma/beta strips for each normalization site.
    let aux_buf = |aux: AuxInput| -> mcfuser_sim::BufId {
        aux_bufs
            .iter()
            .find(|(a, _)| *a == aux)
            .expect("stitched aux buffer declared")
            .1
    };
    let stitch = if pro.is_some() || tail.is_some() {
        let tm = cand.tile(LoopId(0));
        let tk = cand.tile(LoopId(1));
        let tn = cand.tile(last_axis);
        let pro_emit = pro.map(|p| {
            let res = p.residual.then(|| {
                let id = b.smem_with("p_res_tile", tm, tk, DType::F32, pad(tk), false);
                (id, aux_buf(AuxInput::PrologueResidual))
            });
            ProEmit {
                eps: p.eps,
                mean: b.smem_with("row_mean", tm, 1, DType::F32, 0, false),
                rstd: b.smem_with("row_rstd", tm, 1, DType::F32, 0, false),
                res,
                gamma: (
                    b.smem_with("p_gamma_tile", 1, tk, DType::F32, 0, false),
                    aux_buf(AuxInput::PrologueGamma),
                ),
                beta: (
                    b.smem_with("p_beta_tile", 1, tk, DType::F32, 0, false),
                    aux_buf(AuxInput::PrologueBeta),
                ),
            }
        });
        let tail_emit = tail.map(|t| {
            let rec = (t.residual == ResidualSource::PrologueOut).then(|| {
                (
                    b.smem_with("rec_gamma_tile", 1, tn, DType::F32, 0, false),
                    b.smem_with("rec_beta_tile", 1, tn, DType::F32, 0, false),
                )
            });
            let ext_buf =
                (t.residual == ResidualSource::External).then(|| aux_buf(AuxInput::TailResidual));
            let ln_affine = (t.layer_norm && t.affine).then(|| {
                (
                    (
                        b.smem_with("t_gamma_tile", 1, tn, DType::F32, 0, false),
                        aux_buf(AuxInput::TailGamma),
                    ),
                    (
                        b.smem_with("t_beta_tile", 1, tn, DType::F32, 0, false),
                        aux_buf(AuxInput::TailBeta),
                    ),
                )
            });
            TailEmit {
                spec: t,
                rec,
                ext_buf,
                ln_affine,
            }
        });
        Some(StitchEmit {
            a_buf: input_bufs[0],
            pro: pro_emit,
            tail: tail_emit,
        })
    } else {
        None
    };

    // ---- Fill anchoring ---------------------------------------------------
    // acc_i is zeroed at the body start of the deepest live loop on C_i's
    // path whose axis is spatial for T_i; stats/output accs anchor at root.
    let mut fills_at: Vec<(Option<LoopId>, BlockStmt)> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for op in 0..num_ops {
        let t = crate::stmt::compute_output(chain, op);
        let spatial = tensor_axes(chain, t);
        let path = &placement
            .paths
            .iter()
            .find(|(s, _)| *s == Stmt::Compute(op))
            .expect("compute placed")
            .1;
        let anchor = path.iter().rev().find(|a| spatial.contains(a)).copied();
        fills_at.push((
            anchor,
            BlockStmt::Fill {
                dst: accs[op],
                value: 0.0,
            },
        ));
    }
    if let Some((mx, sm)) = stats {
        fills_at.push((
            None,
            BlockStmt::Fill {
                dst: mx,
                value: f32::NEG_INFINITY,
            },
        ));
        fills_at.push((
            None,
            BlockStmt::Fill {
                dst: sm,
                value: 0.0,
            },
        ));
    }

    // ---- Emit body --------------------------------------------------------
    let ctx = EmitCtx {
        chain,
        cand,
        g_batch,
        var_of: &var_of,
        handle_of: &handle_of,
        load_tiles: &load_tiles,
        accs: &accs,
        stats,
        aux_tiles: &aux_tiles,
        out_buf,
        softmax_pos,
        exact_softmax: softmax_pos
            .is_some_and(|pos| cand.tile(LoopId(pos + 2)) == chain.dims[pos + 1]),
        fills_at: &fills_at,
        stitch: stitch.as_ref(),
        tail_chunk,
    };
    let mut body = emit_scope(&placement.tree.root, None, &ctx);
    // Prologue row statistics: one pass over the block's raw rows (full
    // d0 width, straight from global memory) before any tile work.
    if let Some(p) = stitch.as_ref().and_then(|s| s.pro.as_ref()) {
        let d0 = chain.dims[0];
        let row_access = |buf: mcfuser_sim::BufId| TileAccess {
            buf,
            indices: vec![
                TileIndex {
                    var: g_batch,
                    tile: 1,
                },
                TileIndex {
                    var: g_m,
                    tile: cand.tile(LoopId(0)),
                },
                TileIndex {
                    var: VarRef::Zero,
                    tile: d0,
                },
            ],
        };
        body.insert(
            0,
            BlockStmt::RowNormStats {
                a: row_access(input_bufs[0]),
                residual: p.res.map(|(_, buf)| row_access(buf)),
                rows: cand.tile(LoopId(0)),
                cols: d0,
                mean: p.mean,
                rstd: p.rstd,
                eps: p.eps,
            },
        );
    }

    let mut program = b.finish(body);

    // The chunked tail panel is a single-use operand addressed by
    // compile-time chunk offsets, so it streams global->register and
    // never occupies shared memory (see `SmemDecl::streamed`).
    if tail_chunk.is_some() {
        program.smem[load_tiles[num_ops].0 .0].streamed = true;
    }

    // Decode-shaped GEMV chains (`m == 1`) touch every weight/KV panel
    // element exactly once — there is no row reuse to justify staging —
    // so all panels behind `A` stream global→register the same way and
    // never occupy shared memory.
    if chain.m == 1 {
        for (id, _, _) in load_tiles.iter().skip(1) {
            program.smem[id.0].streamed = true;
        }
    }

    // ---- Intra-tile policy: double buffering ------------------------------
    // Overlap requires *every* load target double buffered — the strips
    // and residual tiles of a stitch included — so the policy is
    // all-or-nothing over the program's actual load destinations.
    // Streamed tiles overlap via the cp.async pipeline and need no copy.
    let mut double_buffered = false;
    if let Some(budget) = opts.double_buffer_budget {
        let mut targets = Vec::new();
        collect_load_targets(&program.body, &mut targets);
        targets.retain(|id| !program.smem[id.0].streamed);
        targets.sort_unstable_by_key(|id| id.0);
        targets.dedup();
        let base = program.smem_bytes();
        let extra: u64 = targets
            .iter()
            .map(|id| program.smem[id.0].alloc_bytes())
            .sum();
        if !targets.is_empty() && base + extra <= budget {
            for id in &targets {
                program.smem[id.0].double_buffered = true;
            }
            double_buffered = true;
        }
    }
    let smem_bytes = program.smem_bytes();

    // Declare the partial final tiles this schedule is expected to clip
    // (non-dividing tile sizes on ragged shapes). This is the *only*
    // place clips are blessed: the static verifier rejects any access
    // that runs past a buffer extent without a mark recorded here, so a
    // program mutated after lowering — or built by hand — cannot clip
    // by accident.
    mcfuser_sim::verify::mark_expected_clips(&mut program);

    Ok(LoweredKernel {
        program,
        double_buffered,
        smem_bytes,
    })
}

/// Emission context shared by the scope walker.
struct EmitCtx<'a> {
    chain: &'a ChainSpec,
    cand: &'a Candidate,
    g_batch: VarRef,
    var_of: &'a dyn Fn(LoopId) -> VarRef,
    handle_of: &'a dyn Fn(LoopId) -> LoopHandle,
    load_tiles: &'a [(SmemId, mcfuser_sim::BufId, TensorRef)],
    accs: &'a [SmemId],
    stats: Option<(SmemId, SmemId)>,
    aux_tiles: &'a [(AuxInput, SmemId, mcfuser_sim::BufId)],
    out_buf: mcfuser_sim::BufId,
    softmax_pos: Option<usize>,
    /// One tile covers the whole softmax axis: normalize the probability
    /// tile in place (bit-identical to the reference) instead of
    /// deferring the `1/row_sum` division to the store.
    exact_softmax: bool,
    fills_at: &'a [(Option<LoopId>, BlockStmt)],
    stitch: Option<&'a StitchEmit>,
    /// `(chunk, n_chunks)` of a streamed final-stage weight panel.
    tail_chunk: Option<(u64, u64)>,
}

/// Declared tiles/buffers of a stitched prologue/epilogue.
struct StitchEmit {
    /// The raw A input buffer (read again by the tail recompute).
    a_buf: mcfuser_sim::BufId,
    pro: Option<ProEmit>,
    tail: Option<TailEmit>,
}

/// Prologue LayerNorm state: per-row stats, optional residual tile and
/// the affine gamma/beta strips (`1 × t_k`, reloaded per k-tile).
struct ProEmit {
    eps: f32,
    mean: SmemId,
    rstd: SmemId,
    res: Option<(SmemId, mcfuser_sim::BufId)>,
    gamma: (SmemId, mcfuser_sim::BufId),
    beta: (SmemId, mcfuser_sim::BufId),
}

/// Tail residual/LayerNorm state: recompute strips (`1 × t_n`, indexed by
/// the output column axis) for `PrologueOut`, the external residual
/// buffer otherwise, and the tail LayerNorm's affine strips.
struct TailEmit {
    spec: mcfuser_ir::EpilogueStitch,
    rec: Option<(SmemId, SmemId)>,
    ext_buf: Option<mcfuser_sim::BufId>,
    ln_affine: Option<((SmemId, mcfuser_sim::BufId), (SmemId, mcfuser_sim::BufId))>,
}

fn collect_load_targets(stmts: &[BlockStmt], out: &mut Vec<SmemId>) {
    for s in stmts {
        match s {
            BlockStmt::Loop { body, .. } => collect_load_targets(body, out),
            BlockStmt::Load { dst, .. } => out.push(*dst),
            _ => {}
        }
    }
}

fn tile_access(ctx: &EmitCtx<'_>, t: TensorRef, buf: mcfuser_sim::BufId) -> TileAccess {
    let ax = tensor_axes(ctx.chain, t);
    TileAccess {
        buf,
        indices: vec![
            TileIndex {
                var: ctx.g_batch,
                tile: 1,
            },
            TileIndex {
                var: (ctx.var_of)(ax[0]),
                tile: ctx.cand.tile(ax[0]),
            },
            TileIndex {
                var: (ctx.var_of)(ax[1]),
                tile: ctx.cand.tile(ax[1]),
            },
        ],
    }
}

fn emit_scope(scope: &Scope, at_loop: Option<LoopId>, ctx: &EmitCtx<'_>) -> Vec<BlockStmt> {
    let mut out = Vec::new();
    // Anchored accumulator fills first.
    for (anchor, fill) in ctx.fills_at {
        if *anchor == at_loop {
            out.push(fill.clone());
        }
    }
    for item in &scope.items {
        match item {
            ScheduleItem::Loop { axis, trips, body } => {
                out.push(BlockStmt::Loop {
                    handle: (ctx.handle_of)(*axis),
                    extent: *trips,
                    body: emit_scope(body, Some(*axis), ctx),
                });
            }
            ScheduleItem::Stmt(s) => emit_stmt(*s, ctx, &mut out),
        }
    }
    out
}

fn emit_stmt(s: Stmt, ctx: &EmitCtx<'_>, out: &mut Vec<BlockStmt>) {
    let num_ops = ctx.chain.num_ops();
    match s {
        Stmt::Load(t) => {
            if ctx.tail_chunk.is_some() && t == TensorRef::Input(num_ops) {
                // The chunked final weight panel is streamed slice by
                // slice at the GEMM site (see `Stmt::Compute`).
                return;
            }
            let (id, buf, _) = ctx
                .load_tiles
                .iter()
                .find(|(_, _, tt)| *tt == t)
                .expect("load tile declared");
            out.push(BlockStmt::Load {
                src: tile_access(ctx, t, *buf),
                dst: *id,
            });
            if t == TensorRef::Input(0) {
                if let Some(p) = ctx.stitch.and_then(|s| s.pro.as_ref()) {
                    emit_prologue_normalize(p, *id, ctx, out);
                }
            }
        }
        Stmt::Compute(op) => {
            // Producer epilogue (applied once per completed producer tile).
            if op > 0 {
                emit_epilogue(op - 1, ctx, out);
            }
            let a = if op == 0 {
                ctx.load_tiles[0].0
            } else {
                ctx.accs[op - 1]
            };
            let (b_tile, b_buf, b_ref) = ctx.load_tiles[op + 1];
            if op == num_ops - 1 {
                if let Some((chunk, n_chunks)) = ctx.tail_chunk {
                    for c in 0..n_chunks {
                        let mut src = tile_access(ctx, b_ref, b_buf);
                        let col = src.indices.len() - 1;
                        src.indices[col] = TileIndex {
                            var: VarRef::Const(c),
                            tile: chunk,
                        };
                        out.push(BlockStmt::Load { src, dst: b_tile });
                        out.push(BlockStmt::Gemm {
                            a,
                            b: b_tile,
                            acc: ctx.accs[op],
                            b_transposed: false,
                            acc_col: c * chunk,
                        });
                    }
                    return;
                }
            }
            out.push(BlockStmt::Gemm {
                a,
                b: b_tile,
                acc: ctx.accs[op],
                b_transposed: false,
                acc_col: 0,
            });
        }
        Stmt::Store => {
            // Final epilogue + softmax normalization before the store.
            emit_epilogue(num_ops - 1, ctx, out);
            if let (Some(pos), Some((_, sm))) = (ctx.softmax_pos, ctx.stats) {
                let _ = pos;
                if !ctx.exact_softmax {
                    out.push(BlockStmt::RowDiv {
                        target: ctx.accs[num_ops - 1],
                        denom: sm,
                    });
                }
            }
            if let Some(s) = ctx.stitch {
                if let Some(t) = s.tail.as_ref() {
                    emit_tail_stitch(s, t, ctx, out);
                }
            }
            out.push(BlockStmt::Store {
                dst: tile_access(ctx, TensorRef::Output, ctx.out_buf),
                src: ctx.accs[num_ops - 1],
            });
        }
    }
}

/// A rank-1 strip access indexed by one axis' tile variable.
fn strip_access(ctx: &EmitCtx<'_>, axis: LoopId, buf: mcfuser_sim::BufId) -> TileAccess {
    TileAccess {
        buf,
        indices: vec![TileIndex {
            var: (ctx.var_of)(axis),
            tile: ctx.cand.tile(axis),
        }],
    }
}

/// Stitched prologue: fold the residual into the freshly loaded raw A
/// tile, then normalize it in place with the block's row stats and the
/// current k-strip of gamma/beta, rounding to the chain's GEMM precision
/// (so the first GEMM sees exactly `quantize(LN(a + res))`, bit-identical
/// to the unstitched kernel's staged A operand).
fn emit_prologue_normalize(
    p: &ProEmit,
    a_tile: SmemId,
    ctx: &EmitCtx<'_>,
    out: &mut Vec<BlockStmt>,
) {
    if let Some((res_tile, res_buf)) = p.res {
        out.push(BlockStmt::Load {
            src: tile_access(ctx, TensorRef::Input(0), res_buf),
            dst: res_tile,
        });
        out.push(BlockStmt::AddTile {
            target: a_tile,
            other: res_tile,
        });
    }
    let k = LoopId(1);
    out.push(BlockStmt::Load {
        src: strip_access(ctx, k, p.gamma.1),
        dst: p.gamma.0,
    });
    out.push(BlockStmt::Load {
        src: strip_access(ctx, k, p.beta.1),
        dst: p.beta.0,
    });
    out.push(BlockStmt::NormalizeTile {
        target: a_tile,
        mean: p.mean,
        rstd: p.rstd,
        gamma: Some(p.gamma.0),
        beta: Some(p.beta.0),
        round: ctx.chain.dtype,
    });
}

/// Stitched tail: quantize the final accumulator to the chain precision
/// (mirroring the unfused store), add the residual — recomputed prologue
/// LayerNorm output or an external tensor, both read raw from global
/// memory — and optionally apply a full-row tail LayerNorm.
fn emit_tail_stitch(s: &StitchEmit, t: &TailEmit, ctx: &EmitCtx<'_>, out: &mut Vec<BlockStmt>) {
    let acc = ctx.accs[ctx.chain.num_ops() - 1];
    out.push(BlockStmt::Quantize {
        target: acc,
        dtype: ctx.chain.dtype,
    });
    let last_axis = LoopId(ctx.chain.num_axes() - 1);
    match t.spec.residual {
        ResidualSource::PrologueOut => {
            let p = s.pro.as_ref().expect("PrologueOut requires a prologue");
            let (g_rec, b_rec) = t.rec.expect("recompute strips declared");
            out.push(BlockStmt::Load {
                src: strip_access(ctx, last_axis, p.gamma.1),
                dst: g_rec,
            });
            out.push(BlockStmt::Load {
                src: strip_access(ctx, last_axis, p.beta.1),
                dst: b_rec,
            });
            out.push(BlockStmt::AddRecomputedNorm {
                target: acc,
                a: tile_access(ctx, TensorRef::Output, s.a_buf),
                residual: p.res.map(|(_, rb)| tile_access(ctx, TensorRef::Output, rb)),
                mean: p.mean,
                rstd: p.rstd,
                gamma: Some(g_rec),
                beta: Some(b_rec),
            });
        }
        ResidualSource::External => {
            let buf = t.ext_buf.expect("external residual buffer declared");
            out.push(BlockStmt::AddGlobal {
                target: acc,
                src: tile_access(ctx, TensorRef::Output, buf),
            });
        }
    }
    if t.spec.layer_norm {
        let (gamma, beta) = match &t.ln_affine {
            Some(((g, g_buf), (bt, b_buf))) => {
                out.push(BlockStmt::Load {
                    src: strip_access(ctx, last_axis, *g_buf),
                    dst: *g,
                });
                out.push(BlockStmt::Load {
                    src: strip_access(ctx, last_axis, *b_buf),
                    dst: *bt,
                });
                (Some(*g), Some(*bt))
            }
            None => (None, None),
        };
        out.push(BlockStmt::LayerNormTile {
            target: acc,
            gamma,
            beta,
            eps: t.spec.eps,
        });
    }
}

/// Apply stage `i`'s bias (if any) and `chain.epilogues[i]` to `acc_i`.
/// Runs exactly once per completed `acc_i` tile (the legality checks
/// guarantee a consumer never re-reads a producer tile), so even
/// non-idempotent epilogues (scale, bias, masked softmax) are safe.
fn emit_epilogue(i: usize, ctx: &EmitCtx<'_>, out: &mut Vec<BlockStmt>) {
    if ctx.chain.biases.get(i).copied().unwrap_or(false) {
        let (tile, buf) = aux_tile(ctx, AuxInput::Bias { stage: i });
        out.push(BlockStmt::Load {
            src: aux_access(ctx, AuxInput::Bias { stage: i }, buf),
            dst: tile,
        });
        out.push(BlockStmt::AddBias {
            target: ctx.accs[i],
            bias: tile,
        });
    }
    match ctx.chain.epilogues[i] {
        Epilogue::None => {}
        Epilogue::Relu => out.push(BlockStmt::Relu {
            target: ctx.accs[i],
        }),
        Epilogue::Gelu => out.push(BlockStmt::Gelu {
            target: ctx.accs[i],
        }),
        Epilogue::Scale(f) => out.push(BlockStmt::Scale {
            target: ctx.accs[i],
            factor: f,
        }),
        Epilogue::Softmax { scale } => {
            emit_online_softmax(i, scale, ctx, out);
        }
        Epilogue::MaskedSoftmax { scale } => {
            // softmax(scale·(s + mask)): add the mask tile to the
            // completed scores, then stream with the usual pre-scale.
            let (tile, buf) = aux_tile(ctx, AuxInput::Mask { stage: i });
            out.push(BlockStmt::Load {
                src: aux_access(ctx, AuxInput::Mask { stage: i }, buf),
                dst: tile,
            });
            out.push(BlockStmt::AddTile {
                target: ctx.accs[i],
                other: tile,
            });
            emit_online_softmax(i, scale, ctx, out);
        }
    }
}

/// The streaming softmax update for stage `i`'s scores.
fn emit_online_softmax(i: usize, scale: f32, ctx: &EmitCtx<'_>, out: &mut Vec<BlockStmt>) {
    let (mx, sm) = ctx.stats.expect("stats allocated");
    // Rescale every *downstream* accumulator (there is exactly one:
    // the final output, by the legality check).
    let rescale: Vec<SmemId> = ctx.accs[i + 1..].to_vec();
    out.push(BlockStmt::OnlineSoftmax {
        scores: ctx.accs[i],
        row_max: mx,
        row_sum: sm,
        rescale,
        scale,
    });
    if ctx.exact_softmax {
        // Single-tile softmax axis: the row sum is already final, so
        // divide the probabilities *before* the PV matmul. This makes
        // the fused chain bit-identical to the reference evaluation
        // (`(Σ eᵢ·vᵢ)/Z` versus `Σ (eᵢ/Z)·vᵢ` drift otherwise).
        out.push(BlockStmt::RowDiv {
            target: ctx.accs[i],
            denom: sm,
        });
    }
}

/// Shared-memory tile and global buffer of an aux input.
fn aux_tile(ctx: &EmitCtx<'_>, aux: AuxInput) -> (SmemId, mcfuser_sim::BufId) {
    ctx.aux_tiles
        .iter()
        .find(|(a, _, _)| *a == aux)
        .map(|(_, t, b)| (*t, *b))
        .expect("aux tile declared")
}

/// Tile access for an aux input: biases are rank-1 `[d]` strips indexed
/// by the stage's column axis; masks are rank-3 `[batch, m, d]` tiles.
fn aux_access(ctx: &EmitCtx<'_>, aux: AuxInput, buf: mcfuser_sim::BufId) -> TileAccess {
    match aux {
        AuxInput::Bias { stage } => {
            let col = LoopId(stage + 2);
            TileAccess {
                buf,
                indices: vec![TileIndex {
                    var: (ctx.var_of)(col),
                    tile: ctx.cand.tile(col),
                }],
            }
        }
        AuxInput::Mask { stage } => {
            let col = LoopId(stage + 2);
            TileAccess {
                buf,
                indices: vec![
                    TileIndex {
                        var: ctx.g_batch,
                        tile: 1,
                    },
                    TileIndex {
                        var: (ctx.var_of)(LoopId(0)),
                        tile: ctx.cand.tile(LoopId(0)),
                    },
                    TileIndex {
                        var: (ctx.var_of)(col),
                        tile: ctx.cand.tile(col),
                    },
                ],
            }
        }
        // Stitched aux operands are accessed through their dedicated
        // emitters, never through the generic bias/mask path.
        _ => unreachable!("stitched aux has no generic access"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TilingExpr;
    use mcfuser_sim::{execute, DeviceSpec, TensorStorage};

    fn gemm_chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 128, 96, 64, 80)
    }

    fn cand_for(chain: &ChainSpec, expr: &str, tiles: Vec<u64>) -> Candidate {
        Candidate::new(TilingExpr::parse(expr, chain).unwrap(), tiles)
    }

    /// Run a lowered kernel functionally and compare with the chain oracle.
    fn check_numerics(chain: &ChainSpec, cand: &Candidate, seed: u64) {
        let k = lower(chain, cand, &LoweringOptions::default()).unwrap();
        k.program.validate().unwrap();
        let inputs = chain.random_inputs(seed);
        let mut st = TensorStorage::for_program(&k.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&k.program, &mut st).unwrap();
        let expect = chain.reference(&inputs);
        let got = st.tensors.last().unwrap();
        let err = got.rel_l2_error(&expect);
        assert!(err < 2e-2, "rel error {err} for {}", cand.describe(chain));
    }

    #[test]
    fn nk_schedule_computes_correct_result() {
        let c = gemm_chain();
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 1);
    }

    #[test]
    fn flat_schedule_computes_correct_result() {
        let c = gemm_chain();
        check_numerics(&c, &cand_for(&c, "mn(k,h)", vec![32, 32, 32, 16]), 2);
    }

    #[test]
    fn full_dim_tiles_compute_correct_result() {
        let c = gemm_chain();
        // k tile covers K → dead k loop; exercises Fig. 5(b) hoisting.
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 64, 32, 16]), 3);
    }

    #[test]
    fn partial_tiles_compute_correct_result() {
        // Dims not divisible by tiles.
        let c = ChainSpec::gemm_chain("g", 1, 100, 72, 40, 56);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 16, 32, 16]), 4);
    }

    #[test]
    fn batched_chain_correct() {
        let c = ChainSpec::gemm_chain("g", 3, 64, 48, 32, 32);
        check_numerics(&c, &cand_for(&c, "mnkh", vec![32, 16, 16, 16]), 5);
    }

    #[test]
    fn relu_epilogue_correct() {
        let mut c = gemm_chain();
        c.epilogues[0] = Epilogue::Relu;
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 6);
    }

    #[test]
    fn attention_softmax_correct() {
        let c = ChainSpec::attention("s", 2, 64, 64, 32, 32);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 16, 32]), 7);
    }

    #[test]
    fn attention_single_n_tile_correct() {
        let c = ChainSpec::attention("s", 1, 64, 64, 32, 32);
        // n tile covers N: softmax in one shot.
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 64, 32]), 8);
    }

    #[test]
    fn kn_order_rejected_as_multi_tile() {
        let c = gemm_chain();
        let cd = cand_for(&c, "mhkn", vec![32, 16, 32, 16]);
        let err = lower(&c, &cd, &LoweringOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                LoweringError::MultiTileAccumulator { .. }
                    | LoweringError::PartialConsumption { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn double_buffering_enabled_under_budget() {
        let c = gemm_chain();
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, 16]);
        let dev = DeviceSpec::a100();
        let k = lower(&c, &cd, &LoweringOptions::for_device(&dev)).unwrap();
        assert!(k.double_buffered);
        let k2 = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        assert!(!k2.double_buffered);
        assert!(k.smem_bytes > k2.smem_bytes);
    }

    #[test]
    fn actual_smem_exceeds_estimate() {
        // Double buffering + f32 accumulators make the lowered footprint
        // larger than Eq. 1's estimate — the Fig. 10 gap.
        let c = gemm_chain();
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, 16]);
        let dev = DeviceSpec::a100();
        let k = lower(&c, &cd, &LoweringOptions::for_device(&dev)).unwrap();
        let est = crate::shmem::estimate_shmem_bytes(&c, &cd);
        assert!(k.smem_bytes > est, "{} !> {}", k.smem_bytes, est);
    }

    #[test]
    fn single_matmul_lowers_and_computes() {
        let c = ChainSpec::single_matmul("mm", 1, 96, 64, 48);
        check_numerics(&c, &cand_for(&c, "mkn", vec![32, 16, 32]), 9);
    }

    #[test]
    fn scale_epilogue_on_output() {
        let mut c = ChainSpec::single_matmul("mm", 1, 64, 64, 32);
        c.epilogues[0] = Epilogue::Scale(0.5);
        check_numerics(&c, &cand_for(&c, "mkn", vec![32, 16, 32]), 10);
    }

    #[test]
    fn gelu_epilogue_correct() {
        let mut c = gemm_chain();
        c.epilogues[0] = Epilogue::Gelu;
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 11);
    }

    #[test]
    fn biased_stages_correct() {
        let mut c = gemm_chain();
        c.biases = vec![true, true];
        assert_eq!(c.num_inputs(), 5);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 12);
    }

    #[test]
    fn bias_plus_relu_stage_correct() {
        let mut c = gemm_chain();
        c.biases = vec![true, false];
        c.epilogues[0] = Epilogue::Relu;
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 13);
    }

    #[test]
    fn masked_attention_correct() {
        let c = ChainSpec::masked_attention("ms", 2, 64, 64, 32, 32);
        assert_eq!(c.num_inputs(), 4); // Q, K, V, mask
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 16, 32]), 14);
    }

    #[test]
    fn masked_attention_with_causal_mask_is_causal() {
        let c = ChainSpec::masked_attention("ms", 2, 64, 64, 32, 32);
        let cd = cand_for(&c, "mhnk", vec![32, 32, 16, 32]);
        let k = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        let mut inputs = c.random_inputs(15);
        inputs[3] = mcfuser_ir::causal_mask(2, 64, 64);
        let mut st = TensorStorage::for_program(&k.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&k.program, &mut st).unwrap();
        let expect = c.reference(&inputs);
        let got = st.tensors.last().unwrap();
        assert!(got.rel_l2_error(&expect) < 2e-2);
        // Row 0 can only attend to position 0: its output must equal
        // V[batch, 0, :] exactly (softmax over one unmasked score = 1).
        let v = &inputs[2];
        for b in 0..2usize {
            for j in 0..32usize {
                let o = got.data[b * 64 * 32 + j];
                let vv = v.data[b * 64 * 32 + j];
                assert!((o - vv).abs() < 1e-2, "b{b} j{j}: {o} vs {vv}");
            }
        }
    }

    #[test]
    fn gemv_chain_streams_weight_panels() {
        // Decode-shaped m = 1 chain: every panel behind `A` streams
        // global→register and drops out of the smem footprint.
        let c = ChainSpec::gemm_chain("gv", 1, 1, 128, 96, 64);
        let cd = cand_for(&c, "mhnk", vec![1, 32, 32, 32]);
        let k = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        let streamed: Vec<bool> = k.program.smem.iter().map(|d| d.streamed).collect();
        assert!(!k.program.smem[0].streamed, "A tile stays staged");
        assert!(
            streamed[1] && streamed[2],
            "m = 1 weight panels stream: {streamed:?}"
        );
        assert_eq!(k.program.smem[1].alloc_bytes(), 0);
        check_numerics(&c, &cd, 23);
    }

    #[test]
    fn decode_attention_single_tile_softmax_bit_exact() {
        // One n tile covers the whole softmax axis → the probability
        // tile is normalized before the PV GEMV and the fused kernel is
        // bit-identical to the reference (f32, so no cast drift either).
        let mut c = ChainSpec::masked_attention("dec", 4, 1, 16, 32, 32);
        c.dtype = DType::F32;
        // Tiles are in axis order (m, k, n, h); n covers the full axis.
        let cd = cand_for(&c, "mnkh", vec![1, 32, 16, 32]);
        let k = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        k.program.validate().unwrap();
        let mut inputs = c.random_inputs(24);
        inputs[3] = mcfuser_ir::decode_mask(4, 16, 9);
        let mut st = TensorStorage::for_program(&k.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&k.program, &mut st).unwrap();
        let expect = c.reference(&inputs);
        let got = st.tensors.last().unwrap();
        assert_eq!(got.data, expect.data, "fused decode attention == oracle");
    }

    #[test]
    fn four_gemm_chain_with_mixed_epilogues_correct() {
        let mut c = ChainSpec::chain(
            "mlp4",
            1,
            128,
            vec![64, 96, 64, 96, 64],
            vec![
                Epilogue::Gelu,
                Epilogue::Relu,
                Epilogue::Scale(0.5),
                Epilogue::None,
            ],
        );
        c.biases = vec![true, false, false, true];
        // Deep "mqphnk" nest: reductions innermost-first, the legal
        // generalization of the 2-GEMM "mhnk".
        let mut perm = vec![crate::loops::LoopId(0)];
        perm.extend((1..c.num_axes()).rev().map(crate::loops::LoopId));
        let cd = Candidate::new(TilingExpr::deep(&perm), vec![32, 32, 32, 32, 32, 32]);
        check_numerics(&c, &cd, 16);
    }

    #[test]
    fn stitched_ffn_kernel_matches_reference() {
        let c = stitched_ffn(64, 64, 96);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 64]), 17);
    }

    #[test]
    fn stitched_partial_m_and_k_tiles_correct() {
        // m and k not divisible by their tiles: exercises the zero-padded
        // gamma/beta strips and the OOB row guards of the stats pass.
        let c = stitched_ffn(100, 72, 48);
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 16, 72]), 18);
    }

    #[test]
    fn prologue_only_chain_correct() {
        let mut c = stitched_ffn(64, 64, 96);
        c.stitch_epilogue = None;
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 19);
    }

    #[test]
    fn external_residual_tail_correct() {
        let mut c = gemm_chain();
        c.stitch_epilogue = Some(mcfuser_ir::EpilogueStitch {
            residual: mcfuser_ir::ResidualSource::External,
            layer_norm: false,
            affine: false,
            eps: 1e-5,
        });
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 16]), 20);
    }

    #[test]
    fn external_residual_with_tail_layernorm_correct() {
        let mut c = gemm_chain();
        c.stitch_epilogue = Some(mcfuser_ir::EpilogueStitch {
            residual: mcfuser_ir::ResidualSource::External,
            layer_norm: true,
            affine: true,
            eps: 1e-5,
        });
        // h = 80 → the tail LN needs t_h = 80.
        check_numerics(&c, &cand_for(&c, "mhnk", vec![32, 32, 32, 80]), 21);
    }

    #[test]
    fn tail_layernorm_partial_tile_rejected() {
        let c = stitched_ffn(64, 64, 96);
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, 32]);
        let err = lower(&c, &cd, &LoweringOptions::default()).unwrap_err();
        assert!(
            matches!(err, LoweringError::StitchUnsupported(_)),
            "{err:?}"
        );
    }

    #[test]
    fn stitched_kernel_bit_identical_to_unstitched_plus_glue() {
        // The stitched kernel must reproduce exactly what the unstitched
        // twin + f32 reference glue (residual adds and LayerNorms around
        // the kernel) computes: same quantization points, same stats
        // accumulation order → bitwise-equal outputs.
        let (m, d, f) = (64usize, 64usize, 96u64);
        let c = stitched_ffn(m as u64, d as u64, f);
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, d as u64]);
        let inputs = c.random_inputs(22);
        let k = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        k.program.validate().unwrap();
        let mut st = TensorStorage::for_program(&k.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&k.program, &mut st).unwrap();
        let got = st.tensors.last().unwrap().clone();

        // Host glue around the unstitched twin. Aux order of the stitched
        // chain: b0, b1, p_res, p_gamma, p_beta, t_gamma, t_beta.
        let (a, res) = (&inputs[0], &inputs[5]);
        let (g1, b1) = (&inputs[6], &inputs[7]);
        let (g2, b2) = (&inputs[8], &inputs[9]);
        let mut ln1 = a.data.clone();
        for (v, r) in ln1.iter_mut().zip(&res.data) {
            *v += *r;
        }
        mcfuser_ir::layer_norm_rows(&mut ln1, m, d, 1e-5, Some(&g1.data), Some(&b1.data));

        let u = c.unstitched();
        let ku = lower(&u, &cd, &LoweringOptions::default()).unwrap();
        let mut stu = TensorStorage::for_program(&ku.program);
        stu.tensors[0] = mcfuser_sim::HostTensor::from_vec(&u.input_shapes()[0], ln1.clone());
        stu.tensors[1..u.num_inputs()].clone_from_slice(&inputs[1..u.num_inputs()]);
        execute(&ku.program, &mut stu).unwrap();
        let out_u = stu.tensors.last().unwrap();

        let mut fin = out_u.data.clone();
        for (v, l) in fin.iter_mut().zip(&ln1) {
            *v += *l;
        }
        mcfuser_ir::layer_norm_rows(&mut fin, m, d, 1e-5, Some(&g2.data), Some(&b2.data));
        assert_eq!(got.data, fin);
    }

    fn stitched_ffn(m: u64, d: u64, f: u64) -> ChainSpec {
        // gemm_chain args are (m, n, k, h) → dims [d, f, d].
        let mut c = ChainSpec::gemm_chain("ffn", 1, m, f, d, d);
        c.biases = vec![true, true];
        c.epilogues[0] = Epilogue::Gelu;
        c.prologue = Some(mcfuser_ir::PrologueSpec {
            residual: true,
            affine: true,
            a_half: false,
            eps: 1e-5,
        });
        c.stitch_epilogue = Some(mcfuser_ir::EpilogueStitch {
            residual: mcfuser_ir::ResidualSource::PrologueOut,
            layer_norm: true,
            affine: true,
            eps: 1e-5,
        });
        c
    }

    #[test]
    fn program_grid_matches_candidate() {
        let c = gemm_chain();
        let cd = cand_for(&c, "mhnk", vec![32, 32, 32, 16]);
        let k = lower(&c, &cd, &LoweringOptions::default()).unwrap();
        assert_eq!(k.program.grid, cd.grid(&c));
        assert_eq!(k.program.num_blocks(), cd.num_blocks(&c));
    }
}
