//! # mcfuser-tile — the tiling-expression schedule language
//!
//! The middle layer of the MCFuser reproduction: everything between the
//! chain IR and the virtual kernels the simulator runs.
//!
//! * [`loops`] — cross-tile axes, roles (output-spatial / intermediate /
//!   reduction), and the multiples-of-16 tile-size domains of §III-A;
//! * [`expr`] — tiling expressions: deep (loop permutations) and flat
//!   (sequential scopes) arrangements, with printer/parser and exhaustive
//!   enumeration (the paper's 24 + 2 structures for a 2-GEMM chain);
//! * [`stmt`] — Load/Compute/Store primitives with related-axis analysis;
//! * [`candidate`] — expression + tile sizes, Rule-1 grid binding and the
//!   per-block sub-expression;
//! * [`dag`] — the schedule DAG (scope / order edges), dead-loop
//!   elimination, rightmost-related-loop statement placement and
//!   accumulator-instance analysis (§III-B, Figs. 4–6);
//! * [`shmem`] — Eq. 1 shared-memory estimation (Rule 4);
//! * [`lower`](mod@lower) — lowering to [`mcfuser_sim::TileProgram`]
//!   with the intra-tile policies the real system delegates to Triton.

#![warn(missing_docs)]

pub mod candidate;
pub mod dag;
pub mod expr;
pub mod loops;
pub mod lower;
pub mod shmem;
pub mod stmt;

pub use candidate::Candidate;
pub use dag::{
    accumulator_instances, dag_view, place, place_into, render_tree, DagView, Placement,
    PlacementError, ScheduleItem, ScheduleTree, Scope,
};
pub use expr::{enumerate_all, enumerate_deep, enumerate_flat, TilingExpr};
pub use loops::{
    axes_of, axis_role, block_axes, grid_axes, tile_option_count, tile_options, AxisInfo, AxisRole,
    LoopId,
};
pub use lower::{lower, LoweredKernel, LoweringError, LoweringOptions};
pub use shmem::{
    chain_tensors, estimate_shmem_bytes, estimate_shmem_bytes_for_tiles, rule4_fits, RULE4_MARGIN,
};
pub use stmt::{
    all_statements, compute_column_axis, compute_output, compute_reduction_axis, order_deps,
    related_axes, tensor_axes, tile_shape, Stmt, TensorRef,
};
