//! Schedule-DAG analysis and statement placement (§III-B, Figs. 4–5).
//!
//! Loops and primitive statements form a DAG with two edge kinds:
//!
//! * **scope-dependent** (loop → statement): the loop variable indexes the
//!   statement's tiles, so the statement must execute within that loop;
//! * **order-dependent** (statement → statement): dataflow order, with no
//!   scope implication.
//!
//! Placement then follows the paper's optimization: every statement sits
//! at its *rightmost related loop*. Extent-1 loops are deleted from the
//! DAG first (they index a constant 0), which releases their scope edges
//! and lets statements hoist outward — the k = 1 example of Fig. 5(b)
//! where `LA`'s trip count drops by a factor of `h·n`.
//!
//! The resulting [`ScheduleTree`] is what the lowering walks, and the
//! per-statement trip counts it exposes are exactly the `Π l_j` factors of
//! the performance model's Eqs. (3)–(4).

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;

use crate::candidate::Candidate;
use crate::expr::TilingExpr;
use crate::loops::LoopId;
use crate::stmt::{all_statements, compute_output, order_deps, related_axes, tensor_axes, Stmt};

/// One item of a schedule scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleItem {
    /// A tile loop with its body.
    Loop {
        /// Tiled axis.
        axis: LoopId,
        /// Trip count (`⌈extent/tile⌉`).
        trips: u64,
        /// Statements and nested loops inside.
        body: Scope,
    },
    /// A placed primitive statement.
    Stmt(Stmt),
}

/// An ordered list of schedule items sharing one scope.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scope {
    /// Items in execution order.
    pub items: Vec<ScheduleItem>,
}

/// The per-block schedule tree: loops with placed statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleTree {
    /// Root scope (block entry).
    pub root: Scope,
}

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A statement's related loops do not lie on one root-to-leaf path, so
    /// no single placement point exists (cannot happen for the chain
    /// statement sets this crate generates; guards hand-built expressions).
    RelatedLoopsDiverge(Stmt),
    /// Statement ordering within a scope is cyclic.
    CyclicOrder,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::RelatedLoopsDiverge(s) => {
                write!(f, "related loops of {:?} are not nested on one path", s)
            }
            PlacementError::CyclicOrder => write!(f, "cyclic statement order"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Internal: flattened loop nest node.
#[derive(Debug, Clone)]
struct LoopNode {
    axis: LoopId,
    trips: u64,
    /// Index of parent loop in the nodes vec (None = root).
    parent: Option<usize>,
}

/// Collect loop nodes from an expression with their parent links.
fn collect_loops(
    expr: &TilingExpr,
    chain: &ChainSpec,
    cand: &Candidate,
    parent: Option<usize>,
    nodes: &mut Vec<LoopNode>,
) {
    match expr {
        TilingExpr::Loop { axis, body } => {
            let idx = nodes.len();
            nodes.push(LoopNode {
                axis: *axis,
                trips: cand.trips(chain, *axis),
                parent,
            });
            collect_loops(body, chain, cand, Some(idx), nodes);
        }
        TilingExpr::Seq(items) => {
            for it in items {
                collect_loops(it, chain, cand, parent, nodes);
            }
        }
        TilingExpr::Unit => {}
    }
}

/// Ancestor chain (including self) of a loop node, root first.
fn path_of(nodes: &[LoopNode], mut idx: usize) -> Vec<usize> {
    let mut p = vec![idx];
    while let Some(par) = nodes[idx].parent {
        p.push(par);
        idx = par;
    }
    p.reverse();
    p
}

/// Result of placing all statements of a chain into a candidate's
/// per-block expression.
#[derive(Debug, Clone)]
pub struct Placement {
    /// For each statement: enclosing live block-loop axes, root first.
    pub paths: Vec<(Stmt, Vec<LoopId>)>,
    /// The executable schedule tree.
    pub tree: ScheduleTree,
}

impl Placement {
    /// Per-block trip count of a statement: product of enclosing
    /// block-loop trips (the Eq. 3 `Π l_j` without the grid factor).
    pub fn block_trips(&self, chain: &ChainSpec, cand: &Candidate, stmt: Stmt) -> u64 {
        self.paths
            .iter()
            .find(|(s, _)| *s == stmt)
            .map(|(_, path)| path.iter().map(|&a| cand.trips(chain, a)).product())
            .unwrap_or(1)
    }
}

/// Place all chain statements into the candidate's live per-block
/// expression (grid axes bound, dead loops eliminated).
pub fn place(chain: &ChainSpec, cand: &Candidate) -> Result<Placement, PlacementError> {
    let expr = cand.live_block_expr(chain);
    place_into(chain, cand, &expr)
}

/// Place into an explicit expression (used by tests and by the Chimera
/// baseline, which skips dead-loop elimination).
pub fn place_into(
    chain: &ChainSpec,
    cand: &Candidate,
    expr: &TilingExpr,
) -> Result<Placement, PlacementError> {
    let mut nodes = Vec::new();
    collect_loops(expr, chain, cand, None, &mut nodes);

    let stmts = all_statements(chain);
    let mut target: Vec<Option<usize>> = Vec::with_capacity(stmts.len());
    let mut paths: Vec<(Stmt, Vec<LoopId>)> = Vec::with_capacity(stmts.len());

    for &s in &stmts {
        let related = related_axes(chain, s);
        // All live loops whose axis is related.
        let mut hits: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| related.contains(&n.axis))
            .map(|(i, _)| i)
            .collect();
        // Verify they lie on a single path; deepest = the one whose path
        // contains all others.
        hits.sort_by_key(|&i| path_of(&nodes, i).len());
        if let Some(&deepest) = hits.last() {
            let dp = path_of(&nodes, deepest);
            for &h in &hits {
                if !dp.contains(&h) {
                    return Err(PlacementError::RelatedLoopsDiverge(s));
                }
            }
        }
        let mut tgt = hits.last().copied();

        // Correctness override for the Store: it must sit outside every
        // accumulation loop of the output (the output is only complete
        // after all reduction-family loops finish).
        if s == Stmt::Store {
            tgt = hoist_outside_accumulation(chain, &nodes, tgt);
        }
        let path_axes = match tgt {
            Some(t) => path_of(&nodes, t).iter().map(|&i| nodes[i].axis).collect(),
            None => Vec::new(),
        };
        target.push(tgt);
        paths.push((s, path_axes));
    }

    let tree = build_tree(expr, chain, cand, &nodes, &stmts, &target)?;
    Ok(Placement { paths, tree })
}

/// Walk `tgt` upward until no enclosing loop is an accumulation axis
/// (anything other than output-spatial axes accumulates into the output
/// transitively).
fn hoist_outside_accumulation(
    chain: &ChainSpec,
    nodes: &[LoopNode],
    tgt: Option<usize>,
) -> Option<usize> {
    use crate::loops::{axis_role, AxisRole};
    let mut cur = tgt?;
    loop {
        // Does any strict ancestor (or self… store can't be inside a
        // reduction loop at all) accumulate?
        let path = path_of(nodes, cur);
        let bad = path
            .iter()
            .rev()
            .find(|&&i| axis_role(chain, nodes[i].axis) != AxisRole::OutputSpatial);
        match bad {
            None => return Some(cur),
            Some(&b) => match nodes[b].parent {
                Some(p) => cur = p,
                None => return None,
            },
        }
    }
}

/// Build the ordered schedule tree: loops in expression order, statements
/// inserted into their target scopes, each scope topologically ordered by
/// the chain's order dependencies.
fn build_tree(
    expr: &TilingExpr,
    chain: &ChainSpec,
    cand: &Candidate,
    nodes: &[LoopNode],
    stmts: &[Stmt],
    target: &[Option<usize>],
) -> Result<ScheduleTree, PlacementError> {
    // Map: loop node index -> statements placed directly inside it.
    let mut by_loop: Vec<Vec<Stmt>> = vec![Vec::new(); nodes.len()];
    let mut at_root: Vec<Stmt> = Vec::new();
    for (i, &s) in stmts.iter().enumerate() {
        match target[i] {
            Some(t) => by_loop[t].push(s),
            None => at_root.push(s),
        }
    }
    let root = build_scope(expr, chain, cand, nodes, &by_loop, &at_root, 0)?;
    Ok(ScheduleTree { root })
}

/// Number of loop nodes in a subtree (pre-order index arithmetic).
fn subtree_loops(expr: &TilingExpr) -> usize {
    match expr {
        TilingExpr::Loop { body, .. } => 1 + subtree_loops(body),
        TilingExpr::Seq(list) => list.iter().map(subtree_loops).sum(),
        TilingExpr::Unit => 0,
    }
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn build_scope(
    expr: &TilingExpr,
    chain: &ChainSpec,
    cand: &Candidate,
    nodes: &[LoopNode],
    by_loop: &[Vec<Stmt>],
    direct: &[Stmt],
    base: usize,
) -> Result<Scope, PlacementError> {
    // Children loops at this scope level (in expression order) with their
    // pre-order node indices (the same numbering `collect_loops` used).
    let mut items: Vec<ScheduleItem> = Vec::new();
    let mut child_exprs: Vec<(&TilingExpr, usize)> = Vec::new();
    collect_scope_children(expr, base, &mut child_exprs);

    for (sub, node_idx) in child_exprs {
        if let TilingExpr::Loop { body, .. } = sub {
            let inner = build_scope(
                body,
                chain,
                cand,
                nodes,
                by_loop,
                &by_loop[node_idx],
                node_idx + 1,
            )?;
            items.push(ScheduleItem::Loop {
                axis: nodes[node_idx].axis,
                trips: nodes[node_idx].trips,
                body: inner,
            });
        }
    }
    for &s in direct {
        items.push(ScheduleItem::Stmt(s));
    }
    order_scope(&mut items, chain)?;
    Ok(Scope { items })
}

/// Collect the top-level Loop subtrees of a scope along with their node
/// indices (pre-order, starting at `base`).
fn collect_scope_children<'e>(
    expr: &'e TilingExpr,
    base: usize,
    out: &mut Vec<(&'e TilingExpr, usize)>,
) {
    match expr {
        TilingExpr::Loop { .. } => {
            out.push((expr, base));
        }
        TilingExpr::Seq(list) => {
            let mut b = base;
            for it in list {
                collect_scope_children(it, b, out);
                b += subtree_loops(it);
            }
        }
        TilingExpr::Unit => {}
    }
}

/// Statements contained (transitively) in a schedule item.
fn contained_stmts(item: &ScheduleItem, out: &mut Vec<Stmt>) {
    match item {
        ScheduleItem::Stmt(s) => out.push(*s),
        ScheduleItem::Loop { body, .. } => {
            for it in &body.items {
                contained_stmts(it, out);
            }
        }
    }
}

/// Stable topological order of a scope's items under the chain's order
/// dependencies, lifted to items.
fn order_scope(items: &mut Vec<ScheduleItem>, chain: &ChainSpec) -> Result<(), PlacementError> {
    let deps = order_deps(chain);
    let n = items.len();
    let contained: Vec<Vec<Stmt>> = items
        .iter()
        .map(|it| {
            let mut v = Vec::new();
            contained_stmts(it, &mut v);
            v
        })
        .collect();
    // edge i -> j if some stmt in i must precede some stmt in j.
    let mut adj = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let edge = deps
                .iter()
                .any(|(a, b)| contained[i].contains(a) && contained[j].contains(b));
            if edge {
                adj[i].push(j);
                indeg[j] += 1;
            }
        }
    }
    // Kahn with original-index priority for stability.
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        ready.sort_unstable();
        let i = ready.remove(0);
        order.push(i);
        for &j in &adj[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    if order.len() != n {
        return Err(PlacementError::CyclicOrder);
    }
    let mut taken: Vec<Option<ScheduleItem>> = items.drain(..).map(Some).collect();
    for i in order {
        items.push(taken[i].take().unwrap());
    }
    Ok(())
}

/// Shared-memory tile instances the accumulator of compute block `op`
/// needs: >1 when a spatial loop of its output tensor is nested inside
/// its reduction loop (the Fig. 6(b) situation Rule 2 prunes).
pub fn accumulator_instances(chain: &ChainSpec, cand: &Candidate, op: usize) -> u64 {
    let expr = cand.live_block_expr(chain);
    let mut nodes = Vec::new();
    collect_loops(&expr, chain, cand, None, &mut nodes);
    let red_axis = crate::stmt::compute_reduction_axis(chain, op);
    let out_axes = tensor_axes(chain, compute_output(chain, op));
    let Some(red_idx) = nodes.iter().position(|n| n.axis == red_axis) else {
        return 1;
    };
    let mut inst = 1u64;
    for (i, n) in nodes.iter().enumerate() {
        if out_axes.contains(&n.axis) {
            // Is the reduction loop an ancestor of this spatial loop?
            if path_of(&nodes, i).contains(&red_idx) && i != red_idx {
                inst *= n.trips;
            }
        }
    }
    inst
}

/// The DAG view of Fig. 5: loop and statement nodes with scope-dependent
/// and order-dependent edges (for introspection, docs and tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagView {
    /// Live loop axes in nest order.
    pub loops: Vec<LoopId>,
    /// All statements.
    pub stmts: Vec<Stmt>,
    /// Scope-dependent edges: (loop axis, statement).
    pub scope_edges: Vec<(LoopId, Stmt)>,
    /// Order-dependent edges.
    pub order_edges: Vec<(Stmt, Stmt)>,
}

/// Build the DAG view of a candidate's live block expression.
pub fn dag_view(chain: &ChainSpec, cand: &Candidate) -> DagView {
    let expr = cand.live_block_expr(chain);
    let loops = expr.axes();
    let stmts = all_statements(chain);
    let mut scope_edges = Vec::new();
    for &s in &stmts {
        for &a in &related_axes(chain, s) {
            if loops.contains(&a) {
                scope_edges.push((a, s));
            }
        }
    }
    DagView {
        loops,
        stmts,
        scope_edges,
        order_edges: order_deps(chain),
    }
}

/// Pretty-print a schedule tree as pseudo-code (the Fig. 4 listings).
pub fn render_tree(tree: &ScheduleTree, chain: &ChainSpec) -> String {
    let mut out = String::new();
    render_scope(&tree.root, chain, 0, &mut out);
    out
}

fn render_scope(scope: &Scope, chain: &ChainSpec, indent: usize, out: &mut String) {
    for item in &scope.items {
        for _ in 0..indent {
            out.push_str("  ");
        }
        match item {
            ScheduleItem::Loop { axis, trips, body } => {
                out.push_str(&format!(
                    "for {} in range({}):\n",
                    chain.axis_name(axis.0),
                    trips
                ));
                render_scope(body, chain, indent + 1, out);
            }
            ScheduleItem::Stmt(s) => {
                out.push_str(&s.short_name(chain));
                out.push('\n');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TilingExpr;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512)
    }

    fn cand(expr: &str, tiles: Vec<u64>) -> Candidate {
        Candidate::new(TilingExpr::parse(expr, &chain()).unwrap(), tiles)
    }

    /// Place into the FULL expression (no rule-1 binding) to reproduce the
    /// paper's Fig. 4(a) layout for `mhnk`.
    #[test]
    fn fig4a_full_mhnk_placement() {
        let c = chain();
        let cd = cand("mhnk", vec![128, 64, 64, 128]);
        let p = place_into(&c, &cd, &cd.expr).unwrap();
        let txt = render_tree(&p.tree, &c);
        // LA, LB, CC inside k; LD, CE inside n; SE inside h after n.
        let lines: Vec<&str> = txt.lines().collect();
        let idx = |pat: &str| lines.iter().position(|l| l.trim() == pat).unwrap();
        let depth = |i: usize| lines[i].len() - lines[i].trim_start().len();
        assert_eq!(depth(idx("LA")), depth(idx("CC")));
        assert!(depth(idx("CC")) > depth(idx("CE")));
        assert!(depth(idx("CE")) > depth(idx("SE")));
        assert!(idx("SE") > idx("CE"));
    }

    /// Fig. 5(b): with k = 1 the k loop dies and LA hoists to the top.
    #[test]
    fn fig5b_dead_k_hoists_la() {
        let c = chain();
        // k tile = 512 covers K → k loop extent 1 → eliminated.
        let cd = cand("mhnk", vec![128, 512, 64, 128]);
        let p = place_into(&c, &cd, &cd.expr.without_axes(&[])).unwrap();
        // With the full expr (k still present) LA is under k:
        let full_trips = p.block_trips(&c, &cd, Stmt::Load(crate::stmt::TensorRef::Input(0)));
        // After dead-loop elimination LA depends only on m:
        let live = place_into(&c, &cd, &cd.live_block_expr(&c)); // rule-1 bound too
        let live = live.unwrap();
        let live_trips = live.block_trips(&c, &cd, Stmt::Load(crate::stmt::TensorRef::Input(0)));
        assert!(live_trips < full_trips, "{live_trips} !< {full_trips}");
        assert_eq!(live_trips, 1, "LA loaded once per block");
    }

    #[test]
    fn nk_subexpr_places_second_gemm_at_n() {
        let c = chain();
        let cd = cand("mhnk", vec![128, 64, 64, 128]);
        let p = place(&c, &cd).unwrap();
        let txt = render_tree(&p.tree, &c);
        // Per-block: for n { for k { LA LB CC } LD CE } SE.
        let expect_contains = ["for n", "for k", "LA", "LB", "CC", "LD", "CE", "SE"];
        for pat in expect_contains {
            assert!(txt.contains(pat), "missing {pat} in:\n{txt}");
        }
        // SE at root (store after all reduction loops).
        let lines: Vec<&str> = txt.lines().collect();
        let se = lines.iter().find(|l| l.trim() == "SE").unwrap();
        assert_eq!(se.len() - se.trim_start().len(), 0);
    }

    #[test]
    fn store_trips_is_one_per_block_after_rule1() {
        let c = chain();
        let cd = cand("mhnk", vec![128, 64, 64, 128]);
        let p = place(&c, &cd).unwrap();
        assert_eq!(p.block_trips(&c, &cd, Stmt::Store), 1);
    }

    #[test]
    fn lb_trips_count_both_loops() {
        let c = chain();
        let cd = cand("mhnk", vec![128, 64, 64, 128]);
        let p = place(&c, &cd).unwrap();
        // LB related {k,n}: inside both → trips = 8 * 16.
        let lb = Stmt::Load(crate::stmt::TensorRef::Input(1));
        assert_eq!(p.block_trips(&c, &cd, lb), 8 * 16);
    }

    #[test]
    fn accumulator_single_instance_for_nk() {
        let c = chain();
        let cd = cand("mhnk", vec![128, 64, 64, 128]);
        assert_eq!(accumulator_instances(&c, &cd, 0), 1);
        assert_eq!(accumulator_instances(&c, &cd, 1), 1);
    }

    #[test]
    fn accumulator_blows_up_for_kn() {
        // mhkn: per-block "kn" — C's spatial loop n inside reduction k.
        let c = chain();
        let cd = cand("mhkn", vec![128, 64, 64, 128]);
        assert_eq!(accumulator_instances(&c, &cd, 0), 16); // n trips
    }

    #[test]
    fn flat_expression_placement() {
        let c = chain();
        let cd = cand("mn(k,h)", vec![128, 64, 64, 128]);
        let p = place(&c, &cd).unwrap();
        let txt = render_tree(&p.tree, &c);
        // per-block n(k): for n { for k { LA LB CC } LD CE } SE
        assert!(txt.contains("for n"), "{txt}");
        assert!(txt.contains("for k"), "{txt}");
        // Flat candidates keep single-instance accumulators after Rule 1.
        assert_eq!(accumulator_instances(&c, &cd, 0), 1);
        assert_eq!(accumulator_instances(&c, &cd, 1), 1);
    }

    #[test]
    fn dag_view_edges() {
        let c = chain();
        let cd = cand("mhnk", vec![128, 64, 64, 128]);
        let v = dag_view(&c, &cd);
        assert_eq!(v.loops.len(), 2); // n, k live per block
        assert_eq!(v.order_edges.len(), 5);
        // LA scope-depends on k only (m,h are grid-bound).
        let la = Stmt::Load(crate::stmt::TensorRef::Input(0));
        let la_edges: Vec<_> = v.scope_edges.iter().filter(|(_, s)| *s == la).collect();
        assert_eq!(la_edges.len(), 1);
        assert_eq!(la_edges[0].0, LoopId(1));
    }

    #[test]
    fn three_op_chain_places() {
        let c3 = ChainSpec {
            name: "c3".into(),
            batch: 1,
            m: 256,
            dims: vec![64, 128, 128, 64],
            epilogues: vec![Default::default(); 3],
            biases: vec![false; 3],
            dtype: mcfuser_sim::DType::F16,
            prologue: None,
            stitch_epilogue: None,
        };
        // Deep expr over m,k,n,h,p — use identity order.
        let perm: Vec<LoopId> = (0..5).map(LoopId).collect();
        let cd = Candidate::new(TilingExpr::deep(&perm), vec![64, 64, 64, 64, 64]);
        let p = place(&c3, &cd).unwrap();
        let txt = render_tree(&p.tree, &c3);
        assert!(txt.contains("CC"));
        assert!(txt.contains("SG")); // output tensor letter for 3 ops
    }
}
