//! A schedule candidate: tiling expression + tile-size vector.
//!
//! "Any candidate in the search space can be delineated by the structure
//! of loops and the values of l⃗" (§III-A). The candidate also knows how
//! Rule 1 maps it onto the GPU: output-spatial axes (and the batch) bind
//! to `blockIdx`; the rest become per-block loops.

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;

use crate::expr::TilingExpr;
use crate::loops::{grid_axes, LoopId};

/// A fully specified schedule candidate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Candidate {
    /// The loop arrangement.
    pub expr: TilingExpr,
    /// Tile size per axis (indexed by `LoopId`).
    pub tiles: Vec<u64>,
}

impl Candidate {
    /// Construct, checking that every axis has a tile size.
    pub fn new(expr: TilingExpr, tiles: Vec<u64>) -> Candidate {
        Candidate { expr, tiles }
    }

    /// Tile size of an axis.
    #[inline]
    pub fn tile(&self, axis: LoopId) -> u64 {
        self.tiles[axis.0]
    }

    /// Trip count of an axis: `⌈extent / tile⌉`.
    #[inline]
    pub fn trips(&self, chain: &ChainSpec, axis: LoopId) -> u64 {
        chain.axis_extent(axis.0).div_ceil(self.tile(axis).max(1))
    }

    /// Per-thread-block sub-tiling expression (Rule 1): the expression
    /// with all grid-bound axes removed.
    pub fn block_expr(&self, chain: &ChainSpec) -> TilingExpr {
        self.expr.without_axes(&grid_axes(chain))
    }

    /// The per-block expression with extent-1 loops also removed — the
    /// dead-loop elimination of §III-B (Fig. 5(b)).
    pub fn live_block_expr(&self, chain: &ChainSpec) -> TilingExpr {
        let dead: Vec<LoopId> = (0..chain.num_axes())
            .map(LoopId)
            .filter(|&a| self.trips(chain, a) == 1)
            .collect();
        self.block_expr(chain).without_axes(&dead)
    }

    /// Launch-grid extents `[batch, m-tiles, d_L-tiles…]` (one entry per
    /// output-spatial axis, batch first).
    pub fn grid(&self, chain: &ChainSpec) -> Vec<u64> {
        let mut g = vec![chain.batch];
        for a in grid_axes(chain) {
            g.push(self.trips(chain, a));
        }
        g
    }

    /// Number of thread blocks (the `N_block` of Eq. 5).
    pub fn num_blocks(&self, chain: &ChainSpec) -> u64 {
        self.grid(chain).iter().product()
    }

    /// Fraction of wasted (padded) work: `Π ceil(dim/t)·t / Π dim − 1`
    /// (Rule 3 prunes candidates with excessive padding).
    pub fn padding_ratio(&self, chain: &ChainSpec) -> f64 {
        let mut padded = 1.0f64;
        let mut exact = 1.0f64;
        for a in (0..chain.num_axes()).map(LoopId) {
            let d = chain.axis_extent(a.0) as f64;
            let t = self.tile(a) as f64;
            padded *= (d / t).ceil() * t;
            exact *= d;
        }
        padded / exact - 1.0
    }

    /// True if any axis needs padding (tile does not divide extent).
    pub fn needs_padding(&self, chain: &ChainSpec) -> bool {
        (0..chain.num_axes()).any(|a| {
            let d = chain.axis_extent(a);
            let t = self.tiles[a];
            t == 0 || !d.is_multiple_of(t)
        })
    }

    /// Canonical structural key of the candidate's per-block program used
    /// by Rule-1 deduplication: two *expressions* are equivalent iff their
    /// per-block sub-expressions (with the same tile assignment) coincide.
    pub fn dedup_key(&self, chain: &ChainSpec) -> String {
        self.block_expr(chain).display(chain)
    }

    /// Human-readable form: `mhnk[m=128,k=64,n=64,h=64]`.
    pub fn describe(&self, chain: &ChainSpec) -> String {
        let mut s = self.expr.display(chain);
        s.push('[');
        for a in 0..chain.num_axes() {
            if a > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}={}", chain.axis_name(a), self.tiles[a]));
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512)
    }

    fn cand(expr: &str, tiles: Vec<u64>) -> Candidate {
        let c = chain();
        Candidate::new(TilingExpr::parse(expr, &c).unwrap(), tiles)
    }

    #[test]
    fn trips_and_grid() {
        let c = chain();
        // tiles m=128, k=64, n=64, h=128.
        let cd = cand("mhnk", vec![128, 64, 64, 128]);
        assert_eq!(cd.trips(&c, LoopId(0)), 8); // m
        assert_eq!(cd.trips(&c, LoopId(1)), 8); // k
        assert_eq!(cd.trips(&c, LoopId(2)), 16); // n
        assert_eq!(cd.trips(&c, LoopId(3)), 4); // h
        assert_eq!(cd.grid(&c), vec![1, 8, 4]);
        assert_eq!(cd.num_blocks(&c), 32);
    }

    #[test]
    fn rule1_equivalence_of_mhnk_and_mnkh() {
        // The paper's example: both yield sub-tiling expression "nk".
        let c = chain();
        let a = cand("mhnk", vec![128, 64, 64, 128]);
        let b = cand("mnkh", vec![128, 64, 64, 128]);
        assert_eq!(a.dedup_key(&c), "nk");
        assert_eq!(a.dedup_key(&c), b.dedup_key(&c));
    }

    #[test]
    fn dead_loop_elimination_when_tile_covers_dim() {
        let c = chain();
        // k tile = 512 covers the whole K dim → the k loop dies and the
        // per-block expression collapses to "n" (Fig. 5(b)).
        let cd = cand("mhnk", vec![128, 512, 64, 128]);
        assert_eq!(cd.block_expr(&c).display(&c), "nk");
        assert_eq!(cd.live_block_expr(&c).display(&c), "n");
    }

    #[test]
    fn padding_ratio_zero_for_divisors() {
        let c = chain();
        let cd = cand("mnkh", vec![128, 64, 64, 128]);
        assert!(!cd.needs_padding(&c));
        assert_eq!(cd.padding_ratio(&c), 0.0);
    }

    #[test]
    fn padding_ratio_positive_otherwise() {
        let c = chain();
        // 1024 % 96 != 0: padded.
        let cd = cand("mnkh", vec![96, 64, 64, 128]);
        assert!(cd.needs_padding(&c));
        assert!(cd.padding_ratio(&c) > 0.0);
    }

    #[test]
    fn describe_is_readable() {
        let c = chain();
        let cd = cand("mn(k,h)", vec![128, 64, 64, 128]);
        assert_eq!(cd.describe(&c), "mn(k,h)[m=128,k=64,n=64,h=128]");
    }

    #[test]
    fn flat_block_expr() {
        let c = chain();
        let cd = cand("mn(k,h)", vec![128, 64, 64, 128]);
        // Binding m,h leaves n(k).
        assert_eq!(cd.block_expr(&c).display(&c), "nk");
    }
}
