//! Cross-tile loop axes of an MBCI chain and their roles.
//!
//! A chain with `L` matmuls has `1 + (L+1)` cross-tile axes: the shared
//! row axis `m` and one axis per `dᵢ` (`k, n, h, …` in the paper's
//! nomenclature), plus an implicit batch axis that is always bound to the
//! launch grid. Every tiling expression is an arrangement of these axes;
//! every candidate also carries one tile size per axis.

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;

/// Index of a cross-tile loop axis: `0` = `m`, `1 + i` = `dims[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopId(pub usize);

/// Role of an axis with respect to the chain *output* — this determines
/// grid binding (Rule 1) and Rule-2 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AxisRole {
    /// Indexes the chain output (`m` and `d_L`): always bindable to
    /// `blockIdx` because iterations are independent.
    OutputSpatial,
    /// An intermediate dim `d₁ … d_{L-1}`: spatial for its producer,
    /// reduction for its consumer.
    Intermediate,
    /// The pure reduction dim `d₀`.
    Reduction,
}

/// Static description of a chain's loop axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisInfo {
    /// Paper-style display name (`m`, `k`, `n`, `h`, …).
    pub name: &'static str,
    /// Dimension extent in elements.
    pub extent: u64,
    /// Role w.r.t. the chain output.
    pub role: AxisRole,
}

/// Compute axis metadata for a chain.
pub fn axes_of(chain: &ChainSpec) -> Vec<AxisInfo> {
    let n = chain.num_axes();
    (0..n)
        .map(|i| AxisInfo {
            name: chain.axis_name(i),
            extent: chain.axis_extent(i),
            role: axis_role(chain, LoopId(i)),
        })
        .collect()
}

/// Role of one axis.
pub fn axis_role(chain: &ChainSpec, id: LoopId) -> AxisRole {
    if id.0 == 0 || id.0 == chain.num_axes() - 1 {
        AxisRole::OutputSpatial
    } else if id.0 == 1 {
        AxisRole::Reduction
    } else {
        AxisRole::Intermediate
    }
}

/// Axes of the chain that Rule 1 binds to `blockIdx` (output-spatial).
pub fn grid_axes(chain: &ChainSpec) -> Vec<LoopId> {
    (0..chain.num_axes())
        .map(LoopId)
        .filter(|&id| axis_role(chain, id) == AxisRole::OutputSpatial)
        .collect()
}

/// Axes that remain as per-block loops after Rule-1 binding.
pub fn block_axes(chain: &ChainSpec) -> Vec<LoopId> {
    (0..chain.num_axes())
        .map(LoopId)
        .filter(|&id| axis_role(chain, id) != AxisRole::OutputSpatial)
        .collect()
}

/// Enumerate the legal tile sizes for an axis: all multiples of 16 up to
/// (and including, via the ceiling) the dimension size (§III-A: "tensor
/// cores require a minimum tile size of 16"). Dimensions smaller than 16
/// get a single full-size tile.
pub fn tile_options(extent: u64) -> Vec<u64> {
    if extent <= 16 {
        return vec![extent.max(1)];
    }
    let max_tile = extent.div_ceil(16) * 16; // allow one padded full tile
    (1..)
        .map(|i| i * 16)
        .take_while(|&t| t <= max_tile)
        .collect()
}

/// Number of tile-size options for an axis (used to *count* the search
/// space without materializing it — the paper's `⌈dim/16⌉` factors).
pub fn tile_option_count(extent: u64) -> u64 {
    if extent <= 16 {
        1
    } else {
        extent.div_ceil(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512)
    }

    #[test]
    fn axis_roles_of_2gemm_chain() {
        let c = chain();
        // axes: m, k, n, h
        assert_eq!(axis_role(&c, LoopId(0)), AxisRole::OutputSpatial); // m
        assert_eq!(axis_role(&c, LoopId(1)), AxisRole::Reduction); // k
        assert_eq!(axis_role(&c, LoopId(2)), AxisRole::Intermediate); // n
        assert_eq!(axis_role(&c, LoopId(3)), AxisRole::OutputSpatial); // h
    }

    #[test]
    fn grid_and_block_axes_partition() {
        let c = chain();
        let g = grid_axes(&c);
        let b = block_axes(&c);
        assert_eq!(g, vec![LoopId(0), LoopId(3)]);
        assert_eq!(b, vec![LoopId(1), LoopId(2)]);
        assert_eq!(g.len() + b.len(), c.num_axes());
    }

    #[test]
    fn axes_of_exposes_names_and_extents() {
        let c = chain();
        let ax = axes_of(&c);
        assert_eq!(ax.len(), 4);
        assert_eq!(ax[0].name, "m");
        assert_eq!(ax[0].extent, 1024);
        assert_eq!(ax[1].name, "k");
        assert_eq!(ax[1].extent, 512);
        assert_eq!(ax[2].name, "n");
        assert_eq!(ax[3].name, "h");
    }

    #[test]
    fn tile_options_multiples_of_16() {
        let opts = tile_options(1024);
        assert_eq!(opts.len(), 64);
        assert_eq!(opts[0], 16);
        assert_eq!(*opts.last().unwrap(), 1024);
        assert!(opts.iter().all(|t| t % 16 == 0));
    }

    #[test]
    fn tile_options_non_divisible_dim_allows_padded_tile() {
        // 100: multiples of 16 up to 112 (the padded single tile).
        let opts = tile_options(100);
        assert_eq!(*opts.last().unwrap(), 112);
        assert_eq!(opts.len(), 7);
    }

    #[test]
    fn small_dims_single_tile() {
        assert_eq!(tile_options(8), vec![8]);
        assert_eq!(tile_options(16), vec![16]);
        assert_eq!(tile_option_count(8), 1);
    }

    #[test]
    fn option_count_matches_paper_formula() {
        // The paper counts ⌈1024/16⌉² × ⌈512/16⌉² tile-size candidates.
        assert_eq!(tile_option_count(1024), 64);
        assert_eq!(tile_option_count(512), 32);
        assert_eq!(tile_options(1024).len() as u64, tile_option_count(1024));
        assert_eq!(tile_options(512).len() as u64, tile_option_count(512));
    }

    #[test]
    fn longer_chain_roles() {
        // 3-op chain: axes m, k, n, h, p — n and h intermediates.
        let c = ChainSpec {
            name: "c3".into(),
            batch: 1,
            m: 256,
            dims: vec![64, 128, 128, 64],
            epilogues: vec![Default::default(); 3],
            biases: vec![false; 3],
            dtype: mcfuser_sim::DType::F16,
            prologue: None,
            stitch_epilogue: None,
        };
        assert_eq!(axis_role(&c, LoopId(2)), AxisRole::Intermediate);
        assert_eq!(axis_role(&c, LoopId(3)), AxisRole::Intermediate);
        assert_eq!(axis_role(&c, LoopId(4)), AxisRole::OutputSpatial);
        assert_eq!(grid_axes(&c), vec![LoopId(0), LoopId(4)]);
    }
}
