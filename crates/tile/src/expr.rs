//! Tiling expressions — the paper's schedule notation (§III-A).
//!
//! A tiling expression arranges the cross-tile loops of a chain. Two loop
//! relations exist:
//!
//! * **Nested** — `l₂` runs inside `l₁` (written by juxtaposition:
//!   `mhnk` means `m(h(n(k)))`);
//! * **Sequential** — `(l₁, l₂)` run one after the other in the same
//!   scope (written with parentheses: `mn(k,h)`).
//!
//! *Deep tilings* are pure permutations; *flat tilings* contain at least
//! one sequential group. For the 2-GEMM chain this yields the paper's
//! 4! = 24 deep plus 2 flat expressions (Fig. 3).

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;

use crate::loops::{axis_role, AxisRole, LoopId};

/// A tiling expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TilingExpr {
    /// A loop over tiles of one axis surrounding a body.
    Loop {
        /// The tiled axis.
        axis: LoopId,
        /// The enclosed sub-expression.
        body: Box<TilingExpr>,
    },
    /// Sub-expressions executed sequentially in the same scope.
    Seq(Vec<TilingExpr>),
    /// The innermost point (the computation blocks live here conceptually).
    Unit,
}

impl TilingExpr {
    /// Build a deep (pure-nest) expression from a permutation of axes.
    pub fn deep(perm: &[LoopId]) -> TilingExpr {
        let mut e = TilingExpr::Unit;
        for &axis in perm.iter().rev() {
            e = TilingExpr::Loop {
                axis,
                body: Box::new(e),
            };
        }
        e
    }

    /// All axes mentioned, in pre-order.
    pub fn axes(&self) -> Vec<LoopId> {
        let mut v = Vec::new();
        self.collect_axes(&mut v);
        v
    }

    fn collect_axes(&self, out: &mut Vec<LoopId>) {
        match self {
            TilingExpr::Loop { axis, body } => {
                out.push(*axis);
                body.collect_axes(out);
            }
            TilingExpr::Seq(items) => {
                for it in items {
                    it.collect_axes(out);
                }
            }
            TilingExpr::Unit => {}
        }
    }

    /// True if the expression is a pure nest (deep tiling).
    pub fn is_deep(&self) -> bool {
        match self {
            TilingExpr::Loop { body, .. } => body.is_deep(),
            TilingExpr::Seq(_) => false,
            TilingExpr::Unit => true,
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        match self {
            TilingExpr::Loop { body, .. } => 1 + body.depth(),
            TilingExpr::Seq(items) => items.iter().map(TilingExpr::depth).max().unwrap_or(0),
            TilingExpr::Unit => 0,
        }
    }

    /// Remove the given axes from the expression (used by Rule 1 to derive
    /// the per-thread-block sub-tiling expression after binding the
    /// output-spatial loops to `blockIdx`, and by the DAG optimization to
    /// delete extent-1 loops). Degenerate `Seq`s are flattened.
    pub fn without_axes(&self, drop: &[LoopId]) -> TilingExpr {
        match self {
            TilingExpr::Loop { axis, body } => {
                let inner = body.without_axes(drop);
                if drop.contains(axis) {
                    inner
                } else {
                    TilingExpr::Loop {
                        axis: *axis,
                        body: Box::new(inner),
                    }
                }
            }
            TilingExpr::Seq(items) => {
                let kept: Vec<TilingExpr> = items
                    .iter()
                    .map(|it| it.without_axes(drop))
                    .filter(|it| *it != TilingExpr::Unit)
                    .collect();
                match kept.len() {
                    0 => TilingExpr::Unit,
                    1 => kept.into_iter().next().unwrap(),
                    _ => TilingExpr::Seq(kept),
                }
            }
            TilingExpr::Unit => TilingExpr::Unit,
        }
    }

    /// Pretty-print with the chain's axis names (`mhnk`, `mn(k,h)`).
    pub fn display(&self, chain: &ChainSpec) -> String {
        let mut s = String::new();
        self.fmt_into(chain, &mut s);
        if s.is_empty() {
            s.push('·');
        }
        s
    }

    fn fmt_into(&self, chain: &ChainSpec, out: &mut String) {
        match self {
            TilingExpr::Loop { axis, body } => {
                out.push_str(chain.axis_name(axis.0));
                body.fmt_into(chain, out);
            }
            TilingExpr::Seq(items) => {
                out.push('(');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.fmt_into(chain, out);
                }
                out.push(')');
            }
            TilingExpr::Unit => {}
        }
    }

    /// Parse an expression printed by [`TilingExpr::display`].
    pub fn parse(s: &str, chain: &ChainSpec) -> Option<TilingExpr> {
        let name_of = |c: char| -> Option<LoopId> {
            (0..chain.num_axes()).map(LoopId).find(|id| {
                let n = chain.axis_name(id.0);
                n.len() == 1 && n.starts_with(c)
            })
        };
        let chars: Vec<char> = s.chars().collect();
        let (expr, used) = parse_seq_body(&chars, 0, &name_of)?;
        if used == chars.len() {
            Some(expr)
        } else {
            None
        }
    }
}

/// Parse a run of loops possibly ending in a parenthesized Seq; returns
/// (expr, chars consumed).
fn parse_seq_body(
    chars: &[char],
    mut i: usize,
    name_of: &dyn Fn(char) -> Option<LoopId>,
) -> Option<(TilingExpr, usize)> {
    let mut prefix: Vec<LoopId> = Vec::new();
    let mut tail = TilingExpr::Unit;
    while i < chars.len() {
        let c = chars[i];
        if c == '(' {
            // Parse comma-separated items until ')'.
            i += 1;
            let mut items = Vec::new();
            loop {
                let (item, ni) = parse_seq_body(chars, i, name_of)?;
                items.push(item);
                i = ni;
                match chars.get(i) {
                    Some(',') => i += 1,
                    Some(')') => {
                        i += 1;
                        break;
                    }
                    _ => return None,
                }
            }
            tail = TilingExpr::Seq(items);
            break;
        } else if c == ',' || c == ')' {
            break;
        } else {
            prefix.push(name_of(c)?);
            i += 1;
        }
    }
    let mut e = tail;
    for &axis in prefix.iter().rev() {
        e = TilingExpr::Loop {
            axis,
            body: Box::new(e),
        };
    }
    Some((e, i))
}

/// Enumerate all deep tilings of a chain: every permutation of the
/// non-batch axes (4! = 24 for the 2-GEMM chain).
pub fn enumerate_deep(chain: &ChainSpec) -> Vec<TilingExpr> {
    let axes: Vec<LoopId> = (0..chain.num_axes()).map(LoopId).collect();
    let mut out = Vec::new();
    permute(&axes, &mut Vec::new(), &mut out);
    out.into_iter().map(|p| TilingExpr::deep(&p)).collect()
}

fn permute(rest: &[LoopId], acc: &mut Vec<LoopId>, out: &mut Vec<Vec<LoopId>>) {
    if rest.is_empty() {
        out.push(acc.clone());
        return;
    }
    for (i, &x) in rest.iter().enumerate() {
        let mut rem: Vec<LoopId> = rest.to_vec();
        rem.remove(i);
        acc.push(x);
        permute(&rem, acc, out);
        acc.pop();
    }
}

/// Enumerate the flat tilings of a chain: permutations of
/// `{m} ∪ intermediates` as the shared outer nest, with the first op's
/// reduction loop and the last op's column loop as a sequential pair
/// inside (the paper's `mn(k,h)` / `nm(k,h)` for the 2-GEMM chain).
pub fn enumerate_flat(chain: &ChainSpec) -> Vec<TilingExpr> {
    let n_axes = chain.num_axes();
    let outer: Vec<LoopId> = (0..n_axes)
        .map(LoopId)
        .filter(|&id| id.0 == 0 || axis_role(chain, id) == AxisRole::Intermediate)
        .collect();
    let first_red = LoopId(1);
    let last_col = LoopId(n_axes - 1);
    let seq = TilingExpr::Seq(vec![
        TilingExpr::Loop {
            axis: first_red,
            body: Box::new(TilingExpr::Unit),
        },
        TilingExpr::Loop {
            axis: last_col,
            body: Box::new(TilingExpr::Unit),
        },
    ]);
    let mut perms = Vec::new();
    permute(&outer, &mut Vec::new(), &mut perms);
    perms
        .into_iter()
        .map(|p| {
            let mut e = seq.clone();
            for &axis in p.iter().rev() {
                e = TilingExpr::Loop {
                    axis,
                    body: Box::new(e),
                };
            }
            e
        })
        .collect()
}

/// All tiling expressions of a chain (deep ∪ flat) — the paper's complete
/// structural search space.
pub fn enumerate_all(chain: &ChainSpec) -> Vec<TilingExpr> {
    let mut v = enumerate_deep(chain);
    v.extend(enumerate_flat(chain));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512)
    }

    #[test]
    fn deep_count_is_factorial() {
        let c = chain();
        assert_eq!(enumerate_deep(&c).len(), 24);
    }

    #[test]
    fn flat_count_matches_paper() {
        let c = chain();
        let flat = enumerate_flat(&c);
        assert_eq!(flat.len(), 2);
        let shown: Vec<String> = flat.iter().map(|e| e.display(&c)).collect();
        assert!(shown.contains(&"mn(k,h)".to_string()), "{shown:?}");
        assert!(shown.contains(&"nm(k,h)".to_string()), "{shown:?}");
    }

    #[test]
    fn total_is_26() {
        assert_eq!(enumerate_all(&chain()).len(), 26);
    }

    #[test]
    fn display_deep() {
        let c = chain();
        let e = TilingExpr::deep(&[LoopId(0), LoopId(3), LoopId(2), LoopId(1)]);
        assert_eq!(e.display(&c), "mhnk");
    }

    #[test]
    fn parse_roundtrip_all() {
        let c = chain();
        for e in enumerate_all(&c) {
            let s = e.display(&c);
            let p = TilingExpr::parse(&s, &c).unwrap_or_else(|| panic!("parse {s}"));
            assert_eq!(p, e, "{s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        let c = chain();
        assert!(TilingExpr::parse("mzx", &c).is_none());
        assert!(TilingExpr::parse("m(k", &c).is_none());
        assert!(TilingExpr::parse("mnkh)", &c).is_none());
    }

    #[test]
    fn without_axes_removes_grid_loops() {
        let c = chain();
        let e = TilingExpr::parse("mhnk", &c).unwrap();
        // Rule 1: bind m (0) and h (3) → per-block sub-expression "nk".
        let sub = e.without_axes(&[LoopId(0), LoopId(3)]);
        assert_eq!(sub.display(&c), "nk");
    }

    #[test]
    fn without_axes_flattens_degenerate_seq() {
        let c = chain();
        let e = TilingExpr::parse("mn(k,h)", &c).unwrap();
        // Dropping h leaves a single-item Seq that must collapse to "nk"
        // after also dropping m.
        let sub = e.without_axes(&[LoopId(0), LoopId(3)]);
        assert_eq!(sub.display(&c), "nk");
    }

    #[test]
    fn deep_detection() {
        let c = chain();
        assert!(TilingExpr::parse("mnkh", &c).unwrap().is_deep());
        assert!(!TilingExpr::parse("mn(k,h)", &c).unwrap().is_deep());
    }

    #[test]
    fn depth_of_deep_is_axis_count() {
        let c = chain();
        assert_eq!(TilingExpr::parse("mnkh", &c).unwrap().depth(), 4);
        // Flat: m, n shared + max(k, h) = 3.
        assert_eq!(TilingExpr::parse("mn(k,h)", &c).unwrap().depth(), 3);
    }

    #[test]
    fn axes_preorder() {
        let c = chain();
        let e = TilingExpr::parse("mn(k,h)", &c).unwrap();
        assert_eq!(e.axes(), vec![LoopId(0), LoopId(2), LoopId(1), LoopId(3)]);
    }

    #[test]
    fn three_op_chain_counts() {
        // axes m,k,n,h,p: deep = 5! = 120; flat = |{m,n,h}|! = 6.
        let c = ChainSpec {
            name: "c3".into(),
            batch: 1,
            m: 256,
            dims: vec![64, 128, 128, 64],
            epilogues: vec![Default::default(); 3],
            biases: vec![false; 3],
            dtype: mcfuser_sim::DType::F16,
            prologue: None,
            stitch_epilogue: None,
        };
        assert_eq!(enumerate_deep(&c).len(), 120);
        assert_eq!(enumerate_flat(&c).len(), 6);
    }
}
