//! Primitive statements of a fused tensor program (§III-B).
//!
//! The paper extends tiling expressions with three primitives — **Load**,
//! **Compute**, **Store** — each attached to a tensor of the chain. A
//! statement's *related axes* are the cross-tile loops that index its
//! tensor tiles; they drive both placement (a statement belongs at its
//! rightmost related loop) and the traffic/flop accounting of the
//! performance model (Eqs. 3–4).

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;

use crate::loops::LoopId;

/// A tensor of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorRef {
    /// Input `i`: `0` = `A`, `1 + j` = weight `W_j`.
    Input(usize),
    /// Intermediate `T_i` (output of compute block `i`, `i < L-1`).
    Intermediate(usize),
    /// The chain output `T_{L-1}`.
    Output,
}

/// A primitive statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stmt {
    /// Global→shared copy of one tile of a tensor (`L` in the paper).
    Load(TensorRef),
    /// Compute block `i` (`C` in the paper): one tile-GEMM accumulation.
    Compute(usize),
    /// Shared→global copy of the output tile (`S` in the paper).
    Store,
}

impl Stmt {
    /// Paper-style short name, e.g. `LA`, `LB`, `CC`, `SE` for the 2-GEMM
    /// chain (tensors lettered `A, B, C, D, E` in order).
    pub fn short_name(&self, chain: &ChainSpec) -> String {
        let letter = |t: TensorRef| -> char {
            // Order: A, W0, T0, W1, T1, ... — matches the paper's A,B,C,D,E.
            let idx = match t {
                TensorRef::Input(0) => 0,
                TensorRef::Input(j) => 2 * j - 1,
                TensorRef::Intermediate(i) => 2 * (i + 1),
                TensorRef::Output => 2 * chain.num_ops(),
            };
            (b'A' + idx as u8) as char
        };
        match self {
            Stmt::Load(t) => format!("L{}", letter(*t)),
            Stmt::Compute(i) => format!(
                "C{}",
                letter(if *i + 1 == chain.num_ops() {
                    TensorRef::Output
                } else {
                    TensorRef::Intermediate(*i)
                })
            ),
            Stmt::Store => format!("S{}", letter(TensorRef::Output)),
        }
    }
}

/// The axes that index a tensor's tiles (batch excluded — it is always
/// grid-bound).
pub fn tensor_axes(chain: &ChainSpec, t: TensorRef) -> Vec<LoopId> {
    let last = chain.num_axes() - 1;
    match t {
        // A[b, m, d0] → {m, k}
        TensorRef::Input(0) => vec![LoopId(0), LoopId(1)],
        // W_j[b, d_j, d_{j+1}] → {axis(1+j), axis(2+j)}
        TensorRef::Input(j) => vec![LoopId(j), LoopId(j + 1)],
        // T_i[b, m, d_{i+1}] → {m, axis(2+i)}
        TensorRef::Intermediate(i) => vec![LoopId(0), LoopId(i + 2)],
        TensorRef::Output => vec![LoopId(0), LoopId(last)],
    }
}

/// Related axes of a statement (union of its operand tensors' axes for
/// computes; the tensor's own axes for memory statements).
pub fn related_axes(chain: &ChainSpec, s: Stmt) -> Vec<LoopId> {
    match s {
        Stmt::Load(t) => tensor_axes(chain, t),
        Stmt::Store => tensor_axes(chain, TensorRef::Output),
        // Compute i touches m, d_i (reduction) and d_{i+1} (columns).
        Stmt::Compute(i) => vec![LoopId(0), LoopId(i + 1), LoopId(i + 2)],
    }
}

/// The tensor a compute block accumulates into.
pub fn compute_output(chain: &ChainSpec, i: usize) -> TensorRef {
    if i + 1 == chain.num_ops() {
        TensorRef::Output
    } else {
        TensorRef::Intermediate(i)
    }
}

/// Reduction axis of compute block `i` (the axis summed over): `d_i`.
pub fn compute_reduction_axis(_chain: &ChainSpec, i: usize) -> LoopId {
    LoopId(i + 1)
}

/// Column (spatial) axis of compute block `i`'s output: `d_{i+1}`.
pub fn compute_column_axis(_chain: &ChainSpec, i: usize) -> LoopId {
    LoopId(i + 2)
}

/// All statements of a fused chain in canonical order:
/// `LA, LW₀, C₀, LW₁, C₁, …, S`.
pub fn all_statements(chain: &ChainSpec) -> Vec<Stmt> {
    let mut v = Vec::with_capacity(2 * chain.num_ops() + 2);
    v.push(Stmt::Load(TensorRef::Input(0)));
    for i in 0..chain.num_ops() {
        v.push(Stmt::Load(TensorRef::Input(i + 1)));
        v.push(Stmt::Compute(i));
    }
    v.push(Stmt::Store);
    v
}

/// Order dependencies between statements (the DAG's order-dependent
/// edges, Fig. 5): loads feed their computes, computes chain, the last
/// compute feeds the store.
pub fn order_deps(chain: &ChainSpec) -> Vec<(Stmt, Stmt)> {
    let mut deps = Vec::new();
    deps.push((Stmt::Load(TensorRef::Input(0)), Stmt::Compute(0)));
    for i in 0..chain.num_ops() {
        deps.push((Stmt::Load(TensorRef::Input(i + 1)), Stmt::Compute(i)));
        if i > 0 {
            deps.push((Stmt::Compute(i - 1), Stmt::Compute(i)));
        }
    }
    deps.push((Stmt::Compute(chain.num_ops() - 1), Stmt::Store));
    deps
}

/// Tile footprint (rows, cols) of a tensor under a per-axis tile
/// assignment (`tiles[axis]`).
pub fn tile_shape(chain: &ChainSpec, t: TensorRef, tiles: &[u64]) -> (u64, u64) {
    let ax = tensor_axes(chain, t);
    (tiles[ax[0].0], tiles[ax[1].0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128)
    }

    #[test]
    fn paper_letters_for_2gemm() {
        let c = chain();
        // A×B=C, C×D=E: statements LA, LB, CC, LD, CE, SE.
        let names: Vec<String> = all_statements(&c)
            .iter()
            .map(|s| s.short_name(&c))
            .collect();
        assert_eq!(names, vec!["LA", "LB", "CC", "LD", "CE", "SE"]);
    }

    #[test]
    fn related_axes_match_paper() {
        let c = chain();
        // LA: {m,k}; LB: {k,n}; CC: {m,k,n}; LD: {n,h}; CE: {m,n,h}; SE: {m,h}.
        assert_eq!(
            related_axes(&c, Stmt::Load(TensorRef::Input(0))),
            vec![LoopId(0), LoopId(1)]
        );
        assert_eq!(
            related_axes(&c, Stmt::Load(TensorRef::Input(1))),
            vec![LoopId(1), LoopId(2)]
        );
        assert_eq!(
            related_axes(&c, Stmt::Compute(0)),
            vec![LoopId(0), LoopId(1), LoopId(2)]
        );
        assert_eq!(
            related_axes(&c, Stmt::Load(TensorRef::Input(2))),
            vec![LoopId(2), LoopId(3)]
        );
        assert_eq!(
            related_axes(&c, Stmt::Compute(1)),
            vec![LoopId(0), LoopId(2), LoopId(3)]
        );
        assert_eq!(related_axes(&c, Stmt::Store), vec![LoopId(0), LoopId(3)]);
    }

    #[test]
    fn order_deps_form_the_fig5_dag() {
        let c = chain();
        let deps = order_deps(&c);
        assert!(deps.contains(&(Stmt::Load(TensorRef::Input(0)), Stmt::Compute(0))));
        assert!(deps.contains(&(Stmt::Compute(0), Stmt::Compute(1))));
        assert!(deps.contains(&(Stmt::Compute(1), Stmt::Store)));
        assert_eq!(deps.len(), 5);
    }

    #[test]
    fn compute_axes_helpers() {
        let c = chain();
        assert_eq!(compute_reduction_axis(&c, 0), LoopId(1)); // k
        assert_eq!(compute_column_axis(&c, 0), LoopId(2)); // n
        assert_eq!(compute_reduction_axis(&c, 1), LoopId(2)); // n
        assert_eq!(compute_column_axis(&c, 1), LoopId(3)); // h
        assert_eq!(compute_output(&c, 0), TensorRef::Intermediate(0));
        assert_eq!(compute_output(&c, 1), TensorRef::Output);
    }

    #[test]
    fn tile_shapes() {
        let c = chain();
        let tiles = vec![64, 32, 128, 16]; // m,k,n,h
        assert_eq!(tile_shape(&c, TensorRef::Input(0), &tiles), (64, 32)); // A
        assert_eq!(tile_shape(&c, TensorRef::Input(1), &tiles), (32, 128)); // B
        assert_eq!(
            tile_shape(&c, TensorRef::Intermediate(0), &tiles),
            (64, 128)
        ); // C
        assert_eq!(tile_shape(&c, TensorRef::Input(2), &tiles), (128, 16)); // D
        assert_eq!(tile_shape(&c, TensorRef::Output, &tiles), (64, 16)); // E
    }

    #[test]
    fn single_matmul_statements() {
        let c = ChainSpec::single_matmul("mm", 1, 128, 64, 32);
        let names: Vec<String> = all_statements(&c)
            .iter()
            .map(|s| s.short_name(&c))
            .collect();
        assert_eq!(names, vec!["LA", "LB", "CC", "SC"]);
    }
}
