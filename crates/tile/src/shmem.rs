//! Shared-memory estimation — Equation (1) of the paper.
//!
//! `Shm_estm = Σ_{Xi} (T_Li × T_Lj)`: the sum of the tile footprints of
//! every tensor touched by the fused kernel. The estimate is deliberately
//! coarse — it ignores double buffering, bank-conflict padding and the
//! wider accumulator precision the lowering actually allocates — which is
//! why the paper validates it against measured usage (Fig. 10) and prunes
//! with a 1.2× error margin (Rule 4).

use mcfuser_ir::ChainSpec;

use crate::candidate::Candidate;
use crate::stmt::{tensor_axes, TensorRef};

/// All tensors of a chain: `A`, weights, intermediates, output.
pub fn chain_tensors(chain: &ChainSpec) -> Vec<TensorRef> {
    let mut v = vec![TensorRef::Input(0)];
    for i in 0..chain.num_ops() {
        v.push(TensorRef::Input(i + 1));
        if i + 1 < chain.num_ops() {
            v.push(TensorRef::Intermediate(i));
        }
    }
    v.push(TensorRef::Output);
    v
}

/// The Rule-4 pruning margin over `Shm_max`: candidates are kept while
/// the Eq. 1 estimate stays within `RULE4_MARGIN × Shm_max` (the margin
/// absorbs estimation error, §III-C). Single source of truth — the lazy
/// candidate space's survivor index uses the same constant.
pub const RULE4_MARGIN: f64 = 1.2;

/// Column chunk width of a streamed final-stage weight panel.
///
/// A tail LayerNorm pins the last axis to the full row (`tile = d_L`),
/// which would force the final weight tile to hold a whole `t_k × d_L`
/// panel. The lowering streams that panel in column slices of this width
/// — the largest divisor of `d_L` that is ≤ 128 — so only one slice is
/// resident at a time. Constant per chain, so the Rule-4 estimate stays
/// monotone in every tile size.
pub fn tail_panel_chunk(d_last: u64) -> u64 {
    if d_last <= 128 {
        return d_last;
    }
    (1..=128u64)
        .rev()
        .find(|c| d_last.is_multiple_of(*c))
        .unwrap_or(1)
}

/// Eq. (1) from a bare tile vector (`tiles[a]` = tile size of axis `a`).
/// The estimate is expression-independent, so pruning can evaluate it
/// without constructing a `Candidate`.
pub fn estimate_shmem_bytes_for_tiles(chain: &ChainSpec, tiles: &[u64]) -> u64 {
    let esz = chain.dtype.size_bytes();
    let mut sum: u64 = chain_tensors(chain)
        .iter()
        .map(|&t| {
            let ax = tensor_axes(chain, t);
            tiles[ax[0].0] * tiles[ax[1].0] * esz
        })
        .sum();
    // A stitched prologue holds the A tile raw in f32 and, with a fused
    // residual, a second A-shaped tile next to it. Strips and per-row
    // stats stay below the estimate's resolution (Eq. 1 is coarse).
    if let Some(p) = chain.prologue {
        let a_tile = tiles[0] * tiles[1];
        sum += a_tile * (4 - esz);
        if p.residual {
            sum += a_tile * 4;
        }
    }
    // A tail LayerNorm's full-row weight panel is streamed in column
    // chunks straight into registers (see `tail_panel_chunk` and
    // `SmemDecl::streamed`): it occupies no shared memory at all.
    if let Some(t) = chain.stitch_epilogue {
        let last = chain.num_axes() - 1;
        let d_l = *chain.dims.last().expect("chain has dims");
        if t.layer_norm && tiles[last] == d_l {
            let chunk = tail_panel_chunk(d_l);
            if chunk < d_l {
                let ax = tensor_axes(chain, TensorRef::Input(chain.num_ops()));
                sum -= tiles[ax[0].0] * d_l * esz;
            }
        }
    }
    sum
}

/// Eq. (1): estimated shared-memory bytes per thread block for a
/// candidate (tile footprints at the chain's storage precision).
pub fn estimate_shmem_bytes(chain: &ChainSpec, cand: &Candidate) -> u64 {
    estimate_shmem_bytes_for_tiles(chain, &cand.tiles)
}

/// The paper's Rule-4 test: prune candidates whose *estimate* exceeds
/// [`RULE4_MARGIN`]` × Shm_max`.
pub fn rule4_fits(chain: &ChainSpec, cand: &Candidate, shm_max: u64) -> bool {
    estimate_shmem_bytes(chain, cand) as f64 <= RULE4_MARGIN * shm_max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TilingExpr;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512)
    }

    fn cand(tiles: Vec<u64>) -> Candidate {
        let c = chain();
        Candidate::new(TilingExpr::parse("mhnk", &c).unwrap(), tiles)
    }

    #[test]
    fn tensor_census_for_2gemm() {
        // A, B(W0), C(T0), D(W1), E(out) — five tensors like the paper.
        assert_eq!(chain_tensors(&chain()).len(), 5);
    }

    #[test]
    fn estimate_matches_hand_computation() {
        let c = chain();
        // tiles m=64, k=32, n=64, h=16, f16 (2 B):
        // A:64×32 + B:32×64 + C:64×64 + D:64×16 + E:64×16 = 2048+2048+4096+1024+1024
        let cd = cand(vec![64, 32, 64, 16]);
        let est = estimate_shmem_bytes(&c, &cd);
        assert_eq!(est, 2 * (2048 + 2048 + 4096 + 1024 + 1024));
    }

    #[test]
    fn rule4_prunes_giant_tiles() {
        let c = chain();
        let shm_max = 164 * 1024;
        assert!(rule4_fits(&c, &cand(vec![64, 32, 64, 16]), shm_max));
        // 512×512 C tile alone is 512 KiB in f16 — way over.
        assert!(!rule4_fits(&c, &cand(vec![512, 32, 512, 16]), shm_max));
    }

    #[test]
    fn rule4_margin_admits_slight_overshoot() {
        let c = chain();
        let cd = cand(vec![64, 32, 64, 16]);
        let est = estimate_shmem_bytes(&c, &cd);
        // A budget exactly est/1.2 still admits the candidate.
        let budget = (est as f64 / 1.2).ceil() as u64;
        assert!(rule4_fits(&c, &cd, budget));
        assert!(!rule4_fits(&c, &cd, budget / 2));
    }
}
