//! Shared-memory estimation — Equation (1) of the paper.
//!
//! `Shm_estm = Σ_{Xi} (T_Li × T_Lj)`: the sum of the tile footprints of
//! every tensor touched by the fused kernel. The estimate is deliberately
//! coarse — it ignores double buffering, bank-conflict padding and the
//! wider accumulator precision the lowering actually allocates — which is
//! why the paper validates it against measured usage (Fig. 10) and prunes
//! with a 1.2× error margin (Rule 4).

use mcfuser_ir::ChainSpec;

use crate::candidate::Candidate;
use crate::stmt::{tensor_axes, TensorRef};

/// All tensors of a chain: `A`, weights, intermediates, output.
pub fn chain_tensors(chain: &ChainSpec) -> Vec<TensorRef> {
    let mut v = vec![TensorRef::Input(0)];
    for i in 0..chain.num_ops() {
        v.push(TensorRef::Input(i + 1));
        if i + 1 < chain.num_ops() {
            v.push(TensorRef::Intermediate(i));
        }
    }
    v.push(TensorRef::Output);
    v
}

/// The Rule-4 pruning margin over `Shm_max`: candidates are kept while
/// the Eq. 1 estimate stays within `RULE4_MARGIN × Shm_max` (the margin
/// absorbs estimation error, §III-C). Single source of truth — the lazy
/// candidate space's survivor index uses the same constant.
pub const RULE4_MARGIN: f64 = 1.2;

/// Eq. (1) from a bare tile vector (`tiles[a]` = tile size of axis `a`).
/// The estimate is expression-independent, so pruning can evaluate it
/// without constructing a `Candidate`.
pub fn estimate_shmem_bytes_for_tiles(chain: &ChainSpec, tiles: &[u64]) -> u64 {
    let esz = chain.dtype.size_bytes();
    chain_tensors(chain)
        .iter()
        .map(|&t| {
            let ax = tensor_axes(chain, t);
            tiles[ax[0].0] * tiles[ax[1].0] * esz
        })
        .sum()
}

/// Eq. (1): estimated shared-memory bytes per thread block for a
/// candidate (tile footprints at the chain's storage precision).
pub fn estimate_shmem_bytes(chain: &ChainSpec, cand: &Candidate) -> u64 {
    estimate_shmem_bytes_for_tiles(chain, &cand.tiles)
}

/// The paper's Rule-4 test: prune candidates whose *estimate* exceeds
/// [`RULE4_MARGIN`]` × Shm_max`.
pub fn rule4_fits(chain: &ChainSpec, cand: &Candidate, shm_max: u64) -> bool {
    estimate_shmem_bytes(chain, cand) as f64 <= RULE4_MARGIN * shm_max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TilingExpr;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512)
    }

    fn cand(tiles: Vec<u64>) -> Candidate {
        let c = chain();
        Candidate::new(TilingExpr::parse("mhnk", &c).unwrap(), tiles)
    }

    #[test]
    fn tensor_census_for_2gemm() {
        // A, B(W0), C(T0), D(W1), E(out) — five tensors like the paper.
        assert_eq!(chain_tensors(&chain()).len(), 5);
    }

    #[test]
    fn estimate_matches_hand_computation() {
        let c = chain();
        // tiles m=64, k=32, n=64, h=16, f16 (2 B):
        // A:64×32 + B:32×64 + C:64×64 + D:64×16 + E:64×16 = 2048+2048+4096+1024+1024
        let cd = cand(vec![64, 32, 64, 16]);
        let est = estimate_shmem_bytes(&c, &cd);
        assert_eq!(est, 2 * (2048 + 2048 + 4096 + 1024 + 1024));
    }

    #[test]
    fn rule4_prunes_giant_tiles() {
        let c = chain();
        let shm_max = 164 * 1024;
        assert!(rule4_fits(&c, &cand(vec![64, 32, 64, 16]), shm_max));
        // 512×512 C tile alone is 512 KiB in f16 — way over.
        assert!(!rule4_fits(&c, &cand(vec![512, 32, 512, 16]), shm_max));
    }

    #[test]
    fn rule4_margin_admits_slight_overshoot() {
        let c = chain();
        let cd = cand(vec![64, 32, 64, 16]);
        let est = estimate_shmem_bytes(&c, &cd);
        // A budget exactly est/1.2 still admits the candidate.
        let budget = (est as f64 / 1.2).ceil() as u64;
        assert!(rule4_fits(&c, &cd, budget));
        assert!(!rule4_fits(&c, &cd, budget / 2));
    }
}
