//! Autoregressive decoder graphs: KV-cache attention with prefill and
//! single-token decode variants, optional grouped-query heads, and the
//! GEMV-shaped chain builders where the memory-bound gate flips hard
//! toward fusion.
//!
//! Unlike the encoder graphs in [`crate::bert`] (which use the metadata
//! `Reshape` op), decoder graphs split and merge attention heads with
//! the real-permute `SplitHeads`/`MergeHeads` ops so the per-head KV
//! panels a cache stores are layout-correct at any sequence length. At
//! `t == 1` the permutes degenerate to element-order-preserving copies,
//! which keeps decode steps bit-aligned with multi-token prefill.
//!
//! The decode step appends to the cache *inside* the graph with a
//! one-hot scatter (`cache + onehot×new_row`), so the fused attention
//! chain always sees a full bucket-capacity KV panel; padded rows are
//! neutralized by a `-1e9` additive mask whose probabilities underflow
//! to an exact `0.0`, making outputs invariant to bucket padding.

use mcfuser_ir::{ChainSpec, Epilogue, Graph, GraphBuilder, NodeId};
use mcfuser_sim::DType;

/// Configuration of a GPT-style decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Number of decoder layers.
    pub layers: u32,
    /// Hidden width.
    pub hidden: u64,
    /// Query heads.
    pub heads: u64,
    /// KV heads (equal to `heads` for multi-head attention, a divisor
    /// of it for grouped-query attention).
    pub kv_heads: u64,
    /// FFN intermediate width.
    pub intermediate: u64,
    /// Output vocabulary size (kept small: the LM head is a single
    /// reference-lane `Linear`, not part of any fused chain).
    pub vocab: u64,
}

impl DecoderConfig {
    /// GPT-mini: 4 layers, hidden 128, 4 heads — small enough for the
    /// CPU reference lane, GEMV-shaped enough that every decode chain
    /// sits far below the ridge.
    pub fn gpt_mini() -> Self {
        DecoderConfig {
            layers: 4,
            hidden: 128,
            heads: 4,
            kv_heads: 4,
            intermediate: 256,
            vocab: 128,
        }
    }

    /// GPT-mini with grouped-query attention (2 KV heads serving 4
    /// query heads).
    pub fn gpt_mini_gqa() -> Self {
        DecoderConfig {
            kv_heads: 2,
            ..Self::gpt_mini()
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Width of the K/V projections (`kv_heads · head_dim`).
    pub fn kv_width(&self) -> u64 {
        self.kv_heads * self.head_dim()
    }

    /// Query heads per KV head.
    pub fn group_size(&self) -> u64 {
        self.heads / self.kv_heads
    }
}

/// Post-attention residual + FFN block shared by the prefill and decode
/// layer builders; returns the layer output.
fn ffn_block(
    gb: &mut GraphBuilder,
    cfg: &DecoderConfig,
    l: u32,
    proj: NodeId,
    x: NodeId,
) -> NodeId {
    let res1 = gb.add(&format!("l{l}.res1"), proj, x);
    let ln1 = gb.layer_norm_affine(&format!("l{l}.ln1"), res1);
    let up = gb.linear(&format!("l{l}.up"), ln1, cfg.intermediate, true);
    let act = gb.gelu(&format!("l{l}.gelu"), up);
    let down = gb.linear(&format!("l{l}.down"), act, cfg.hidden, true);
    let res2 = gb.add(&format!("l{l}.res2"), down, ln1);
    gb.layer_norm_affine(&format!("l{l}.ln2"), res2)
}

/// One full-sequence decoder layer over `t` positions with a causal
/// mask; returns `(output, k_panel, v_panel)` where the KV panels are
/// the `[kv_heads, t, head_dim]` values a cache would store.
fn forward_layer(
    gb: &mut GraphBuilder,
    cfg: &DecoderConfig,
    x: NodeId,
    l: u32,
    mask: NodeId,
) -> (NodeId, NodeId, NodeId) {
    let hd = cfg.head_dim();
    let q = gb.linear(&format!("l{l}.q"), x, cfg.hidden, true);
    let k = gb.linear(&format!("l{l}.k"), x, cfg.kv_width(), true);
    let v = gb.linear(&format!("l{l}.v"), x, cfg.kv_width(), true);
    let qh = gb.split_heads(&format!("l{l}.qh"), q, cfg.heads);
    let kh = gb.split_heads(&format!("l{l}.kh"), k, cfg.kv_heads);
    let vh = gb.split_heads(&format!("l{l}.vh"), v, cfg.kv_heads);
    let (ka, va) = if cfg.kv_heads == cfg.heads {
        (kh, vh)
    } else {
        let g = cfg.group_size();
        (
            gb.repeat_kv(&format!("l{l}.kr"), kh, g),
            gb.repeat_kv(&format!("l{l}.vr"), vh, g),
        )
    };
    let scores = gb.batch_matmul(&format!("l{l}.qk"), qh, ka, true);
    let masked = gb.add(&format!("l{l}.msk"), scores, mask);
    let probs = gb.softmax(&format!("l{l}.sm"), masked, 1.0 / (hd as f32).sqrt());
    let ctx = gb.batch_matmul(&format!("l{l}.pv"), probs, va, false);
    let merged = gb.merge_heads(&format!("l{l}.merge"), ctx);
    let proj = gb.linear(&format!("l{l}.o"), merged, cfg.hidden, true);
    (ffn_block(gb, cfg, l, proj, x), kh, vh)
}

/// One single-token decode layer against a bucket-capacity KV cache;
/// returns `(output, k_new, v_new)` where the new rows are
/// `[kv_heads, 1, head_dim]` panels for the session to append.
#[allow(clippy::too_many_arguments)]
fn step_layer(
    gb: &mut GraphBuilder,
    cfg: &DecoderConfig,
    x: NodeId,
    l: u32,
    mask: NodeId,
    onehot: NodeId,
    k_cache: NodeId,
    v_cache: NodeId,
) -> (NodeId, NodeId, NodeId) {
    let hd = cfg.head_dim();
    let q = gb.linear(&format!("l{l}.q"), x, cfg.hidden, true);
    let k = gb.linear(&format!("l{l}.k"), x, cfg.kv_width(), true);
    let v = gb.linear(&format!("l{l}.v"), x, cfg.kv_width(), true);
    let qh = gb.split_heads(&format!("l{l}.qh"), q, cfg.heads);
    let kh = gb.split_heads(&format!("l{l}.kh"), k, cfg.kv_heads);
    let vh = gb.split_heads(&format!("l{l}.vh"), v, cfg.kv_heads);
    // One-hot scatter append: `cache + onehot×new_row` places the new
    // KV row at the current position without a dedicated scatter op.
    let kx = gb.batch_matmul(&format!("l{l}.kx"), onehot, kh, false);
    let vx = gb.batch_matmul(&format!("l{l}.vx"), onehot, vh, false);
    let kf = gb.add(&format!("l{l}.kf"), k_cache, kx);
    let vf = gb.add(&format!("l{l}.vf"), v_cache, vx);
    let (ka, va) = if cfg.kv_heads == cfg.heads {
        (kf, vf)
    } else {
        let g = cfg.group_size();
        (
            gb.repeat_kv(&format!("l{l}.kr"), kf, g),
            gb.repeat_kv(&format!("l{l}.vr"), vf, g),
        )
    };
    let scores = gb.batch_matmul(&format!("l{l}.qk"), qh, ka, true);
    let masked = gb.add(&format!("l{l}.msk"), scores, mask);
    let probs = gb.softmax(&format!("l{l}.sm"), masked, 1.0 / (hd as f32).sqrt());
    let ctx = gb.batch_matmul(&format!("l{l}.pv"), probs, va, false);
    let merged = gb.merge_heads(&format!("l{l}.merge"), ctx);
    let proj = gb.linear(&format!("l{l}.o"), merged, cfg.hidden, true);
    (ffn_block(gb, cfg, l, proj, x), kh, vh)
}

/// Full-sequence causal forward over `t` positions (the prefill graph).
///
/// Inputs: `x` `[t, hidden]` and an additive `mask` `[heads, t, t]`
/// (pass [`mcfuser_ir::causal_mask`]). Outputs: `lm_head` logits
/// `[t, vocab]` followed by per-layer `l{i}.kh` / `l{i}.vh` KV panels
/// `[kv_heads, t, head_dim]` for seeding a decode session's cache.
pub fn decoder_forward_graph(name: &str, cfg: &DecoderConfig, t: u64) -> Graph {
    assert_eq!(cfg.hidden % cfg.heads, 0, "heads must divide hidden");
    assert_eq!(cfg.heads % cfg.kv_heads, 0, "kv_heads must divide heads");
    let mut gb = GraphBuilder::new(name, DType::F32);
    let mut x = gb.input("x", vec![t, cfg.hidden]);
    let mask = gb.input("mask", vec![cfg.heads, t, t]);
    let mut outs = Vec::new();
    for l in 0..cfg.layers {
        let (out, kh, vh) = forward_layer(&mut gb, cfg, x, l, mask);
        x = out;
        outs.push(kh);
        outs.push(vh);
    }
    let logits = gb.linear("lm_head", x, cfg.vocab, false);
    let mut outputs = vec![logits];
    outputs.extend(outs);
    gb.finish(outputs)
}

/// Single-token decode step against KV caches of bucket capacity `t_b`.
///
/// Inputs: `x` `[1, hidden]`, per-layer `l{i}.k_cache` / `l{i}.v_cache`
/// `[kv_heads, t_b, head_dim]`, a shared `onehot` scatter column
/// `[kv_heads, t_b, 1]` ([`mcfuser_ir::scatter_onehot`]) and a shared
/// additive `mask` `[heads, 1, t_b]` ([`mcfuser_ir::decode_mask`]).
/// Outputs: `lm_head` logits `[1, vocab]` followed by per-layer
/// `l{i}.kh` / `l{i}.vh` new KV rows `[kv_heads, 1, head_dim]`.
pub fn decoder_step_graph(name: &str, cfg: &DecoderConfig, t_b: u64) -> Graph {
    assert_eq!(cfg.hidden % cfg.heads, 0, "heads must divide hidden");
    assert_eq!(cfg.heads % cfg.kv_heads, 0, "kv_heads must divide heads");
    let mut gb = GraphBuilder::new(name, DType::F32);
    let mut x = gb.input("x", vec![1, cfg.hidden]);
    let mask = gb.input("mask", vec![cfg.heads, 1, t_b]);
    let onehot = gb.input("onehot", vec![cfg.kv_heads, t_b, 1]);
    let hd = cfg.head_dim();
    let caches: Vec<(NodeId, NodeId)> = (0..cfg.layers)
        .map(|l| {
            (
                gb.input(format!("l{l}.k_cache"), vec![cfg.kv_heads, t_b, hd]),
                gb.input(format!("l{l}.v_cache"), vec![cfg.kv_heads, t_b, hd]),
            )
        })
        .collect();
    let mut outs = Vec::new();
    for l in 0..cfg.layers {
        let (kc, vc) = caches[l as usize];
        let (out, k_new, v_new) = step_layer(&mut gb, cfg, x, l, mask, onehot, kc, vc);
        x = out;
        outs.push(k_new);
        outs.push(v_new);
    }
    let logits = gb.linear("lm_head", x, cfg.vocab, false);
    let mut outputs = vec![logits];
    outputs.extend(outs);
    gb.finish(outputs)
}

/// The decode-step attention chain shape: a masked-softmax GEMV pair
/// (`m = 1`) over a bucket-capacity KV panel. Memory-bound by
/// construction — at `m = 1` the per-op intensity is `≈ 2/esz`
/// FLOPs/byte, two orders of magnitude under an A100-class ridge.
pub fn decode_attention_chain(name: &str, cfg: &DecoderConfig, t_b: u64) -> ChainSpec {
    let hd = cfg.head_dim();
    let mut c = ChainSpec::masked_attention(name, cfg.heads, 1, t_b, hd, hd);
    c.dtype = DType::F32;
    c
}

/// The decode-step FFN chain shape: a biased GEMV pair
/// `hidden → intermediate (GELU) → hidden` at `m = 1`.
pub fn decode_ffn_chain(name: &str, cfg: &DecoderConfig) -> ChainSpec {
    let mut c = ChainSpec::chain(
        name,
        1,
        1,
        vec![cfg.hidden, cfg.intermediate, cfg.hidden],
        vec![Epilogue::Gelu, Epilogue::None],
    );
    c.biases = vec![true, true];
    c.dtype = DType::F32;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_ir::{causal_mask, decode_mask, evaluate, partition, scatter_onehot, Op};
    use mcfuser_sim::{DeviceSpec, HostTensor};
    use rustc_hash::FxHashMap;

    #[test]
    fn gemv_chains_flip_the_memory_bound_gate() {
        let cfg = DecoderConfig::gpt_mini();
        let dev = DeviceSpec::a100();
        let attn = decode_attention_chain("d.attn", &cfg, 64);
        assert!(attn.is_memory_bound(&dev), "decode attention is a GEMV");
        let ffn = decode_ffn_chain("d.ffn", &cfg);
        assert!(ffn.is_memory_bound(&dev), "decode FFN is a GEMV pair");
        // The same FFN at prefill width is compute-bound: the gate's
        // decision genuinely flips on m.
        let mut prefill = ffn.clone();
        prefill.m = 64;
        assert!(!prefill.is_memory_bound(&dev), "prefill FFN is fat");
    }

    #[test]
    fn step_graph_partitions_into_fused_decode_chains() {
        let cfg = DecoderConfig::gpt_mini();
        let g = decoder_step_graph("gpt-mini@step64", &cfg, 64);
        let part = partition(&g, &DeviceSpec::a100());
        let attn: Vec<_> = part
            .chains
            .iter()
            .filter(|c| c.chain.has_softmax())
            .collect();
        assert_eq!(attn.len(), cfg.layers as usize, "one attention per layer");
        for fc in &attn {
            assert_eq!(fc.chain.m, 1, "decode attention is GEMV-shaped");
            assert_eq!(fc.chain.batch, cfg.heads);
            assert_eq!(fc.chain.dims, vec![32, 64, 32]);
        }
        let ffn: Vec<_> = part
            .chains
            .iter()
            .filter(|c| !c.chain.has_softmax())
            .collect();
        assert_eq!(ffn.len(), cfg.layers as usize, "one FFN per layer");
        for fc in &ffn {
            assert_eq!(fc.chain.m, 1);
            assert_eq!(
                fc.chain.dims,
                vec![cfg.hidden, cfg.intermediate, cfg.hidden]
            );
        }
    }

    #[test]
    fn gqa_step_graph_partitions_with_repeated_kv() {
        let cfg = DecoderConfig::gpt_mini_gqa();
        let g = decoder_step_graph("gqa@step32", &cfg, 32);
        let part = partition(&g, &DeviceSpec::a100());
        let attn = part.chains.iter().filter(|c| c.chain.has_softmax()).count();
        assert_eq!(attn, cfg.layers as usize);
        let repeats = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::RepeatKv { .. }))
            .count();
        assert_eq!(repeats, 2 * cfg.layers as usize);
    }

    #[test]
    fn step_matches_forward_row_on_the_reference_lane() {
        // Prefill T tokens with the forward graph, then recompute the
        // last position with the decode-step graph seeded from the
        // forward graph's KV panels: the logits row must match exactly
        // (all row-local ops; masked columns underflow to exact zero).
        let cfg = DecoderConfig::gpt_mini();
        let t = 5u64;
        let t_b = 8u64;
        let fwd = decoder_forward_graph("gpt-mini", &cfg, t);
        let mut rng_x: Vec<f32> = Vec::new();
        for i in 0..(t * cfg.hidden) as usize {
            rng_x.push(((i * 2654435761 % 1000) as f32) / 1000.0 - 0.5);
        }
        let mut inputs = FxHashMap::default();
        inputs.insert(
            fwd.input_named("x").unwrap(),
            HostTensor::from_vec(&[t, cfg.hidden], rng_x.clone()),
        );
        inputs.insert(
            fwd.input_named("mask").unwrap(),
            causal_mask(cfg.heads, t, t),
        );
        // `evaluate` returns every node's value; pick out the outputs.
        let fwd_vals = evaluate(&fwd, &inputs, 7).unwrap();
        let fwd_out: Vec<_> = fwd.outputs.iter().map(|o| &fwd_vals[o.0]).collect();
        let logits_full = fwd_out[0];

        // Seed bucket-capacity caches with rows [0, t-1) of the panels.
        let step = decoder_step_graph("gpt-mini", &cfg, t_b);
        let hd = cfg.head_dim() as usize;
        let kv = cfg.kv_heads as usize;
        let mut sinputs = FxHashMap::default();
        let last_row = &rng_x[((t - 1) * cfg.hidden) as usize..];
        sinputs.insert(
            step.input_named("x").unwrap(),
            HostTensor::from_vec(&[1, cfg.hidden], last_row.to_vec()),
        );
        sinputs.insert(
            step.input_named("mask").unwrap(),
            decode_mask(cfg.heads, t_b, t - 1),
        );
        sinputs.insert(
            step.input_named("onehot").unwrap(),
            scatter_onehot(cfg.kv_heads, t_b, t - 1),
        );
        for l in 0..cfg.layers {
            let kh = fwd_out[1 + 2 * l as usize];
            let vh = fwd_out[2 + 2 * l as usize];
            for (name, panel) in [("k_cache", kh), ("v_cache", vh)] {
                let mut cache = vec![0.0f32; kv * t_b as usize * hd];
                for h in 0..kv {
                    for r in 0..(t - 1) as usize {
                        let src = (h * t as usize + r) * hd;
                        let dst = (h * t_b as usize + r) * hd;
                        cache[dst..dst + hd].copy_from_slice(&panel.data[src..src + hd]);
                    }
                }
                sinputs.insert(
                    step.input_named(&format!("l{l}.{name}")).unwrap(),
                    HostTensor::from_vec(&[cfg.kv_heads, t_b, hd as u64], cache),
                );
            }
        }
        let step_vals = evaluate(&step, &sinputs, 7).unwrap();
        let step_out: Vec<_> = step.outputs.iter().map(|o| &step_vals[o.0]).collect();
        let logits_step = step_out[0];
        let vocab = cfg.vocab as usize;
        let last = &logits_full.data[(t as usize - 1) * vocab..];
        assert_eq!(logits_step.data.len(), vocab);
        for (a, b) in logits_step.data.iter().zip(last) {
            assert_eq!(a, b, "decode step must match the forward row");
        }
        // The new KV rows must match the forward panels' last row too.
        for l in 0..cfg.layers as usize {
            for (i, panel) in [fwd_out[1 + 2 * l], fwd_out[2 + 2 * l]].iter().enumerate() {
                let new = step_out[1 + 2 * l + i];
                for h in 0..kv {
                    let src = (h * t as usize + (t as usize - 1)) * hd;
                    assert_eq!(&new.data[h * hd..(h + 1) * hd], &panel.data[src..src + hd]);
                }
            }
        }
    }

    #[test]
    fn forward_graph_shapes() {
        let cfg = DecoderConfig::gpt_mini_gqa();
        let g = decoder_forward_graph("gqa", &cfg, 16);
        let shapes = g.output_shapes();
        assert_eq!(shapes[0].0, "lm_head");
        assert_eq!(shapes[0].2, vec![16, cfg.vocab]);
        assert_eq!(shapes[1].0, "l0.kh");
        assert_eq!(shapes[1].2, vec![cfg.kv_heads, 16, cfg.head_dim()]);
        assert_eq!(shapes.len(), 1 + 2 * cfg.layers as usize);
    }
}
