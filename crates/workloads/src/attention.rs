//! Table III — the self-attention module configurations S1–S9, plus
//! masked (decoder-style) attention variants.

use mcfuser_ir::{ChainSpec, Graph, GraphBuilder, NodeId};
use mcfuser_sim::DType;

/// All (name, heads, M, N, K, H, network) rows of Table III.
pub const TABLE_III: [(&str, u64, u64, u64, u64, u64, &str); 9] = [
    ("S1", 8, 512, 512, 64, 64, "Bert-Small"),
    ("S2", 12, 512, 512, 64, 64, "Bert-Base"),
    ("S3", 16, 512, 512, 64, 64, "Bert-Large"),
    ("S4", 12, 256, 256, 64, 64, "ViT-Base"),
    ("S5", 16, 256, 256, 64, 64, "ViT-Large"),
    ("S6", 16, 256, 256, 80, 80, "ViT-Huge"),
    ("S7", 1, 512, 256, 64, 64, "MLP-Mixer"),
    ("S8", 1, 768, 384, 64, 64, "MLP-Mixer"),
    ("S9", 1, 1024, 512, 64, 64, "MLP-Mixer"),
];

/// Build one workload by name (`"S1"` … `"S9"`).
pub fn attention_workload(name: &str) -> Option<ChainSpec> {
    TABLE_III
        .iter()
        .find(|(n, ..)| *n == name)
        .map(|&(n, heads, m, nn, k, h, _)| ChainSpec::attention(n, heads, m, nn, k, h))
}

/// The full Table III suite in order.
pub fn attention_suite() -> Vec<ChainSpec> {
    TABLE_III
        .iter()
        .map(|&(n, heads, m, nn, k, h, _)| ChainSpec::attention(n, heads, m, nn, k, h))
        .collect()
}

/// The network each module comes from.
pub fn attention_network(name: &str) -> Option<&'static str> {
    TABLE_III.iter().find(|(n, ..)| *n == name).map(|r| r.6)
}

/// The masked (decoder-style) variant of a Table III module: same
/// shapes, with an additive `[heads, m, n]` mask folded into the
/// softmax.
pub fn masked_attention_workload(name: &str) -> Option<ChainSpec> {
    TABLE_III
        .iter()
        .find(|(n, ..)| *n == name)
        .map(|&(n, heads, m, nn, k, h, _)| {
            ChainSpec::masked_attention(format!("{n}-masked"), heads, m, nn, k, h)
        })
}

/// A masked-attention operator *graph*: `softmax(Q Kᵀ/√k + mask) V`,
/// the mask an `[heads, m, m]` activation input (feed
/// [`mcfuser_ir::causal_mask`] for decoder-style attention). Returns
/// the graph and the mask's input node.
pub fn masked_attention_graph(heads: u64, m: u64, k: u64) -> (Graph, NodeId) {
    let mut gb = GraphBuilder::new("masked-attn", DType::F16);
    let q = gb.input("q", vec![heads, m, k]);
    let kk = gb.input("k", vec![heads, m, k]);
    let v = gb.input("v", vec![heads, m, k]);
    let mask = gb.input("mask", vec![heads, m, m]);
    let s = gb.batch_matmul("qk", q, kk, true);
    let ms = gb.add("masked", s, mask);
    let p = gb.softmax("sm", ms, 1.0 / (k as f32).sqrt());
    let o = gb.batch_matmul("pv", p, v, false);
    (gb.finish(vec![o]), mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_sim::DeviceSpec;

    #[test]
    fn nine_workloads_all_softmax() {
        let suite = attention_suite();
        assert_eq!(suite.len(), 9);
        assert!(suite.iter().all(ChainSpec::has_softmax));
    }

    #[test]
    fn head_counts_match_paper() {
        assert_eq!(attention_workload("S3").unwrap().batch, 16);
        assert_eq!(attention_workload("S7").unwrap().batch, 1);
    }

    #[test]
    fn vit_huge_uses_head_dim_80() {
        let s6 = attention_workload("S6").unwrap();
        assert_eq!(s6.dims, vec![80, 256, 80]);
    }

    #[test]
    fn all_attention_modules_are_mbci() {
        // The paper's central observation: self-attention is memory bound.
        let dev = DeviceSpec::a100();
        for c in attention_suite() {
            assert!(c.is_memory_bound(&dev), "{} not memory bound", c.name);
        }
    }

    #[test]
    fn masked_variant_has_masked_softmax() {
        let c = masked_attention_workload("S2").unwrap();
        assert!(c.has_softmax());
        assert!(c.epilogues[0].needs_mask());
        assert_eq!(c.num_inputs(), 4);
        assert!(masked_attention_workload("S0").is_none());
    }

    #[test]
    fn masked_attention_graph_partitions_as_one_chain() {
        use mcfuser_ir::partition;
        let (g, mask) = masked_attention_graph(8, 512, 64);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        assert!(fc.chain.epilogues[0].needs_mask());
        assert_eq!(*fc.data_inputs.last().unwrap(), mask);
        assert!(part.rest.is_empty());
    }

    #[test]
    fn networks_resolve() {
        assert_eq!(attention_network("S2"), Some("Bert-Base"));
        assert_eq!(attention_network("S9"), Some("MLP-Mixer"));
        assert_eq!(attention_network("S0"), None);
    }
}
