//! End-to-end model graphs: BERT encoders (Fig. 9 workloads), a ViT
//! encoder block and an MLP-Mixer block.
//!
//! The graphs use the reproduction's operator IR. Multi-head reshapes are
//! expressed with the metadata `Reshape` op (element-order preserving);
//! both the CPU reference and the fused execution interpret them the same
//! way, so end-to-end numerics remain comparable even though a real
//! framework would permute. See DESIGN.md ("substitutions").

use mcfuser_ir::{Graph, GraphBuilder, NodeId};
use mcfuser_sim::DType;

/// Configuration of a BERT-family encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Number of encoder layers.
    pub layers: u32,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Sequence length.
    pub seq: u64,
    /// FFN intermediate width (4 × hidden for BERT).
    pub intermediate: u64,
}

impl BertConfig {
    /// BERT-Small: 4 layers, hidden 512, 8 heads.
    pub fn small(seq: u64) -> Self {
        BertConfig {
            layers: 4,
            hidden: 512,
            heads: 8,
            seq,
            intermediate: 2048,
        }
    }

    /// BERT-Base: 12 layers, hidden 768, 12 heads.
    pub fn base(seq: u64) -> Self {
        BertConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            seq,
            intermediate: 3072,
        }
    }

    /// BERT-Large: 24 layers, hidden 1024, 16 heads.
    pub fn large(seq: u64) -> Self {
        BertConfig {
            layers: 24,
            hidden: 1024,
            heads: 16,
            seq,
            intermediate: 4096,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }
}

/// Append one encoder layer to the builder; returns the layer output.
fn encoder_layer(gb: &mut GraphBuilder, cfg: &BertConfig, x: NodeId, l: u32) -> NodeId {
    let (seq, hidden, heads, hd) = (cfg.seq, cfg.hidden, cfg.heads, cfg.head_dim());
    // Self-attention: Q, K, V projections (biased, like HuggingFace).
    let q = gb.linear(&format!("l{l}.q"), x, hidden, true);
    let k = gb.linear(&format!("l{l}.k"), x, hidden, true);
    let v = gb.linear(&format!("l{l}.v"), x, hidden, true);
    let qh = gb.reshape(&format!("l{l}.qh"), q, vec![heads, seq, hd]);
    let kh = gb.reshape(&format!("l{l}.kh"), k, vec![heads, seq, hd]);
    let vh = gb.reshape(&format!("l{l}.vh"), v, vec![heads, seq, hd]);
    let scores = gb.batch_matmul(&format!("l{l}.qk"), qh, kh, true);
    let probs = gb.softmax(&format!("l{l}.sm"), scores, 1.0 / (hd as f32).sqrt());
    let ctx = gb.batch_matmul(&format!("l{l}.pv"), probs, vh, false);
    let merged = gb.reshape(&format!("l{l}.merge"), ctx, vec![seq, hidden]);
    let proj = gb.linear(&format!("l{l}.o"), merged, hidden, true);
    // Affine LayerNorms, like the real model — and what lets the
    // partitioner stitch `res1→ln1` and `res2→ln2` into the FFN chain.
    let res1 = gb.add(&format!("l{l}.res1"), proj, x);
    let ln1 = gb.layer_norm_affine(&format!("l{l}.ln1"), res1);
    // FFN.
    let up = gb.linear(&format!("l{l}.up"), ln1, cfg.intermediate, true);
    let act = gb.gelu(&format!("l{l}.gelu"), up);
    let down = gb.linear(&format!("l{l}.down"), act, hidden, true);
    let res2 = gb.add(&format!("l{l}.res2"), down, ln1);
    gb.layer_norm_affine(&format!("l{l}.ln2"), res2)
}

/// Build a BERT encoder graph.
pub fn bert_graph(name: &str, cfg: &BertConfig) -> Graph {
    let mut gb = GraphBuilder::new(name, DType::F16);
    let mut x = gb.input("embeddings", vec![cfg.seq, cfg.hidden]);
    for l in 0..cfg.layers {
        x = encoder_layer(&mut gb, cfg, x, l);
    }
    gb.finish(vec![x])
}

/// BERT-Small at the given sequence length.
pub fn bert_small(seq: u64) -> Graph {
    bert_graph("Bert-Small", &BertConfig::small(seq))
}

/// BERT-Base at the given sequence length.
pub fn bert_base(seq: u64) -> Graph {
    bert_graph("Bert-Base", &BertConfig::base(seq))
}

/// BERT-Large at the given sequence length.
pub fn bert_large(seq: u64) -> Graph {
    bert_graph("Bert-Large", &BertConfig::large(seq))
}

/// One ViT encoder block (patches = sequence positions).
pub fn vit_block(patches: u64, hidden: u64, heads: u64) -> Graph {
    let cfg = BertConfig {
        layers: 1,
        hidden,
        heads,
        seq: patches,
        intermediate: 4 * hidden,
    };
    bert_graph("ViT-block", &cfg)
}

/// One MLP-Mixer block: token-mixing MLP then channel-mixing MLP
/// (two unbiased GEMM chains — the MBCI shape behind S7–S9).
pub fn mixer_block(tokens: u64, channels: u64, token_hidden: u64, channel_hidden: u64) -> Graph {
    let mut gb = GraphBuilder::new("Mixer-block", DType::F16);
    let x = gb.input("x", vec![tokens, channels]);
    // Token mixing operates on the transposed view; our IR models it as a
    // metadata reshape (self-consistent across reference and compiled
    // paths; see module docs).
    let xt = gb.reshape("t1", x, vec![channels, tokens]);
    let tm1 = gb.linear("tok.fc1", xt, token_hidden, false);
    let tm2 = gb.linear("tok.fc2", tm1, tokens, false);
    let back = gb.reshape("t2", tm2, vec![tokens, channels]);
    let res1 = gb.add("res1", back, x);
    let ln = gb.layer_norm("ln", res1);
    let cm1 = gb.linear("ch.fc1", ln, channel_hidden, false);
    let cm2 = gb.linear("ch.fc2", cm1, channels, false);
    let res2 = gb.add("res2", cm2, ln);
    gb.finish(vec![res2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_ir::{partition, Op};
    use mcfuser_sim::DeviceSpec;

    #[test]
    fn bert_base_structure() {
        let g = bert_base(512);
        // 12 layers × (1 softmax) — count softmax nodes.
        let softmaxes = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Softmax { .. }))
            .count();
        assert_eq!(softmaxes, 12);
        assert_eq!(g.outputs.len(), 1);
    }

    #[test]
    fn partitioner_finds_attention_and_stitched_ffn_chains() {
        // Every layer yields exactly two fused kernels: the attention
        // chain, and the FFN stitched from `res1→ln1` (prologue) through
        // `res2→ln2` (epilogue). BERT-Small's bare 512→2048 FFN sits
        // *just* under the A100 ridge (φ ≈ 0.99 × ridge) — rejected by
        // the headroom gate — but the stitched round trips fold in
        // enough traffic that the second-chance pass accepts it.
        let g = bert_small(512);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 8, "two chains per layer");
        let attn: Vec<_> = part
            .chains
            .iter()
            .filter(|c| c.chain.has_softmax())
            .collect();
        assert_eq!(attn.len(), 4, "one attention chain per layer");
        for fc in &attn {
            assert_eq!(fc.chain.batch, 8);
            assert_eq!(fc.chain.m, 512);
        }
        let ffn: Vec<_> = part
            .chains
            .iter()
            .filter(|c| !c.chain.has_softmax())
            .collect();
        assert_eq!(ffn.len(), 4, "one stitched FFN chain per layer");
        for fc in &ffn {
            let p = fc.chain.prologue.expect("FFN prologue");
            assert!(p.residual && p.affine);
            let e = fc.chain.stitch_epilogue.expect("FFN epilogue");
            assert!(e.layer_norm && e.affine);
            assert!(fc.unstitched.is_some(), "degrade twin carried");
        }
        // Zero elementwise glue left for the reference backend.
        assert!(
            part.rest.iter().all(|&n| !g.node(n).op.is_elementwise()),
            "elementwise glue left in rest"
        );
    }

    #[test]
    fn ffn_stays_unfused_in_bert() {
        // The MBCI gate doing real work: BERT-Base's 768→3072 FFN has
        // fat, compute-bound reductions — even with the stitched
        // prologue/epilogue round trips folded in, its intensity stays
        // over the ridge, so it stays with the fallback backend.
        let g = bert_base(512);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 12, "attention only");
        assert!(part.chains.iter().all(|c| c.chain.has_softmax()));
    }

    #[test]
    fn attention_flops_fraction_matches_paper_narrative() {
        // Paper §II-A: at seq 512 self-attention is ~11 % of BERT-Large
        // FLOPs. Count bmm FLOPs vs total.
        let g = bert_large(512);
        let total = g.total_flops();
        let bmm: f64 = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::BatchMatMul { .. }))
            .map(|(i, _)| {
                let n = &g.nodes[i];
                let a = &g.nodes[n.inputs[0].0];
                let k = *a.shape.last().unwrap();
                let out: u64 = n.shape.iter().product();
                2.0 * out as f64 * k as f64
            })
            .sum();
        let frac = bmm / total;
        assert!(
            (0.05..0.25).contains(&frac),
            "attention FLOP fraction {frac}"
        );
    }

    #[test]
    fn mixer_block_yields_mbci_chains() {
        let g = mixer_block(512, 256, 256, 1024);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(!part.chains.is_empty(), "mixer MLPs should fuse");
        // The channel-mixing MLP picks up its trailing residual Add as a
        // stitched epilogue (the block's `ln` is non-affine, so no
        // prologue attaches).
        assert!(part
            .chains
            .iter()
            .any(|c| c.chain.stitch_epilogue.is_some()));
    }

    #[test]
    fn vit_block_has_one_attention() {
        let g = vit_block(256, 768, 12);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(
            part.chains.iter().filter(|c| c.chain.has_softmax()).count(),
            1
        );
        // At 256 patches the 768→3072 FFN is lean enough that the
        // stitched second-chance pass takes it too.
        assert_eq!(
            part.chains
                .iter()
                .filter(|c| c.chain.prologue.is_some())
                .count(),
            1
        );
    }

    #[test]
    fn head_dim_divides() {
        assert_eq!(BertConfig::base(512).head_dim(), 64);
        assert_eq!(BertConfig::large(512).head_dim(), 64);
        assert_eq!(BertConfig::small(512).head_dim(), 64);
    }
}
