//! # mcfuser-workloads — the paper's evaluation workloads
//!
//! * [`gemm_chains`] — the batch GEMM chains G1–G12 of **Table II**,
//!   plus the 4-GEMM MLP chain/graph exercising the N-operator
//!   partitioner;
//! * [`attention`] — the self-attention modules S1–S9 of **Table III**
//!   (BERT, ViT, MLP-Mixer shapes) and their masked (decoder-style)
//!   variants;
//! * [`bert`] — end-to-end BERT encoder graphs (Fig. 9) plus ViT and
//!   MLP-Mixer blocks;
//! * [`decoder`] — autoregressive decoder graphs: KV-cache attention
//!   (prefill + single-token decode, optional grouped-query heads) and
//!   the GEMV-shaped chains where the memory-bound gate flips hard
//!   toward fusion.

#![warn(missing_docs)]

pub mod attention;
pub mod bert;
pub mod decoder;
pub mod gemm_chains;

pub use attention::{
    attention_network, attention_suite, attention_workload, masked_attention_graph,
    masked_attention_workload, TABLE_III,
};
pub use bert::{bert_base, bert_graph, bert_large, bert_small, mixer_block, vit_block, BertConfig};
pub use decoder::{
    decode_attention_chain, decode_ffn_chain, decoder_forward_graph, decoder_step_graph,
    DecoderConfig,
};
pub use gemm_chains::{gemm_chain_suite, gemm_chain_workload, mlp4_chain, mlp4_graph, TABLE_II};
