//! Table II — the batch GEMM chain configurations G1–G12 — plus deeper
//! chains exercising the generalized N-operator partitioner.
//!
//! `(batch, M, K) × (batch, K, N)` is the first GEMM,
//! `(batch, M, N) × (batch, N, H)` the second.

use mcfuser_ir::{ChainSpec, Epilogue, Graph, GraphBuilder};
use mcfuser_sim::DType;

/// All (name, batch, M, N, K, H) rows of Table II.
pub const TABLE_II: [(&str, u64, u64, u64, u64, u64); 12] = [
    ("G1", 1, 512, 256, 64, 64),
    ("G2", 1, 512, 256, 64, 128),
    ("G3", 1, 512, 256, 64, 256),
    ("G4", 1, 512, 512, 256, 256),
    ("G5", 1, 512, 512, 512, 256),
    ("G6", 1, 512, 512, 1024, 256),
    ("G7", 1, 512, 512, 128, 128),
    ("G8", 1, 1024, 512, 128, 128),
    ("G9", 1, 2048, 512, 128, 128),
    ("G10", 1, 1024, 1024, 128, 128),
    ("G11", 4, 1024, 1024, 128, 128),
    ("G12", 8, 1024, 1024, 128, 128),
];

/// Build one workload by name (`"G1"` … `"G12"`).
pub fn gemm_chain_workload(name: &str) -> Option<ChainSpec> {
    TABLE_II
        .iter()
        .find(|(n, ..)| *n == name)
        .map(|&(n, b, m, nn, k, h)| ChainSpec::gemm_chain(n, b, m, nn, k, h))
}

/// The full Table II suite in order.
pub fn gemm_chain_suite() -> Vec<ChainSpec> {
    TABLE_II
        .iter()
        .map(|&(n, b, m, nn, k, h)| ChainSpec::gemm_chain(n, b, m, nn, k, h))
        .collect()
}

/// The 4-GEMM MLP chain spec behind [`mlp4_graph`]: skinny reductions
/// end to end, so every prefix stays memory bound and the whole chain
/// fuses into one kernel.
pub fn mlp4_chain() -> ChainSpec {
    let mut c = ChainSpec::chain(
        "MLP4",
        1,
        512,
        vec![64, 256, 128, 256, 64],
        vec![
            Epilogue::Gelu,
            Epilogue::Relu,
            Epilogue::None,
            Epilogue::None,
        ],
    );
    c.biases = vec![true, false, false, false];
    c
}

/// A 4-layer MLP as an operator *graph* (`x → Linear+GELU → Linear+ReLU
/// → Linear → Linear`, first layer biased) — the partitioner must carve
/// the whole thing out as a single length-4 MBCI chain.
pub fn mlp4_graph() -> Graph {
    let mut gb = GraphBuilder::new("mlp4", DType::F16);
    let x = gb.input("x", vec![512, 64]);
    let a = gb.linear("fc1", x, 256, true);
    let a = gb.gelu("act1", a);
    let a = gb.linear("fc2", a, 128, false);
    let a = gb.relu("act2", a);
    let a = gb.linear("fc3", a, 256, false);
    let a = gb.linear("fc4", a, 64, false);
    gb.finish(vec![a])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_ir::partition;
    use mcfuser_sim::DeviceSpec;

    #[test]
    fn twelve_workloads() {
        assert_eq!(gemm_chain_suite().len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        let g5 = gemm_chain_workload("G5").unwrap();
        assert_eq!(g5.m, 512);
        assert_eq!(g5.dims, vec![512, 512, 256]); // K, N, H
        assert!(gemm_chain_workload("G99").is_none());
    }

    #[test]
    fn most_workloads_are_mbci_on_a100() {
        // The premise of the evaluation: these chains are memory bound.
        let dev = DeviceSpec::a100();
        let mbci = gemm_chain_suite()
            .iter()
            .filter(|c| c.is_memory_bound(&dev))
            .count();
        assert!(mbci >= 9, "{mbci}/12 memory bound");
    }

    #[test]
    fn mlp4_graph_partitions_into_one_length_4_chain() {
        let g = mlp4_graph();
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let c = &part.chains[0].chain;
        assert_eq!(c.num_ops(), 4);
        assert_eq!(c.dims, mlp4_chain().dims);
        assert_eq!(c.epilogues, mlp4_chain().epilogues);
        assert_eq!(c.biases, mlp4_chain().biases);
        assert!(part.rest.is_empty(), "{:?}", part.rest);
    }

    #[test]
    fn mlp4_chain_is_mbci() {
        assert!(mlp4_chain().is_memory_bound(&DeviceSpec::a100()));
    }

    #[test]
    fn batch_rows_match_paper() {
        assert_eq!(gemm_chain_workload("G10").unwrap().batch, 1);
        assert_eq!(gemm_chain_workload("G11").unwrap().batch, 4);
        assert_eq!(gemm_chain_workload("G12").unwrap().batch, 8);
    }
}
