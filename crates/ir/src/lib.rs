//! # mcfuser-ir — tensor operator graph IR
//!
//! The front end of the MCFuser reproduction (the TVM-Relay analogue):
//!
//! * [`chain`] — the **MBCI operator chain** abstraction (`ChainSpec`):
//!   straight-line matmul chains with fused memory-intensive epilogues,
//!   the unit MCFuser tunes. Includes the paper's memory-bound
//!   classification test and a CPU reference oracle.
//! * [`graph`] — a high-level operator graph for end-to-end models
//!   (BERT/ViT/MLP-Mixer encoders) with shape inference.
//! * [`partition`] — the MBCI partitioner that carves attention modules
//!   and memory-bound GEMM chains out of a graph (§V-B).
//! * [`reference`] — naive CPU evaluation of whole graphs, the numerical
//!   oracle for the end-to-end compiler.

#![warn(missing_docs)]

pub mod chain;
pub mod graph;
pub mod partition;
pub mod reference;

pub use chain::{apply_epilogue, ChainSpec, Epilogue, AXIS_NAMES};
pub use graph::{Graph, GraphBuilder, GraphError, Node, NodeId, Op};
pub use partition::{partition, FusedChain, Partition};
pub use reference::{evaluate, evaluate_node, gelu, init_weight};
