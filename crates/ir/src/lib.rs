//! # mcfuser-ir — tensor operator graph IR
//!
//! The front end of the MCFuser reproduction (the TVM-Relay analogue):
//!
//! * [`chain`] — the **MBCI operator chain** abstraction (`ChainSpec`):
//!   straight-line matmul chains of *arbitrary length* with per-stage
//!   epilogues (ReLU/GELU/scale/softmax/masked softmax) and per-stage
//!   biases, the unit MCFuser tunes. Includes the paper's memory-bound
//!   classification test and a CPU reference oracle; auxiliary inputs
//!   (bias vectors, attention masks) ride behind `A` and the weights.
//! * [`graph`] — a high-level operator graph for end-to-end models
//!   (BERT/ViT/MLP-Mixer encoders) with shape inference.
//! * [`partition`](mod@partition) — the greedy DAG-walking MBCI partitioner (§V-B):
//!   N-operator Linear chains grown under the per-prefix memory-bound
//!   gate, plus (masked) attention with full shape validation.
//! * [`reference`](mod@reference) — naive CPU evaluation of whole graphs, the numerical
//!   oracle for the end-to-end compiler.

#![warn(missing_docs)]

pub mod chain;
pub mod graph;
pub mod partition;
pub mod reference;

pub use chain::{
    apply_epilogue, apply_masked_softmax, causal_mask, decode_mask, layer_norm_rows,
    scatter_onehot, AuxInput, ChainSpec, Epilogue, EpilogueStitch, PrologueSpec, ResidualSource,
    AXIS_NAMES,
};
pub use graph::{Graph, GraphBuilder, GraphError, Node, NodeId, Op};
pub use partition::{
    partition, partition_with, FusedChain, Partition, PartitionOptions, CHAIN_MBCI_HEADROOM, LN_EPS,
};
pub use reference::{evaluate, evaluate_node, evaluate_node_with, gelu, init_weight, ValueLookup};
