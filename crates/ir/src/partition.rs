//! Graph partitioner: carve MBCI sub-graphs out of an operator graph.
//!
//! Mirrors §V-B of the paper: "we employ a partitioner to segment the
//! model into MBCI sub-graphs and other components". Two pattern
//! families are recognized, both gated on the paper's memory-bound test
//! (compute-bound chains gain nothing from fusion and are left to the
//! per-operator backend — BERT's FFN is rejected, its attention
//! accepted):
//!
//! 1. **Attention**: `BatchMatMul(Q, Kᵀ) [→ +mask] → Softmax →
//!    BatchMatMul(·, V)`, with full Q/K/V shape validation and an
//!    optional additive-mask leaf (causal masks included) folded into a
//!    [`Epilogue::MaskedSoftmax`];
//! 2. **GEMM/Linear chains** of *arbitrary length*: `Linear → [ew] →
//!    Linear → [ew] → Linear → …`, where each hop may carry one
//!    element-wise epilogue (ReLU, GELU, scale) and each `Linear` may
//!    carry a bias (fused as a per-stage bias-add). The matcher grows
//!    chains greedily along single-consumer edges and re-checks the
//!    per-prefix MBCI test at every extension, so a chain only grows
//!    while fusion still pays.
//!
//! A second **stitching** pass then attaches the elementwise glue
//! around each extracted Linear chain to the chain kernel itself:
//!
//! * a `(residual Add →)? LayerNorm(affine)` feeding the chain's first
//!   matmul becomes a fused *prologue* ([`crate::chain::PrologueSpec`]),
//! * a trailing `residual Add (→ LayerNorm)` consuming the chain output
//!   becomes a fused *epilogue* ([`crate::chain::EpilogueStitch`]),
//!
//! and a *second-chance* pass re-visits Linear chains the MBCI gate
//! rejected: with the prologue/epilogue reads folded in, the stitched
//! per-op intensity drops below the ridge for transformer FFN blocks,
//! so e.g. a full BERT layer lowers to exactly two fused kernels with
//! zero elementwise reference steps. Every stitched chain carries its
//! *unstitched twin* ([`FusedChain::unstitched`]) so a failed lowering
//! or tuning run degrades to the plain chain plus reference glue —
//! which the stitched kernel matches bit-for-bit by construction.
//!
//! Every node is claimed by at most one chain (`in_chain` guards on
//! every hop), and all shape constraints are validated before a pattern
//! is accepted — a mismatched graph degrades to "leave it to the
//! fallback backend", never to a miscompiled kernel.

use serde::{Deserialize, Serialize};

use mcfuser_sim::DeviceSpec;

use crate::chain::{ChainSpec, Epilogue, EpilogueStitch, PrologueSpec, ResidualSource};
use crate::graph::{Graph, NodeId, Op};

/// LayerNorm epsilon used by the graph reference evaluator; stitched
/// kernels must use the same value to stay bit-identical.
pub const LN_EPS: f32 = 1e-5;

/// One fused MBCI sub-graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedChain {
    /// The extracted chain specification handed to the tuner.
    pub chain: ChainSpec,
    /// Graph nodes replaced by the fused kernel (compute + epilogues).
    pub nodes: Vec<NodeId>,
    /// Data inputs of the fused kernel in chain order: `A, W₀, W₁ …`,
    /// then auxiliary inputs (biases, masks) in
    /// [`ChainSpec::aux_inputs`] order.
    pub data_inputs: Vec<NodeId>,
    /// The node whose value the fused kernel produces.
    pub output: NodeId,
    /// Per data input: whether the graph stores it transposed relative to
    /// the chain layout (e.g. attention's K is `[N, K]` but the chain's
    /// `W₀` is `[K, N]`).
    pub transposed_inputs: Vec<bool>,
    /// For a stitched chain: the same chain without the fused
    /// prologue/epilogue (the glue nodes evaluated as reference steps
    /// instead). Compilation degrades to this twin when the stitched
    /// kernel fails to lower or tune; the two plans produce bit-identical
    /// values by construction.
    pub unstitched: Option<Box<FusedChain>>,
}

impl FusedChain {
    /// Graph nodes the stitched kernel absorbs beyond its unstitched
    /// twin (the demoted glue ops, in topological order). Empty for
    /// plain chains.
    pub fn stitched_glue(&self) -> Vec<NodeId> {
        let Some(twin) = &self.unstitched else {
            return Vec::new();
        };
        self.nodes
            .iter()
            .copied()
            .filter(|n| !twin.nodes.contains(n))
            .collect()
    }
}

/// Options controlling [`partition_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionOptions {
    /// Attach prologue/epilogue stitches (default). When `false`, the
    /// stitching passes still run their matching — so the *same* chains
    /// are extracted, including second-chance FFN chains — but each
    /// would-be-stitched chain is emitted as its unstitched twin with
    /// the glue left to the reference backend. This is the baseline a
    /// stitched plan is bit-compared against.
    pub stitch: bool,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { stitch: true }
    }
}

/// Result of partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Extracted MBCI sub-graphs.
    pub chains: Vec<FusedChain>,
    /// Compute/memory nodes not covered by any chain, in topological
    /// order (Input/Weight leaves excluded).
    pub rest: Vec<NodeId>,
}

/// Partition a graph for a target device with default options
/// (stitching enabled).
pub fn partition(graph: &Graph, dev: &DeviceSpec) -> Partition {
    partition_with(graph, dev, PartitionOptions::default())
}

/// Partition a graph for a target device.
pub fn partition_with(graph: &Graph, dev: &DeviceSpec, opts: PartitionOptions) -> Partition {
    let consumers = graph.consumers();
    let mut in_chain = vec![false; graph.nodes.len()];
    let mut chains = Vec::new();

    for i in 0..graph.nodes.len() {
        if let Some(fc) = match_attention(graph, dev, &consumers, &in_chain, NodeId(i)) {
            for id in &fc.nodes {
                in_chain[id.0] = true;
            }
            chains.push(fc);
        }
    }
    for i in 0..graph.nodes.len() {
        if let Some(fc) = match_linear_chain(graph, dev, &consumers, &in_chain, NodeId(i), true) {
            for id in &fc.nodes {
                in_chain[id.0] = true;
            }
            chains.push(fc);
        }
    }

    // Stitching pass 1: attach prologue/epilogue glue to the chains the
    // gated matcher already extracted (pure traffic saving, no re-gate).
    // `chain_outputs` is kept current as stitches land: an epilogue
    // moves a chain's output (e.g. `down` → `ln2`), and downstream
    // chains must see the *new* output as materialized — a BERT layer's
    // `res1 = proj + ln2_prev` folds its residual only if the previous
    // layer's stitched output counts as available.
    let mut chain_outputs: Vec<NodeId> = chains.iter().map(|c| c.output).collect();
    for (ci, fc) in chains.iter_mut().enumerate() {
        if fc.chain.has_softmax() {
            continue; // attention keeps its seed shape (and rest split)
        }
        if let Some(st) = attach_stitch(graph, &consumers, &in_chain, &chain_outputs, fc) {
            if opts.stitch {
                for id in &st.nodes {
                    in_chain[id.0] = true;
                }
                chain_outputs[ci] = st.output;
                *fc = st;
            }
            // !opts.stitch: keep the plain chain; glue stays in `rest`.
        }
    }

    // Stitching pass 2 (second chance): re-visit Linear chains the MBCI
    // headroom gate rejected. Grown un-gated and stitched, the raw-f32
    // prologue/epilogue reads fatten each op's denominator — a
    // transformer FFN drops below the ridge once its `LayerNorm → … →
    // residual Add (→ LayerNorm)` round trips are folded in. A chain is
    // only accepted here if at least one stitch attaches AND every op's
    // stitched intensity sits below the (full, headroom-free) ridge.
    let ridge = dev.ridge_flops_per_byte(graph.dtype);
    for i in 0..graph.nodes.len() {
        if in_chain[i] {
            continue;
        }
        let Some(fc) = match_linear_chain(graph, dev, &consumers, &in_chain, NodeId(i), false)
        else {
            continue;
        };
        let Some(st) = attach_stitch(graph, &consumers, &in_chain, &chain_outputs, &fc) else {
            continue;
        };
        if !(0..st.chain.num_ops()).all(|op| st.chain.stitched_op_intensity(op) < ridge) {
            continue;
        }
        for id in &fc.nodes {
            in_chain[id.0] = true;
        }
        if opts.stitch {
            for id in &st.nodes {
                in_chain[id.0] = true;
            }
            chain_outputs.push(st.output);
            chains.push(st);
        } else {
            chain_outputs.push(fc.output);
            chains.push(fc);
        }
    }

    // Storage-precision fixup, once every stitching decision has
    // landed: a prologue's raw A operand is read at the precision its
    // producer actually stores. A fused chain without a tail stitch
    // quantizes its output to the chain dtype on store; everything else
    // (graph inputs, reference-step values, stitched-tail outputs)
    // crosses the unfused boundary in f32.
    let half_outputs: Vec<NodeId> = chains
        .iter()
        .filter(|c| c.chain.stitch_epilogue.is_none())
        .map(|c| c.output)
        .collect();
    for fc in &mut chains {
        if let Some(p) = fc.chain.prologue.as_mut() {
            p.a_half = half_outputs.contains(&fc.data_inputs[0]);
        }
    }

    let rest = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| !in_chain[*i] && !matches!(n.op, Op::Input | Op::Weight))
        .map(|(i, _)| NodeId(i))
        .collect();

    Partition { chains, rest }
}

/// Try to stitch the elementwise glue around `fc` into the chain
/// kernel. Returns the stitched chain (with `fc` as its unstitched
/// twin) if at least one of prologue/epilogue attaches, `None`
/// otherwise. Claim guards: every absorbed node must be unclaimed, not
/// a graph output, and consumed only inside the stitched kernel; every
/// new data input must be *materialized* (a leaf, a rest node, or
/// another chain's output — never a fused interior value).
fn attach_stitch(
    graph: &Graph,
    consumers: &[Vec<NodeId>],
    in_chain: &[bool],
    chain_outputs: &[NodeId],
    fc: &FusedChain,
) -> Option<FusedChain> {
    let available =
        |n: NodeId| -> bool { !in_chain[n.0] || chain_outputs.contains(&n) || n == fc.output };
    let is_output = |n: NodeId| graph.outputs.contains(&n);

    // --- Epilogue candidate: chain-out → sole-consumer Add (→ LN). ---
    let mut epi: Option<(NodeId, Option<NodeId>, NodeId)> = None; // (add, ln2, other)
    if !is_output(fc.output) {
        if let Some(add) = sole_consumer(consumers, fc.output) {
            if matches!(graph.node(add).op, Op::Add) && !in_chain[add.0] {
                let ins = &graph.node(add).inputs;
                let other = if ins[0] == fc.output && ins[1] != fc.output {
                    Some(ins[1])
                } else if ins[1] == fc.output && ins[0] != fc.output {
                    Some(ins[0])
                } else {
                    None
                };
                if let Some(other) = other {
                    if graph.node(other).shape == graph.node(fc.output).shape {
                        let mut ln2 = None;
                        if !is_output(add) {
                            if let Some(l) = sole_consumer(consumers, add) {
                                let ln_node = graph.node(l);
                                let affine_ok = match ln_node.inputs.len() {
                                    1 => true,
                                    3 => {
                                        let dl = *fc.chain.dims.last().unwrap();
                                        graph.node(ln_node.inputs[1]).shape == [dl]
                                            && graph.node(ln_node.inputs[2]).shape == [dl]
                                    }
                                    _ => false,
                                };
                                if matches!(ln_node.op, Op::LayerNorm)
                                    && !in_chain[l.0]
                                    && affine_ok
                                {
                                    ln2 = Some(l);
                                }
                            }
                        }
                        epi = Some((add, ln2, other));
                    }
                }
            }
        }
    }

    // --- Prologue candidate: (Add →)? affine LayerNorm → chain A. ---
    // Affine is required: the zero-padded γ/β strips zero out-of-range
    // tile columns exactly, matching the unstitched layout's zero-padded
    // loads bit-for-bit; a plain LN would leave `-mean·rstd` residue in
    // padding.
    let mut pro: Option<(Option<NodeId>, NodeId, NodeId, Option<NodeId>)> = None; // (res1, ln, raw, x)
    let a0 = fc.data_inputs[0];
    let a0_node = graph.node(a0);
    if !fc.transposed_inputs[0]
        && matches!(a0_node.op, Op::LayerNorm)
        && a0_node.inputs.len() == 3
        && !in_chain[a0.0]
        && !is_output(a0)
        && graph.node(a0_node.inputs[1]).shape == [fc.chain.dims[0]]
        && graph.node(a0_node.inputs[2]).shape == [fc.chain.dims[0]]
    {
        let first = fc.nodes[0];
        let tail_add = epi.map(|(a, _, _)| a);
        let consumed_in_kernel = consumers[a0.0]
            .iter()
            .all(|c| *c == first || Some(*c) == tail_add);
        if consumed_in_kernel {
            let src = a0_node.inputs[0];
            if matches!(graph.node(src).op, Op::Add)
                && !in_chain[src.0]
                && !is_output(src)
                && sole_consumer(consumers, src) == Some(a0)
            {
                let (p, x) = (graph.node(src).inputs[0], graph.node(src).inputs[1]);
                if available(p)
                    && available(x)
                    && graph.node(p).shape == a0_node.shape
                    && graph.node(x).shape == a0_node.shape
                {
                    pro = Some((Some(src), a0, p, Some(x)));
                }
            }
            if pro.is_none() && available(src) && graph.node(src).shape == a0_node.shape {
                pro = Some((None, a0, src, None));
            }
        }
    }

    // --- Resolve the epilogue's residual source. ---
    let epi = epi.and_then(|(add, ln2, other)| {
        let source = match &pro {
            Some((_, ln, _, _)) if other == *ln => ResidualSource::PrologueOut,
            _ => {
                if !available(other) {
                    return None; // residual value never materialized
                }
                ResidualSource::External
            }
        };
        Some((add, ln2, other, source))
    });

    if pro.is_none() && epi.is_none() {
        return None;
    }

    let mut chain = fc.chain.clone();
    let mut nodes = Vec::new();
    let mut data_inputs = fc.data_inputs.clone();
    let mut output = fc.output;
    if let Some((res1, ln, raw, x)) = pro {
        chain.prologue = Some(PrologueSpec {
            residual: x.is_some(),
            affine: true,
            a_half: false, // storage precision resolved after all passes
            eps: LN_EPS,
        });
        data_inputs[0] = raw;
        nodes.extend(res1);
        nodes.push(ln);
    }
    nodes.extend_from_slice(&fc.nodes);
    if let Some((add, ln2, _, source)) = epi {
        chain.stitch_epilogue = Some(EpilogueStitch {
            residual: source,
            layer_norm: ln2.is_some(),
            affine: ln2
                .map(|l| graph.node(l).inputs.len() == 3)
                .unwrap_or(false),
            eps: LN_EPS,
        });
        nodes.push(add);
        nodes.extend(ln2);
        output = ln2.unwrap_or(add);
    }
    // Append the stitched aux operands in `ChainSpec::aux_inputs` order:
    // prologue (residual, γ, β) then tail (residual, γ, β).
    if let Some((_, ln, _, x)) = pro {
        data_inputs.extend(x);
        data_inputs.push(graph.node(ln).inputs[1]);
        data_inputs.push(graph.node(ln).inputs[2]);
    }
    if let Some((_, ln2, other, source)) = epi {
        if source == ResidualSource::External {
            data_inputs.push(other);
        }
        if let Some(l) = ln2 {
            if graph.node(l).inputs.len() == 3 {
                data_inputs.push(graph.node(l).inputs[1]);
                data_inputs.push(graph.node(l).inputs[2]);
            }
        }
    }
    let mut transposed = fc.transposed_inputs.clone();
    transposed.resize(data_inputs.len(), false);
    debug_assert_eq!(data_inputs.len(), chain.num_inputs());
    Some(FusedChain {
        chain,
        nodes,
        data_inputs,
        output,
        transposed_inputs: transposed,
        unstitched: Some(Box::new(fc.clone())),
    })
}

/// The single consumer of `id`, if it has exactly one.
fn sole_consumer(consumers: &[Vec<NodeId>], id: NodeId) -> Option<NodeId> {
    match consumers[id.0].as_slice() {
        [c] => Some(*c),
        _ => None,
    }
}

/// Map a single-input element-wise op onto its chain epilogue.
fn elementwise_epilogue(op: &Op) -> Option<Epilogue> {
    match op {
        Op::Relu => Some(Epilogue::Relu),
        Op::Gelu => Some(Epilogue::Gelu),
        Op::Scale(f) => Some(Epilogue::Scale(*f)),
        _ => None,
    }
}

/// Try to match an (optionally masked) attention module anchored at a
/// softmax node. Validates every Q/K/V shape constraint; any mismatch
/// skips the pattern rather than emitting a broken chain.
fn match_attention(
    graph: &Graph,
    dev: &DeviceSpec,
    consumers: &[Vec<NodeId>],
    in_chain: &[bool],
    sm: NodeId,
) -> Option<FusedChain> {
    let node = graph.node(sm);
    let Op::Softmax { scale } = node.op else {
        return None;
    };
    if in_chain[sm.0] {
        return None;
    }

    // Producer side: either `QKᵀ` directly, or `QKᵀ + mask` with the
    // mask a graph leaf (Input/Weight) of the scores' exact shape.
    let mut mask: Option<NodeId> = None;
    let mut add: Option<NodeId> = None;
    let mut qk = node.inputs[0];
    if matches!(graph.node(qk).op, Op::Add) {
        let a = qk;
        if in_chain[a.0] || sole_consumer(consumers, a) != Some(sm) {
            return None;
        }
        let (x, y) = (graph.node(a).inputs[0], graph.node(a).inputs[1]);
        let is_qk = |n: NodeId| matches!(graph.node(n).op, Op::BatchMatMul { transpose_b: true });
        let is_leaf = |n: NodeId| matches!(graph.node(n).op, Op::Input | Op::Weight);
        let (bmm, mk) = if is_qk(x) && is_leaf(y) {
            (x, y)
        } else if is_qk(y) && is_leaf(x) {
            (y, x)
        } else {
            return None;
        };
        // The mask must match the *scores* (the BatchMatMul output)
        // exactly — no broadcast. Comparing against the Add node would
        // be vacuous when the mask is the Add's first operand, since
        // the builder copies the Add's shape from that operand.
        if graph.node(mk).shape != graph.node(bmm).shape {
            return None;
        }
        add = Some(a);
        mask = Some(mk);
        qk = bmm;
    }
    let Op::BatchMatMul { transpose_b: true } = graph.node(qk).op else {
        return None;
    };
    if in_chain[qk.0] || sole_consumer(consumers, qk) != Some(add.unwrap_or(sm)) {
        return None;
    }

    // Consumer side: the probabilities feed exactly one `P·V`.
    let pv = sole_consumer(consumers, sm)?;
    let Op::BatchMatMul { transpose_b: false } = graph.node(pv).op else {
        return None;
    };
    if in_chain[pv.0] || graph.node(pv).inputs[0] != sm {
        return None;
    }

    let q = graph.node(qk).inputs[0];
    let k = graph.node(qk).inputs[1];
    let v = graph.node(pv).inputs[1];
    let qs = &graph.node(q).shape;
    let ks = &graph.node(k).shape;
    let vs = &graph.node(v).shape;

    // Shape validation: equal ranks ≥ 2, identical batch dims, matching
    // contraction dims for both matmuls (`QKᵀ` contracts the head dim,
    // `P·V` contracts the sequence dim).
    let rank = qs.len();
    if rank < 2 || ks.len() != rank || vs.len() != rank {
        return None;
    }
    if qs[..rank - 2] != ks[..rank - 2] || qs[..rank - 2] != vs[..rank - 2] {
        return None;
    }
    if qs[rank - 1] != ks[rank - 1] || vs[rank - 2] != ks[rank - 2] {
        return None;
    }

    let batch: u64 = qs[..rank - 2].iter().product();
    let epilogue0 = if mask.is_some() {
        Epilogue::MaskedSoftmax { scale }
    } else {
        Epilogue::Softmax { scale }
    };
    let chain = ChainSpec {
        name: format!("{}::{}", graph.name, node.name),
        batch,
        m: qs[rank - 2],
        dims: vec![qs[rank - 1], ks[rank - 2], vs[rank - 1]],
        epilogues: vec![epilogue0, Epilogue::None],
        biases: vec![false, false],
        dtype: graph.dtype,
        prologue: None,
        stitch_epilogue: None,
    };
    if !chain.is_memory_bound(dev) {
        return None;
    }

    let mut nodes = vec![qk];
    nodes.extend(add);
    nodes.extend([sm, pv]);
    let mut data_inputs = vec![q, k, v];
    let mut transposed = vec![false, true, false];
    if let Some(mk) = mask {
        data_inputs.push(mk);
        transposed.push(false);
    }
    Some(FusedChain {
        chain,
        nodes,
        data_inputs,
        output: pv,
        transposed_inputs: transposed,
        unstitched: None,
    })
}

/// Headroom the Linear-chain growth gate applies to the device ridge
/// point: a stage only joins a chain while its standalone intensity
/// stays below `HEADROOM × ridge`. Borderline operators (within ~10 %
/// of the ridge) are technically memory bound but gain nothing in
/// practice — the marginal traffic saving is eaten by the fused
/// kernel's reduced parallelism, so fusing them regresses end-to-end
/// time (measured on the Fig. 9 BERT-Small FFN, φ ≈ 0.99 × ridge).
/// Attention keeps the paper's plain test: its row-wise softmax makes
/// fusion pay far from the ridge.
pub const CHAIN_MBCI_HEADROOM: f64 = 0.9;

/// One matched stage of a Linear chain.
struct Stage {
    /// The `Linear` node.
    linear: NodeId,
    /// Its weight operand.
    weight: NodeId,
    /// Its bias operand, if the layer is biased.
    bias: Option<NodeId>,
    /// Element-wise node fused after this stage (epilogue), if any.
    ew: Option<NodeId>,
    /// The fused epilogue.
    epilogue: Epilogue,
}

/// Greedily grow a Linear chain forward from `start`. With `gated`,
/// a stage only joins while the whole prefix still classifies as
/// memory bound (the seed behavior); un-gated growth is used by the
/// second-chance stitching pass, which applies its own stitched-
/// intensity gate afterwards.
fn match_linear_chain(
    graph: &Graph,
    dev: &DeviceSpec,
    consumers: &[Vec<NodeId>],
    in_chain: &[bool],
    start: NodeId,
    gated: bool,
) -> Option<FusedChain> {
    let linear_parts = |id: NodeId| -> Option<(NodeId, NodeId, Option<NodeId>, u64)> {
        let n = graph.node(id);
        let Op::Linear = n.op else {
            return None;
        };
        if in_chain[id.0] || n.inputs.len() < 2 || n.inputs.len() > 3 {
            return None;
        }
        let w = n.inputs[1];
        let ws = &graph.node(w).shape;
        if ws.len() != 2 {
            return None;
        }
        let bias = n.inputs.get(2).copied();
        if let Some(b) = bias {
            // The bias must be a `[out_features]` vector; anything else
            // stays with the fallback backend instead of miscompiling.
            if graph.node(b).shape != [ws[1]] {
                return None;
            }
        }
        Some((n.inputs[0], w, bias, ws[1]))
    };

    let (x, w0, b0, first_out) = linear_parts(start)?;
    let xs = &graph.node(x).shape;
    let k = *xs.last()?;
    let m: u64 = xs[..xs.len() - 1].iter().product();
    if graph.node(w0).shape[0] != k {
        return None;
    }

    // The per-prefix MBCI gate (see [`CHAIN_MBCI_HEADROOM`]). Each op's
    // standalone intensity φ = 2mnk/((mk + kn + mn)·esz) depends only
    // on its own (m, k, n), so extending a passing prefix only requires
    // checking the newly appended op.
    let gated_ridge = dev.ridge_flops_per_byte(graph.dtype) * CHAIN_MBCI_HEADROOM;
    let esz = graph.dtype.size_bytes() as f64;
    let op_is_mbci = |kd: u64, nd: u64| -> bool {
        if !gated {
            return true;
        }
        let (mf, kf, nf) = (m as f64, kd as f64, nd as f64);
        let phi = 2.0 * mf * nf * kf / ((mf * kf + kf * nf + mf * nf) * esz);
        phi < gated_ridge
    };

    let mut dims = vec![k, first_out];
    if !op_is_mbci(k, first_out) {
        return None;
    }
    let mut stages = vec![Stage {
        linear: start,
        weight: w0,
        bias: b0,
        ew: None,
        epilogue: Epilogue::None,
    }];
    let mut tail = start;

    // Grow forward one hop at a time: an optional single-consumer
    // element-wise op, then another Linear of matching input width.
    while let Some(hop) = sole_consumer(consumers, tail) {
        let mut nxt = hop;
        let mut ew: Option<(NodeId, Epilogue)> = None;
        if let Some(e) = elementwise_epilogue(&graph.node(nxt).op) {
            if in_chain[nxt.0] {
                break;
            }
            let Some(after) = sole_consumer(consumers, nxt) else {
                break;
            };
            ew = Some((nxt, e));
            nxt = after;
        }
        let Some((lx, w, bias, n)) = linear_parts(nxt) else {
            break;
        };
        // The linear must actually consume the chain tail (not use it as
        // a weight) and agree on the contraction width.
        let expected_input = ew.map(|(e, _)| e).unwrap_or(tail);
        if lx != expected_input || graph.node(w).shape[0] != *dims.last().unwrap() {
            break;
        }
        if !op_is_mbci(*dims.last().unwrap(), n) {
            break; // fusion stops paying here
        }
        dims.push(n);
        let last = stages.last_mut().unwrap();
        if let Some((enode, e)) = ew {
            last.ew = Some(enode);
            last.epilogue = e;
        }
        stages.push(Stage {
            linear: nxt,
            weight: w,
            bias,
            ew: None,
            epilogue: Epilogue::None,
        });
        tail = nxt;
    }

    if stages.len() < 2 {
        return None;
    }

    // Absorb one trailing element-wise op as the final epilogue (its
    // fan-out does not matter — it becomes the chain output).
    let mut output = tail;
    if let Some(enode) = sole_consumer(consumers, tail) {
        if !in_chain[enode.0] {
            if let Some(e) = elementwise_epilogue(&graph.node(enode).op) {
                let last = stages.last_mut().unwrap();
                last.ew = Some(enode);
                last.epilogue = e;
                output = enode;
            }
        }
    }

    let chain = ChainSpec {
        name: format!("{}::{}", graph.name, graph.node(tail).name),
        batch: 1,
        m,
        dims,
        epilogues: stages.iter().map(|s| s.epilogue).collect(),
        biases: stages.iter().map(|s| s.bias.is_some()).collect(),
        dtype: graph.dtype,
        prologue: None,
        stitch_epilogue: None,
    };

    let mut nodes = Vec::new();
    for s in &stages {
        nodes.push(s.linear);
        nodes.extend(s.ew);
    }
    let mut data_inputs = vec![x];
    data_inputs.extend(stages.iter().map(|s| s.weight));
    // Aux inputs in `ChainSpec::aux_inputs` order (per-stage biases).
    data_inputs.extend(stages.iter().filter_map(|s| s.bias));
    let transposed = vec![false; data_inputs.len()];
    Some(FusedChain {
        chain,
        nodes,
        data_inputs,
        output,
        transposed_inputs: transposed,
        unstitched: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use mcfuser_sim::{DType, DeviceSpec};

    /// A bare attention sub-graph: Q,K,V inputs → QKᵀ → softmax → ·V.
    fn attention_graph(heads: u64, m: u64, k: u64) -> Graph {
        let mut gb = GraphBuilder::new("attn", DType::F16);
        let q = gb.input("q", vec![heads, m, k]);
        let kk = gb.input("k", vec![heads, m, k]);
        let v = gb.input("v", vec![heads, m, k]);
        let s = gb.batch_matmul("qk", q, kk, true);
        let p = gb.softmax("sm", s, 1.0 / (k as f32).sqrt());
        let o = gb.batch_matmul("pv", p, v, false);
        gb.finish(vec![o])
    }

    #[test]
    fn attention_is_extracted() {
        let g = attention_graph(8, 512, 64);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let c = &part.chains[0].chain;
        assert_eq!(c.batch, 8);
        assert_eq!(c.m, 512);
        assert_eq!(c.dims, vec![64, 512, 64]);
        assert!(c.has_softmax());
        assert!(part.rest.is_empty());
    }

    #[test]
    fn masked_attention_is_extracted() {
        let mut gb = GraphBuilder::new("mattn", DType::F16);
        let q = gb.input("q", vec![8, 512, 64]);
        let k = gb.input("k", vec![8, 512, 64]);
        let v = gb.input("v", vec![8, 512, 64]);
        let mask = gb.input("mask", vec![8, 512, 512]);
        let s = gb.batch_matmul("qk", q, k, true);
        let ms = gb.add("masked", s, mask);
        let p = gb.softmax("sm", ms, 1.0 / 8.0);
        let o = gb.batch_matmul("pv", p, v, false);
        let g = gb.finish(vec![o]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        assert!(matches!(
            fc.chain.epilogues[0],
            Epilogue::MaskedSoftmax { .. }
        ));
        assert_eq!(fc.nodes.len(), 4); // qk, add, softmax, pv
        assert_eq!(fc.data_inputs.len(), 4); // q, k, v, mask
        assert_eq!(fc.data_inputs[3], mask);
        assert!(part.rest.is_empty(), "{:?}", part.rest);
    }

    #[test]
    fn attention_mask_of_wrong_shape_is_not_fused() {
        let mut gb = GraphBuilder::new("mattn", DType::F16);
        let q = gb.input("q", vec![8, 512, 64]);
        let k = gb.input("k", vec![8, 512, 64]);
        let v = gb.input("v", vec![8, 512, 64]);
        // A bogus mask shape (would need broadcast): not fusable.
        let mask = gb.input("mask", vec![512, 512]);
        let s = gb.batch_matmul("qk", q, k, true);
        let ms = gb.add("masked", s, mask);
        let p = gb.softmax("sm", ms, 1.0 / 8.0);
        let o = gb.batch_matmul("pv", p, v, false);
        let g = gb.finish(vec![o]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());

        // Same, with the mask as the Add's FIRST operand — the builder
        // copies the Add's shape from it, so a naive shape check against
        // the Add node is vacuous in this order.
        let mut gb = GraphBuilder::new("mattn2", DType::F16);
        let q = gb.input("q", vec![8, 512, 64]);
        let k = gb.input("k", vec![8, 512, 64]);
        let v = gb.input("v", vec![8, 512, 64]);
        let mask = gb.input("mask", vec![512, 512]);
        let s = gb.batch_matmul("qk", q, k, true);
        let ms = gb.add("masked", mask, s);
        let p = gb.softmax("sm", ms, 1.0 / 8.0);
        let o = gb.batch_matmul("pv", p, v, false);
        let g = gb.finish(vec![o]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty(), "mask-first operand order");
    }

    /// Regression (bugfix): the attention matcher used to accept Q/K/V
    /// with mismatched batch or contraction dims without ever comparing
    /// their shapes.
    #[test]
    fn attention_with_mismatched_shapes_is_rejected() {
        let dev = DeviceSpec::a100();
        // K contraction dim differs from Q's.
        let mut gb = GraphBuilder::new("bad1", DType::F16);
        let q = gb.input("q", vec![8, 512, 64]);
        let k = gb.input("k", vec![8, 512, 32]);
        let v = gb.input("v", vec![8, 512, 64]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0);
        let o = gb.batch_matmul("pv", p, v, false);
        let g = gb.finish(vec![o]);
        assert!(partition(&g, &dev).chains.is_empty(), "k dim mismatch");

        // V sequence dim does not match the scores' columns.
        let mut gb = GraphBuilder::new("bad2", DType::F16);
        let q = gb.input("q", vec![8, 512, 64]);
        let k = gb.input("k", vec![8, 512, 64]);
        let v = gb.input("v", vec![8, 256, 64]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0);
        let o = gb.batch_matmul("pv", p, v, false);
        let g = gb.finish(vec![o]);
        assert!(partition(&g, &dev).chains.is_empty(), "v rows mismatch");

        // Batch dims disagree.
        let mut gb = GraphBuilder::new("bad3", DType::F16);
        let q = gb.input("q", vec![8, 512, 64]);
        let k = gb.input("k", vec![4, 512, 64]);
        let v = gb.input("v", vec![8, 512, 64]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0);
        let o = gb.batch_matmul("pv", p, v, false);
        let g = gb.finish(vec![o]);
        assert!(partition(&g, &dev).chains.is_empty(), "batch mismatch");
    }

    #[test]
    fn mbci_gemm_chain_is_extracted() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, false);
        let z = gb.linear("fc2", y, 64, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let c = &part.chains[0].chain;
        assert_eq!((c.m, c.dims.clone()), (512, vec![64, 256, 64]));
        assert!(part.rest.is_empty());
    }

    /// The tentpole: a 4-GEMM chain with mixed per-stage epilogues comes
    /// out as ONE fused chain.
    #[test]
    fn long_chain_with_mixed_epilogues_is_extracted() {
        let mut gb = GraphBuilder::new("mlp", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let a = gb.linear("fc1", x, 256, false);
        let a = gb.gelu("g1", a);
        let a = gb.linear("fc2", a, 128, false);
        let a = gb.relu("r2", a);
        let a = gb.linear("fc3", a, 256, false);
        let a = gb.linear("fc4", a, 64, false);
        let g = gb.finish(vec![a]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let c = &part.chains[0].chain;
        assert_eq!(c.num_ops(), 4);
        assert_eq!(c.dims, vec![64, 256, 128, 256, 64]);
        assert_eq!(
            c.epilogues,
            vec![
                Epilogue::Gelu,
                Epilogue::Relu,
                Epilogue::None,
                Epilogue::None
            ]
        );
        assert!(part.rest.is_empty(), "{:?}", part.rest);
    }

    #[test]
    fn chain_growth_stops_at_compute_bound_stage() {
        // fc1 and fc2 are memory bound; fc3's fat 2048×2048 reduction is
        // compute bound, so the chain must stop before it.
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let a = gb.linear("fc1", x, 256, false);
        let b = gb.linear("fc2", a, 2048, false);
        let c = gb.linear("fc3", b, 2048, false);
        let g = gb.finish(vec![c]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        assert_eq!(part.chains[0].chain.dims, vec![64, 256, 2048]);
        assert_eq!(part.rest, vec![c]);
    }

    #[test]
    fn compute_bound_chain_is_rejected() {
        // BERT-style FFN: 768→3072→768 at seq 512 has fat reductions and
        // is compute bound → the partitioner must leave it alone.
        let mut gb = GraphBuilder::new("ffn", DType::F16);
        let x = gb.input("x", vec![512, 768]);
        let y = gb.linear("fc1", x, 3072, false);
        let r = gb.relu("act", y);
        let z = gb.linear("fc2", r, 768, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());
        assert_eq!(part.rest.len(), 3); // fc1, act, fc2
    }

    #[test]
    fn f32_ridge_rejects_what_f16_accepts() {
        // The MBCI test depends on dtype: the f32 ridge is ~16× lower,
        // so the same shape flips from fused to rejected.
        let build = |dtype: DType| {
            let mut gb = GraphBuilder::new("chain", dtype);
            let x = gb.input("x", vec![512, 64]);
            let y = gb.linear("fc1", x, 256, false);
            let z = gb.linear("fc2", y, 64, false);
            gb.finish(vec![z])
        };
        let dev = DeviceSpec::a100();
        assert_eq!(partition(&build(DType::F16), &dev).chains.len(), 1);
        assert!(partition(&build(DType::F32), &dev).chains.is_empty());
    }

    #[test]
    fn relu_between_linears_becomes_epilogue() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, false);
        let r = gb.relu("act", y);
        let z = gb.linear("fc2", r, 64, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        assert_eq!(part.chains[0].chain.epilogues[0], Epilogue::Relu);
        assert_eq!(part.chains[0].nodes.len(), 3);
    }

    #[test]
    fn trailing_elementwise_becomes_final_epilogue() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, false);
        let z = gb.linear("fc2", y, 64, false);
        let r = gb.relu("out_act", z);
        let g = gb.finish(vec![r]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        assert_eq!(fc.chain.epilogues, vec![Epilogue::None, Epilogue::Relu]);
        assert_eq!(fc.output, r);
        assert!(part.rest.is_empty());
    }

    #[test]
    fn biased_linears_fuse_with_bias_stages() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, true);
        let z = gb.linear("fc2", y, 64, true);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        assert_eq!(fc.chain.biases, vec![true, true]);
        // data inputs: x, w1, w2, b1, b2.
        assert_eq!(fc.data_inputs.len(), 5);
        assert_eq!(fc.chain.num_inputs(), 5);
        assert!(part.rest.is_empty());
    }

    #[test]
    fn malformed_bias_shape_is_not_fused() {
        // A bias that is not `[out_features]` must leave the chain to
        // the fallback backend, not reach lowering.
        let mut gb = GraphBuilder::new("badbias", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let w1 = gb.weight("w1", vec![64, 256]);
        let bad = gb.weight("b1", vec![32]); // wrong: should be [256]
        let y = gb.linear_shared("fc1", x, w1, Some(bad));
        let z = gb.linear("fc2", y, 64, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());
    }

    #[test]
    fn multi_consumer_intermediate_blocks_fusion() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, false);
        let z = gb.linear("fc2", y, 64, false);
        let w = gb.relu("side", y); // second consumer of y
        let g = gb.finish(vec![z, w]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());
    }

    #[test]
    fn fanout_inside_long_chain_splits_it() {
        // fc2's output feeds both fc3 and a side branch: the chain must
        // stop at fc2; fc3→fc4 forms its own chain.
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let a = gb.linear("fc1", x, 256, false);
        let b = gb.linear("fc2", a, 128, false);
        let c = gb.linear("fc3", b, 256, false);
        let d = gb.linear("fc4", c, 64, false);
        let side = gb.relu("side", b);
        let g = gb.finish(vec![d, side]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 2);
        assert_eq!(part.chains[0].chain.dims, vec![64, 256, 128]);
        assert_eq!(part.chains[1].chain.dims, vec![128, 256, 64]);
        assert_eq!(part.rest, vec![side]);
    }

    /// Regression (bugfix): a graph node must be claimed by at most one
    /// chain even when patterns overlap (the seed matcher consumed
    /// pattern-2's mid elementwise node without an `in_chain` guard).
    #[test]
    fn overlapping_patterns_claim_each_node_once() {
        let mut gb = GraphBuilder::new("overlap", DType::F16);
        // Attention whose output feeds a scale then a linear chain.
        let q = gb.input("q", vec![8, 512, 64]);
        let k = gb.input("k", vec![8, 512, 64]);
        let v = gb.input("v", vec![8, 512, 64]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 0.125);
        let o = gb.batch_matmul("pv", p, v, false);
        let sc = gb.scale("sc", o, 0.5);
        let a = gb.linear("fc1", sc, 256, false);
        let b = gb.linear("fc2", a, 64, false);
        let g = gb.finish(vec![b]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 2);
        let mut seen = std::collections::HashSet::new();
        for fc in &part.chains {
            for n in &fc.nodes {
                assert!(seen.insert(*n), "node {n:?} claimed twice");
            }
        }
        // The scale between the patterns belongs to exactly one chain
        // (absorbed as the attention chain's final epilogue) or to rest,
        // never to both.
        let claimed = seen.contains(&sc);
        let in_rest = part.rest.contains(&sc);
        assert!(claimed != in_rest, "sc must be claimed exactly once");
    }

    #[test]
    fn shared_weights_between_chains() {
        // Two towers reuse the same weight tensors; both fuse, and the
        // shared weight nodes appear in both chains' data inputs.
        let mut gb = GraphBuilder::new("shared", DType::F16);
        let wa = gb.weight("wa", vec![64, 256]);
        let wb = gb.weight("wb", vec![256, 64]);
        let x1 = gb.input("x1", vec![512, 64]);
        let x2 = gb.input("x2", vec![512, 64]);
        let a1 = gb.linear_shared("t1.fc1", x1, wa, None);
        let o1 = gb.linear_shared("t1.fc2", a1, wb, None);
        let a2 = gb.linear_shared("t2.fc1", x2, wa, None);
        let o2 = gb.linear_shared("t2.fc2", a2, wb, None);
        let g = gb.finish(vec![o1, o2]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 2);
        for fc in &part.chains {
            assert!(fc.data_inputs.contains(&wa));
            assert!(fc.data_inputs.contains(&wb));
        }
        assert!(part.rest.is_empty());
    }

    /// A BERT-style FFN block with its residual/LayerNorm glue:
    /// `res1 = proj + x; ln1 = LN(res1); ffn = fc2(gelu(fc1(ln1)));
    /// ln2 = LN(ffn + ln1)`.
    fn ffn_block_graph(m: u64, d: u64, f: u64) -> (Graph, NodeId) {
        let mut gb = GraphBuilder::new("blk", DType::F16);
        let proj = gb.input("proj", vec![m, d]);
        let x = gb.input("x", vec![m, d]);
        let res1 = gb.add("res1", proj, x);
        let ln1 = gb.layer_norm_affine("ln1", res1);
        let up = gb.linear("up", ln1, f, true);
        let act = gb.gelu("act", up);
        let down = gb.linear("down", act, d, true);
        let res2 = gb.add("res2", down, ln1);
        let ln2 = gb.layer_norm_affine("ln2", res2);
        (gb.finish(vec![ln2]), ln2)
    }

    #[test]
    fn ffn_block_is_stitched_into_one_kernel() {
        // The bare FFN is rejected by the headroom gate (see
        // `compute_bound_chain_is_rejected`), but with the prologue and
        // epilogue round trips folded in, the second-chance pass accepts
        // it — the whole block becomes ONE fused kernel, zero rest.
        let (g, ln2) = ffn_block_graph(512, 512, 2048);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        let c = &fc.chain;
        assert_eq!(c.dims, vec![512, 2048, 512]);
        let p = c.prologue.expect("prologue attached");
        assert!(p.residual && p.affine);
        let e = c.stitch_epilogue.expect("epilogue attached");
        assert_eq!(e.residual, ResidualSource::PrologueOut);
        assert!(e.layer_norm && e.affine);
        assert_eq!(fc.output, ln2);
        // res1, ln1, up, act, down, res2, ln2 all claimed.
        assert_eq!(fc.nodes.len(), 7);
        assert!(part.rest.is_empty(), "{:?}", part.rest);
        // A, W_up, W_down, b_up, b_down, x, γ1, β1, γ2, β2.
        assert_eq!(fc.data_inputs.len(), 10);
        assert_eq!(fc.data_inputs.len(), c.num_inputs());
        // The twin is the plain (unstitched) chain over the same 3 core
        // nodes.
        let twin = fc.unstitched.as_ref().expect("twin present");
        assert!(!twin.chain.is_stitched());
        assert_eq!(twin.nodes.len(), 3);
        assert_eq!(fc.stitched_glue().len(), 4); // res1, ln1, res2, ln2
    }

    #[test]
    fn stitch_disabled_emits_the_twin_with_glue_in_rest() {
        let (g, _) = ffn_block_graph(512, 512, 2048);
        let part = partition_with(&g, &DeviceSpec::a100(), PartitionOptions { stitch: false });
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        assert!(!fc.chain.is_stitched());
        assert!(fc.unstitched.is_none());
        assert_eq!(fc.nodes.len(), 3); // up, act, down only
                                       // res1, ln1, res2, ln2 demoted to reference steps.
        assert_eq!(part.rest.len(), 4);
    }

    #[test]
    fn non_affine_layernorm_blocks_the_prologue() {
        // A plain LN cannot zero padded tile columns, so the prologue
        // must not attach; the epilogue still can.
        let mut gb = GraphBuilder::new("blk", DType::F16);
        let x = gb.input("x", vec![512, 512]);
        let ln1 = gb.layer_norm("ln1", x);
        let up = gb.linear("up", ln1, 2048, false);
        let down = gb.linear("down", up, 512, false);
        let res2 = gb.add("res2", down, ln1);
        let g = gb.finish(vec![res2]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let c = &part.chains[0].chain;
        assert!(c.prologue.is_none());
        // ln1 is consumed by up AND res2 but stays a materialized rest
        // node, so the tail residual reads it as an External aux.
        let e = c.stitch_epilogue.expect("epilogue attached");
        assert_eq!(e.residual, ResidualSource::External);
        assert!(!e.layer_norm);
        assert_eq!(part.rest, vec![ln1]);
    }

    #[test]
    fn graph_output_glue_is_not_claimed() {
        // res2 is ALSO a graph output: claiming ln2 would hide it, so
        // the epilogue must stop at the Add (which is the chain output,
        // hence still visible).
        let mut gb = GraphBuilder::new("blk", DType::F16);
        let proj = gb.input("proj", vec![512, 512]);
        let x = gb.input("x", vec![512, 512]);
        let res1 = gb.add("res1", proj, x);
        let ln1 = gb.layer_norm_affine("ln1", res1);
        let up = gb.linear("up", ln1, 2048, true);
        let down = gb.linear("down", up, 512, true);
        let res2 = gb.add("res2", down, ln1);
        let ln2 = gb.layer_norm_affine("ln2", res2);
        let g = gb.finish(vec![res2, ln2]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        let e = fc.chain.stitch_epilogue.expect("epilogue attached");
        assert!(!e.layer_norm, "ln2 must stay outside the kernel");
        assert_eq!(fc.output, res2);
        assert_eq!(part.rest, vec![ln2]);
    }

    #[test]
    fn second_chance_requires_a_stitch() {
        // Identical FFN shapes but fed by a plain Input: nothing to
        // stitch, so the second-chance pass must keep rejecting it.
        let mut gb = GraphBuilder::new("ffn", DType::F16);
        let x = gb.input("x", vec![512, 512]);
        let y = gb.linear("fc1", x, 2048, false);
        let r = gb.gelu("act", y);
        let z = gb.linear("fc2", r, 512, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());
        assert_eq!(part.rest.len(), 3);
    }

    #[test]
    fn stitched_partition_reference_matches_graph_reference() {
        // End-to-end value check: evaluating the stitched ChainSpec on
        // the graph's tensors must reproduce the graph evaluator's ln2
        // output except for the two fused-kernel quantization points —
        // which vanish when the values round-trip f16 exactly.
        use crate::reference::evaluate;
        use rand::{Rng, SeedableRng};
        let (g, ln2) = ffn_block_graph(64, 32, 128);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let fc = &part.chains[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut feeds = rustc_hash::FxHashMap::default();
        for (i, n) in g.nodes.iter().enumerate() {
            if matches!(n.op, Op::Input) {
                let len = n.shape.iter().product::<u64>() as usize;
                feeds.insert(
                    NodeId(i),
                    mcfuser_sim::HostTensor::from_vec(
                        &n.shape,
                        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                    ),
                );
            }
        }
        let values = evaluate(&g, &feeds, 123).unwrap();
        let inputs: Vec<_> = fc
            .data_inputs
            .iter()
            .map(|id| values[id.0].clone())
            .collect();
        let got = fc.chain.reference(&inputs);
        let want =
            mcfuser_sim::HostTensor::from_vec(&fc.chain.output_shape(), values[ln2.0].data.clone());
        // Not bit-identical to the *graph* (the graph never quantizes),
        // but within f16 rounding of it.
        let err = got.rel_l2_error(&want);
        assert!(err < 5e-3, "{err}");
    }

    #[test]
    fn rest_excludes_leaves() {
        let g = attention_graph(2, 64, 32);
        let part = partition(&g, &DeviceSpec::a100());
        for id in &part.rest {
            assert!(!matches!(g.node(*id).op, Op::Input | Op::Weight));
        }
    }
}
