//! Graph partitioner: carve MBCI sub-graphs out of an operator graph.
//!
//! Mirrors §V-B of the paper: "we employ a partitioner to segment the
//! model into MBCI sub-graphs and other components". Two patterns are
//! recognized:
//!
//! 1. **Attention**: `BatchMatMul(Q, Kᵀ) → Softmax → BatchMatMul(·, V)`;
//! 2. **GEMM chains**: `Linear → [elementwise] → Linear` (unbiased), kept
//!    only when the fused chain is actually *memory bound* on the target
//!    device — compute-bound chains gain nothing from fusion and are left
//!    to the per-operator backend (this is the paper's MBCI test doing
//!    real work: BERT's FFN block is rejected, its attention accepted).

use serde::{Deserialize, Serialize};

use mcfuser_sim::DeviceSpec;

use crate::chain::{ChainSpec, Epilogue};
use crate::graph::{Graph, NodeId, Op};

/// One fused MBCI sub-graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedChain {
    /// The extracted chain specification handed to the tuner.
    pub chain: ChainSpec,
    /// Graph nodes replaced by the fused kernel (compute + epilogues).
    pub nodes: Vec<NodeId>,
    /// Data inputs of the fused kernel in chain order: `A, W₀, W₁ …`.
    pub data_inputs: Vec<NodeId>,
    /// The node whose value the fused kernel produces.
    pub output: NodeId,
    /// Per data input: whether the graph stores it transposed relative to
    /// the chain layout (e.g. attention's K is `[N, K]` but the chain's
    /// `W₀` is `[K, N]`).
    pub transposed_inputs: Vec<bool>,
}

/// Result of partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Extracted MBCI sub-graphs.
    pub chains: Vec<FusedChain>,
    /// Compute/memory nodes not covered by any chain, in topological
    /// order (Input/Weight leaves excluded).
    pub rest: Vec<NodeId>,
}

/// Partition a graph for a target device.
pub fn partition(graph: &Graph, dev: &DeviceSpec) -> Partition {
    let consumers = graph.consumers();
    let mut in_chain = vec![false; graph.nodes.len()];
    let mut chains = Vec::new();

    // --- Pattern 1: attention -------------------------------------------
    for (i, node) in graph.nodes.iter().enumerate() {
        let Op::Softmax { scale } = node.op else {
            continue;
        };
        let sm = NodeId(i);
        // Producer: batched QKᵀ with a single consumer (the softmax).
        let qk = node.inputs[0];
        let Op::BatchMatMul { transpose_b: true } = graph.node(qk).op else {
            continue;
        };
        if consumers[qk.0].len() != 1 {
            continue;
        }
        // Consumer: P·V.
        if consumers[sm.0].len() != 1 {
            continue;
        }
        let pv = consumers[sm.0][0];
        let Op::BatchMatMul { transpose_b: false } = graph.node(pv).op else {
            continue;
        };
        if graph.node(pv).inputs[0] != sm {
            continue;
        }
        let q = graph.node(qk).inputs[0];
        let k = graph.node(qk).inputs[1];
        let v = graph.node(pv).inputs[1];
        let qs = &graph.node(q).shape;
        let ks = &graph.node(k).shape;
        let vs = &graph.node(v).shape;
        let rank = qs.len();
        let batch: u64 = qs[..rank - 2].iter().product();
        let chain = ChainSpec {
            name: format!("{}::{}", graph.name, node.name),
            batch,
            m: qs[rank - 2],
            dims: vec![qs[rank - 1], ks[ks.len() - 2], vs[vs.len() - 1]],
            epilogues: vec![Epilogue::Softmax { scale }, Epilogue::None],
            dtype: graph.dtype,
        };
        for id in [qk, sm, pv] {
            in_chain[id.0] = true;
        }
        chains.push(FusedChain {
            chain,
            nodes: vec![qk, sm, pv],
            data_inputs: vec![q, k, v],
            output: pv,
            transposed_inputs: vec![false, true, false],
        });
    }

    // --- Pattern 2: unbiased Linear → [elementwise] → Linear -------------
    for (i, node) in graph.nodes.iter().enumerate() {
        if in_chain[i] {
            continue;
        }
        let Op::Linear = node.op else { continue };
        if node.inputs.len() != 2 {
            continue; // biased: leave to epilogue-fusion backends
        }
        let l2 = NodeId(i);
        // Walk back through at most one element-wise op.
        let (mid_epilogue, l1) = match graph.node(node.inputs[0]).op {
            Op::Relu => {
                let relu = node.inputs[0];
                if consumers[relu.0].len() != 1 {
                    continue;
                }
                (Some((relu, Epilogue::Relu)), graph.node(relu).inputs[0])
            }
            Op::Scale(f) => {
                let sc = node.inputs[0];
                if consumers[sc.0].len() != 1 {
                    continue;
                }
                (Some((sc, Epilogue::Scale(f))), graph.node(sc).inputs[0])
            }
            _ => (None, node.inputs[0]),
        };
        let Op::Linear = graph.node(l1).op else {
            continue;
        };
        if graph.node(l1).inputs.len() != 2 || in_chain[l1.0] {
            continue;
        }
        if consumers[l1.0].len() != 1 {
            continue;
        }
        let x = graph.node(l1).inputs[0];
        let w1 = graph.node(l1).inputs[1];
        let w2 = node.inputs[1];
        let xs = &graph.node(x).shape;
        let k = *xs.last().unwrap();
        let m: u64 = xs[..xs.len() - 1].iter().product();
        let n = graph.node(w1).shape[1];
        let h = graph.node(w2).shape[1];
        let chain = ChainSpec {
            name: format!("{}::{}", graph.name, node.name),
            batch: 1,
            m,
            dims: vec![k, n, h],
            epilogues: vec![
                mid_epilogue.map(|(_, e)| e).unwrap_or(Epilogue::None),
                Epilogue::None,
            ],
            dtype: graph.dtype,
        };
        // The MBCI test: only fuse if the chain is memory bound here.
        if !chain.is_memory_bound(dev) {
            continue;
        }
        let mut nodes = vec![l1];
        if let Some((mid, _)) = mid_epilogue {
            nodes.push(mid);
        }
        nodes.push(l2);
        for id in &nodes {
            in_chain[id.0] = true;
        }
        chains.push(FusedChain {
            chain,
            nodes,
            data_inputs: vec![x, w1, w2],
            output: l2,
            transposed_inputs: vec![false; 3],
        });
    }

    let rest = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| !in_chain[*i] && !matches!(n.op, Op::Input | Op::Weight))
        .map(|(i, _)| NodeId(i))
        .collect();

    Partition { chains, rest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use mcfuser_sim::DType;

    /// A bare attention sub-graph: Q,K,V inputs → QKᵀ → softmax → ·V.
    fn attention_graph(heads: u64, m: u64, k: u64) -> Graph {
        let mut gb = GraphBuilder::new("attn", DType::F16);
        let q = gb.input("q", vec![heads, m, k]);
        let kk = gb.input("k", vec![heads, m, k]);
        let v = gb.input("v", vec![heads, m, k]);
        let s = gb.batch_matmul("qk", q, kk, true);
        let p = gb.softmax("sm", s, 1.0 / (k as f32).sqrt());
        let o = gb.batch_matmul("pv", p, v, false);
        gb.finish(vec![o])
    }

    #[test]
    fn attention_is_extracted() {
        let g = attention_graph(8, 512, 64);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let c = &part.chains[0].chain;
        assert_eq!(c.batch, 8);
        assert_eq!(c.m, 512);
        assert_eq!(c.dims, vec![64, 512, 64]);
        assert!(c.has_softmax());
        assert!(part.rest.is_empty());
    }

    #[test]
    fn mbci_gemm_chain_is_extracted() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, false);
        let z = gb.linear("fc2", y, 64, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        let c = &part.chains[0].chain;
        assert_eq!((c.m, c.dims.clone()), (512, vec![64, 256, 64]));
        assert!(part.rest.is_empty());
    }

    #[test]
    fn compute_bound_chain_is_rejected() {
        // BERT-style FFN: 768→3072→768 at seq 512 has fat reductions and
        // is compute bound → the partitioner must leave it alone.
        let mut gb = GraphBuilder::new("ffn", DType::F16);
        let x = gb.input("x", vec![512, 768]);
        let y = gb.linear("fc1", x, 3072, false);
        let r = gb.relu("act", y);
        let z = gb.linear("fc2", r, 768, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());
        assert_eq!(part.rest.len(), 3); // fc1, act, fc2
    }

    #[test]
    fn relu_between_linears_becomes_epilogue() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, false);
        let r = gb.relu("act", y);
        let z = gb.linear("fc2", r, 64, false);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert_eq!(part.chains.len(), 1);
        assert_eq!(part.chains[0].chain.epilogues[0], Epilogue::Relu);
        assert_eq!(part.chains[0].nodes.len(), 3);
    }

    #[test]
    fn biased_linears_not_chain_fused() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, true);
        let z = gb.linear("fc2", y, 64, true);
        let g = gb.finish(vec![z]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());
    }

    #[test]
    fn multi_consumer_intermediate_blocks_fusion() {
        let mut gb = GraphBuilder::new("chain", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.linear("fc1", x, 256, false);
        let z = gb.linear("fc2", y, 64, false);
        let w = gb.relu("side", y); // second consumer of y
        let g = gb.finish(vec![z, w]);
        let part = partition(&g, &DeviceSpec::a100());
        assert!(part.chains.is_empty());
    }

    #[test]
    fn rest_excludes_leaves() {
        let g = attention_graph(2, 64, 32);
        let part = partition(&g, &DeviceSpec::a100());
        for id in &part.rest {
            assert!(!matches!(g.node(*id).op, Op::Input | Op::Weight));
        }
    }
}
