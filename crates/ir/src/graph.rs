//! Operator-graph IR — the Relay-analogue front end.
//!
//! End-to-end models (BERT, ViT, MLP-Mixer) are expressed as DAGs of
//! high-level operators. The MCFuser compiler pipeline partitions these
//! graphs into MBCI sub-graphs (handed to the fusion tuner) and "the rest"
//! (handed to a Relay- or Ansor-style per-operator backend), mirroring
//! §V-B of the paper.

use serde::{Deserialize, Serialize};

use mcfuser_sim::DType;

/// Node identifier within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// High-level operator kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Activation input (fed by the caller).
    Input,
    /// Learned parameter (materialized from a seed).
    Weight,
    /// `y = x · W (+ bias)`; inputs: `[x, W]` or `[x, W, b]`.
    Linear,
    /// Batched matmul; inputs `[a, b]`, optionally with `b` transposed
    /// (used for `Q Kᵀ`).
    BatchMatMul {
        /// Interpret the second operand as transposed.
        transpose_b: bool,
    },
    /// Row-wise softmax over the last dim, with pre-scale.
    Softmax {
        /// Pre-softmax multiplier.
        scale: f32,
    },
    /// Element-wise addition of two same-shaped tensors.
    Add,
    /// Element-wise ReLU.
    Relu,
    /// Element-wise GELU (tanh approximation).
    Gelu,
    /// Layer normalization over the last dim. Inputs are `[x]` (plain) or
    /// `[x, gamma, beta]` (affine, with rank-1 `[d]` scale/shift weights).
    LayerNorm,
    /// Multiply by a constant.
    Scale(f32),
    /// Pure metadata reshape (e.g. merging/splitting attention heads).
    Reshape,
    /// Split a `[t, heads·hd]` activation into per-head panels
    /// `[heads, t, hd]`. Unlike [`Op::Reshape`] this is a real permute
    /// (data movement), so per-head rows are contiguous — the layout a
    /// KV cache stores and a decode-step attention chain reads. For
    /// `t == 1` the permute degenerates to an element-order-preserving
    /// copy, which is what keeps single-token decode steps bit-aligned
    /// with multi-token prefill passes.
    SplitHeads {
        /// Number of attention heads.
        heads: u64,
    },
    /// Inverse of [`Op::SplitHeads`]: `[heads, t, hd]` → `[t, heads·hd]`.
    MergeHeads,
    /// Grouped-query replication: `[kv_heads, t, hd]` →
    /// `[kv_heads·repeat, t, hd]`, output head `h` reading KV head
    /// `h / repeat`. Lets a GQA decoder store `kv_heads`-wide caches
    /// while the score GEMV runs over the full query-head batch.
    RepeatKv {
        /// Query heads per KV head.
        repeat: u64,
    },
}

impl Op {
    /// Memory-intensive operators in the paper's taxonomy (candidates for
    /// classic epilogue fusion, never fusion boundaries themselves).
    pub fn is_memory_intensive(&self) -> bool {
        matches!(
            self,
            Op::Softmax { .. }
                | Op::Add
                | Op::Relu
                | Op::Gelu
                | Op::LayerNorm
                | Op::Scale(_)
                | Op::Reshape
                | Op::SplitHeads { .. }
                | Op::MergeHeads
                | Op::RepeatKv { .. }
        )
    }

    /// Compute-intensive operators (GEMM family).
    pub fn is_compute_intensive(&self) -> bool {
        matches!(self, Op::Linear | Op::BatchMatMul { .. })
    }

    /// True element-wise / normalization glue — the memory-intensive ops
    /// that actually move activation bytes when left unfused. `Reshape` is
    /// excluded: it is pure metadata, not a round trip.
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            Op::Softmax { .. } | Op::Add | Op::Relu | Op::Gelu | Op::LayerNorm | Op::Scale(_)
        )
    }
}

/// A graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Display name.
    pub name: String,
    /// Operator kind.
    pub op: Op,
    /// Producer nodes.
    pub inputs: Vec<NodeId>,
    /// Output shape (row-major).
    pub shape: Vec<u64>,
}

/// A dataflow graph in topological order (builders only append).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// Model name.
    pub name: String,
    /// Nodes in topological order.
    pub nodes: Vec<Node>,
    /// Graph outputs.
    pub outputs: Vec<NodeId>,
    /// Storage precision of activations/weights.
    pub dtype: DType,
}

/// Graph construction error.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    UnknownNode(NodeId),
    ShapeMismatch { node: String, detail: String },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {:?}", n),
            GraphError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at {node}: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Look up a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Consumers of each node (computed on demand).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &inp in &n.inputs {
                out[inp.0].push(NodeId(i));
            }
        }
        out
    }

    /// The graph's activation inputs (`Op::Input` nodes) in declaration
    /// order, as `(name, id)` pairs — the binding table a serving plan
    /// freezes so callers can feed tensors by name instead of by raw
    /// [`NodeId`].
    pub fn input_bindings(&self) -> Vec<(String, NodeId)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Input))
            .map(|(i, n)| (n.name.clone(), NodeId(i)))
            .collect()
    }

    /// Look up an activation input by its declared name.
    pub fn input_named(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| matches!(n.op, Op::Input) && n.name == name)
            .map(NodeId)
    }

    /// The declared graph outputs with their names and shapes, in
    /// declaration order.
    pub fn output_shapes(&self) -> Vec<(String, NodeId, Vec<u64>)> {
        self.outputs
            .iter()
            .map(|&id| {
                let n = self.node(id);
                (n.name.clone(), id, n.shape.clone())
            })
            .collect()
    }

    /// Total matmul FLOPs of the graph (for workload characterization,
    /// e.g. the paper's "attention is 14 % of FLOPs" analysis).
    pub fn total_flops(&self) -> f64 {
        let mut total = 0.0;
        for n in &self.nodes {
            match &n.op {
                Op::Linear => {
                    let x = self.node(n.inputs[0]);
                    let k = *x.shape.last().unwrap();
                    let m: u64 = x.shape.iter().rev().skip(1).product();
                    let nn = *n.shape.last().unwrap();
                    total += 2.0 * (m * k * nn) as f64;
                }
                Op::BatchMatMul { .. } => {
                    let a = self.node(n.inputs[0]);
                    let k = *a.shape.last().unwrap();
                    let out_elems: u64 = n.shape.iter().product();
                    total += 2.0 * out_elems as f64 * k as f64;
                }
                _ => {}
            }
        }
        total
    }
}

/// Incremental graph builder with shape inference.
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Start an empty graph.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        GraphBuilder {
            graph: Graph {
                name: name.into(),
                nodes: Vec::new(),
                outputs: Vec::new(),
                dtype,
            },
        }
    }

    fn push(&mut self, name: String, op: Op, inputs: Vec<NodeId>, shape: Vec<u64>) -> NodeId {
        self.graph.nodes.push(Node {
            name,
            op,
            inputs,
            shape,
        });
        NodeId(self.graph.nodes.len() - 1)
    }

    /// Add an activation input.
    pub fn input(&mut self, name: impl Into<String>, shape: Vec<u64>) -> NodeId {
        self.push(name.into(), Op::Input, vec![], shape)
    }

    /// Add a learned weight tensor.
    pub fn weight(&mut self, name: impl Into<String>, shape: Vec<u64>) -> NodeId {
        self.push(name.into(), Op::Weight, vec![], shape)
    }

    /// Dense layer: `x · W (+ b)`; creates the weight (and bias) nodes.
    pub fn linear(&mut self, name: &str, x: NodeId, out_features: u64, bias: bool) -> NodeId {
        let in_features = *self.graph.node(x).shape.last().unwrap();
        let w = self.weight(format!("{name}.w"), vec![in_features, out_features]);
        let mut inputs = vec![x, w];
        if bias {
            let b = self.weight(format!("{name}.b"), vec![out_features]);
            inputs.push(b);
        }
        let mut shape = self.graph.node(x).shape.clone();
        *shape.last_mut().unwrap() = out_features;
        self.push(name.to_string(), Op::Linear, inputs, shape)
    }

    /// Dense layer reusing existing weight (and bias) nodes — for
    /// weight sharing between towers/layers. `w` must be `[in, out]`;
    /// `bias`, when given, `[out]`.
    pub fn linear_shared(
        &mut self,
        name: &str,
        x: NodeId,
        w: NodeId,
        bias: Option<NodeId>,
    ) -> NodeId {
        let out_features = self.graph.node(w).shape[1];
        let mut inputs = vec![x, w];
        inputs.extend(bias);
        let mut shape = self.graph.node(x).shape.clone();
        *shape.last_mut().unwrap() = out_features;
        self.push(name.to_string(), Op::Linear, inputs, shape)
    }

    /// Batched matmul `a × b` (or `a × bᵀ`).
    pub fn batch_matmul(&mut self, name: &str, a: NodeId, b: NodeId, transpose_b: bool) -> NodeId {
        let sa = self.graph.node(a).shape.clone();
        let sb = self.graph.node(b).shape.clone();
        let n = if transpose_b {
            sb[sb.len() - 2]
        } else {
            sb[sb.len() - 1]
        };
        let mut shape = sa.clone();
        *shape.last_mut().unwrap() = n;
        self.push(
            name.to_string(),
            Op::BatchMatMul { transpose_b },
            vec![a, b],
            shape,
        )
    }

    /// Softmax over the last dim.
    pub fn softmax(&mut self, name: &str, x: NodeId, scale: f32) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        self.push(name.to_string(), Op::Softmax { scale }, vec![x], shape)
    }

    /// Element-wise add.
    pub fn add(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let shape = self.graph.node(a).shape.clone();
        self.push(name.to_string(), Op::Add, vec![a, b], shape)
    }

    /// ReLU.
    pub fn relu(&mut self, name: &str, x: NodeId) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        self.push(name.to_string(), Op::Relu, vec![x], shape)
    }

    /// GELU.
    pub fn gelu(&mut self, name: &str, x: NodeId) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        self.push(name.to_string(), Op::Gelu, vec![x], shape)
    }

    /// Multiply by a constant.
    pub fn scale(&mut self, name: &str, x: NodeId, factor: f32) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        self.push(name.to_string(), Op::Scale(factor), vec![x], shape)
    }

    /// LayerNorm over the last dim.
    pub fn layer_norm(&mut self, name: &str, x: NodeId) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        self.push(name.to_string(), Op::LayerNorm, vec![x], shape)
    }

    /// Affine LayerNorm over the last dim; creates rank-1 `gamma`/`beta`
    /// weight nodes of the normalized width.
    pub fn layer_norm_affine(&mut self, name: &str, x: NodeId) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        let d = *shape.last().unwrap();
        let g = self.weight(format!("{name}.g"), vec![d]);
        let b = self.weight(format!("{name}.b"), vec![d]);
        self.push(name.to_string(), Op::LayerNorm, vec![x, g, b], shape)
    }

    /// Metadata reshape.
    pub fn reshape(&mut self, name: &str, x: NodeId, shape: Vec<u64>) -> NodeId {
        let in_elems: u64 = self.graph.node(x).shape.iter().product();
        let out_elems: u64 = shape.iter().product();
        assert_eq!(in_elems, out_elems, "reshape must preserve element count");
        self.push(name.to_string(), Op::Reshape, vec![x], shape)
    }

    /// Head-split permute: `[t, heads·hd]` → `[heads, t, hd]`.
    pub fn split_heads(&mut self, name: &str, x: NodeId, heads: u64) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        assert_eq!(shape.len(), 2, "split_heads expects a rank-2 input");
        let (t, h) = (shape[0], shape[1]);
        assert_eq!(h % heads, 0, "hidden width must divide by heads");
        self.push(
            name.to_string(),
            Op::SplitHeads { heads },
            vec![x],
            vec![heads, t, h / heads],
        )
    }

    /// Head-merge permute: `[heads, t, hd]` → `[t, heads·hd]`.
    pub fn merge_heads(&mut self, name: &str, x: NodeId) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        assert_eq!(shape.len(), 3, "merge_heads expects a rank-3 input");
        let (heads, t, hd) = (shape[0], shape[1], shape[2]);
        self.push(
            name.to_string(),
            Op::MergeHeads,
            vec![x],
            vec![t, heads * hd],
        )
    }

    /// Grouped-query replication: `[kv, t, hd]` → `[kv·repeat, t, hd]`.
    pub fn repeat_kv(&mut self, name: &str, x: NodeId, repeat: u64) -> NodeId {
        let shape = self.graph.node(x).shape.clone();
        assert_eq!(shape.len(), 3, "repeat_kv expects a rank-3 input");
        let (kv, t, hd) = (shape[0], shape[1], shape[2]);
        self.push(
            name.to_string(),
            Op::RepeatKv { repeat },
            vec![x],
            vec![kv * repeat, t, hd],
        )
    }

    /// Finish, declaring graph outputs.
    pub fn finish(mut self, outputs: Vec<NodeId>) -> Graph {
        self.graph.outputs = outputs;
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_infers_shapes() {
        let mut b = GraphBuilder::new("t", DType::F16);
        let x = b.input("x", vec![1, 128, 64]);
        let y = b.linear("fc", x, 256, true);
        let g = b.finish(vec![y]);
        assert_eq!(g.node(y).shape, vec![1, 128, 256]);
        // Linear created weight + bias nodes.
        assert_eq!(g.nodes.iter().filter(|n| n.op == Op::Weight).count(), 2);
    }

    #[test]
    fn batch_matmul_transpose_shapes() {
        let mut b = GraphBuilder::new("t", DType::F16);
        let q = b.input("q", vec![8, 128, 64]);
        let k = b.input("k", vec![8, 128, 64]);
        let s = b.batch_matmul("qk", q, k, true);
        let g = b.finish(vec![s]);
        assert_eq!(g.node(s).shape, vec![8, 128, 128]);
    }

    #[test]
    fn consumers_computed() {
        let mut b = GraphBuilder::new("t", DType::F16);
        let x = b.input("x", vec![4, 4]);
        let r = b.relu("r", x);
        let s = b.gelu("s", x);
        let g = b.finish(vec![r, s]);
        let cons = g.consumers();
        assert_eq!(cons[x.0], vec![r, s]);
    }

    #[test]
    fn flops_counts_linear_and_bmm() {
        let mut b = GraphBuilder::new("t", DType::F16);
        let x = b.input("x", vec![1, 16, 8]);
        let y = b.linear("fc", x, 4, false); // 2*16*8*4 = 1024
        let q = b.input("q", vec![2, 8, 4]);
        let k = b.input("k", vec![2, 8, 4]);
        let s = b.batch_matmul("qk", q, k, true); // 2*2*8*8*4 = 1024
        let g = b.finish(vec![y, s]);
        assert_eq!(g.total_flops(), 2048.0);
    }

    #[test]
    fn op_taxonomy() {
        assert!(Op::Linear.is_compute_intensive());
        assert!(Op::BatchMatMul { transpose_b: false }.is_compute_intensive());
        assert!(Op::Softmax { scale: 1.0 }.is_memory_intensive());
        assert!(Op::LayerNorm.is_memory_intensive());
        assert!(!Op::Input.is_compute_intensive());
        assert!(!Op::Input.is_memory_intensive());
    }

    #[test]
    fn named_inputs_and_output_shapes() {
        let mut b = GraphBuilder::new("t", DType::F16);
        let q = b.input("q", vec![2, 8, 4]);
        let k = b.input("k", vec![2, 8, 4]);
        let s = b.batch_matmul("qk", q, k, true);
        let g = b.finish(vec![s]);
        assert_eq!(
            g.input_bindings(),
            vec![("q".to_string(), q), ("k".to_string(), k)]
        );
        assert_eq!(g.input_named("k"), Some(k));
        assert_eq!(g.input_named("qk"), None, "qk is not an Op::Input");
        assert_eq!(g.input_named("missing"), None);
        assert_eq!(
            g.output_shapes(),
            vec![("qk".to_string(), s, vec![2, 8, 8])]
        );
    }

    #[test]
    #[should_panic(expected = "reshape must preserve element count")]
    fn reshape_checks_elements() {
        let mut b = GraphBuilder::new("t", DType::F16);
        let x = b.input("x", vec![4, 4]);
        b.reshape("r", x, vec![5, 5]);
    }
}
